//! The streaming engine: transforms, a sharded runtime, and overload
//! shedding behind one builder.
//!
//! The paper situates sketch-over-samples inside a DSMS: when the arrival
//! rate exceeds what the query network sustains, a *load shedder* drops
//! tuples — and if the drops are Bernoulli, every sketch downstream remains
//! an unbiased (rescalable) summary. This module is the minimal honest
//! version of that architecture (after Tatbul et al., VLDB'03), now with
//! the §VI-C multi-core leg under it:
//!
//! ```text
//! source batches ─▶ [transforms] ─▶ ShardedRuntime (bounded queues)
//!                                        │ overflow (queues full)
//!                                        ▼
//!                               [adaptive epoch shedder] ─ unbiased
//!                                        ▲
//!                         RateController (capacity vs overflow λ)
//! ```
//!
//! * Transforms model the query network (selection, key extraction).
//! * The [`ShardedRuntime`] absorbs whatever the workers keep up with,
//!   bit-identically to sequential sketching.
//! * When a shard queue fills, the overflow is **not dropped on the
//!   floor**: it flows through an [`EpochShedder`] whose rate is set by a
//!   [`RateController`] watching the overflow rate, so the combined
//!   estimate (runtime part + shedded part + cross term) stays unbiased
//!   under arbitrary overload while memory stays bounded.
//! * Per-stage statistics expose where tuples went — the observability a
//!   real engine needs to explain an approximate answer.
//!
//! Construction goes through [`EngineBuilder`]. Every scalar query has a
//! typed counterpart ([`StreamEngine::self_join_estimate`],
//! [`StreamEngine::size_of_join_estimate`]) returning an
//! [`Estimate`] with the bit-identical value plus
//! empirical error bars for the *combined* estimator.

pub use crate::adaptive::ControllerConfig;
use crate::adaptive::RateController;
use crate::error::{Result as StreamResult, StreamError};
use crate::runtime::{Partition, RuntimeConfig, ShardedRuntime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_core::sketch::{JoinSchema, JoinSketch};
use sss_core::{DistinctQuery, EpochShedder, Estimate, QuantileQuery, Result, Sampled, Summary};
use sss_sketch::{CountSketchTopK, FagmsSchema, HyperLogLog, KllSketch};

/// A stateless per-tuple transform (function pointers keep the engine
/// `Debug` and the stages trivially serializable in spirit).
#[derive(Debug, Clone, Copy)]
pub enum Transform {
    /// Keep only tuples satisfying the predicate.
    Filter(fn(u64) -> bool),
    /// Rewrite the key (projection / key extraction).
    Map(fn(u64) -> u64),
}

/// Tuples in/out of one stage, cumulative over the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Stage label.
    pub name: String,
    /// Tuples entering the stage.
    pub tuples_in: u64,
    /// Tuples leaving the stage.
    pub tuples_out: u64,
}

/// The overflow-shedding leg of the engine: controller + epoch shedder +
/// the RNG driving the Bernoulli coin.
#[derive(Debug)]
struct ShedPath {
    controller: RateController,
    shedder: EpochShedder,
    rng: StdRng,
}

/// Fluent configuration of a [`StreamEngine`].
///
/// Generic over the summary: call [`summary`](EngineBuilder::summary)
/// with any prototype [`Summary`] (a join sketch, a
/// [`MultiSummary`](sss_core::MultiSummary), a
/// [`sss_core::Sampled`] front end…), or — for the
/// backend-erased default `JoinSketch` — [`schema`](EngineBuilder::schema),
/// which additionally unlocks [`shedding`](EngineBuilder::shedding) (the
/// shedder mathematics lives on `JoinSketch`). Side summaries for other
/// query families ride along via [`top_k`](EngineBuilder::top_k),
/// [`distinct`](EngineBuilder::distinct), and
/// [`quantiles`](EngineBuilder::quantiles).
///
/// ```
/// use rand::SeedableRng;
/// use sss_core::sketch::JoinSchema;
/// use sss_stream::EngineBuilder;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let schema = JoinSchema::fagms(1, 1024, &mut rng);
/// let mut engine = EngineBuilder::new()
///     .filter("evens", |k| k % 2 == 0)
///     .shards(2)
///     .queue_depth(16)
///     .schema(&schema)
///     .build()
///     .unwrap();
/// engine.push_batch(&(0..1000u64).collect::<Vec<_>>(), 1.0).unwrap();
/// let est = engine.self_join().unwrap();
/// assert!(est > 0.0);
/// ```
#[derive(Debug)]
pub struct EngineBuilder<E: Summary = JoinSketch> {
    transforms: Vec<(String, Transform)>,
    config: RuntimeConfig,
    prototype: Option<E>,
    schema: Option<JoinSchema>,
    shedding: Option<ControllerConfig>,
    top_k: Option<usize>,
    distinct: Option<u8>,
    quantiles: Option<usize>,
    seed: u64,
}

impl<E: Summary> EngineBuilder<E> {
    /// Start an empty engine description (1 shard, queue depth 64, no
    /// shedding).
    pub fn new() -> Self {
        Self {
            transforms: Vec::new(),
            config: RuntimeConfig::default(),
            prototype: None,
            schema: None,
            shedding: None,
            top_k: None,
            distinct: None,
            quantiles: None,
            seed: 0x5353_5f73_6861_7264, // arbitrary fixed default
        }
    }

    /// Append a named filter stage.
    pub fn filter(mut self, name: &str, pred: fn(u64) -> bool) -> Self {
        self.transforms
            .push((name.to_string(), Transform::Filter(pred)));
        self
    }

    /// Append a named map stage.
    pub fn map(mut self, name: &str, f: fn(u64) -> u64) -> Self {
        self.transforms.push((name.to_string(), Transform::Map(f)));
        self
    }

    /// Number of shard workers (default 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.config.shards = n;
        self
    }

    /// Bounded per-shard queue depth, in batches (default 64).
    pub fn queue_depth(mut self, d: usize) -> Self {
        self.config.queue_depth = d;
        self
    }

    /// Tuple-routing policy (default round-robin).
    pub fn partition(mut self, p: Partition) -> Self {
        self.config.partition = p;
        self
    }

    /// Seed for the shedding coin (defaults to a fixed constant, so runs
    /// are reproducible unless varied explicitly).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Provide the prototype summary every shard starts from.
    pub fn summary(mut self, prototype: E) -> Self {
        self.prototype = Some(prototype);
        self
    }

    /// Deprecated name for [`summary`](Self::summary) from when the
    /// engine was join-only.
    #[deprecated(since = "0.1.0", note = "renamed to `EngineBuilder::summary`")]
    pub fn estimator(self, prototype: E) -> Self {
        self.summary(prototype)
    }

    /// Maintain a Count-Sketch heavy-hitter summary alongside the join
    /// estimator, unlocking [`StreamEngine::top_k`]. `k` is the number of
    /// heavy keys the engine must be able to report; the summary tracks a
    /// larger candidate set (4·k, at least 64) over its own 5×2048
    /// Count-Sketch so near-boundary keys are not evicted prematurely.
    ///
    /// The summary sees the full post-transform stream — including tuples
    /// the overflow shedder would down-sample for the *join* estimate —
    /// so top-k answers are exact-stream summaries with sketch error bars
    /// (memory stays O(k + sketch), independent of the stream).
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Maintain a HyperLogLog cardinality summary alongside the main
    /// summary, unlocking [`StreamEngine::distinct`]. `precision` is the
    /// log₂ register count (4..=18); the relative standard error is
    /// `1.04 / √2^precision` (precision 12 → ±1.6% in 4 KiB).
    ///
    /// Like the top-k side, the counter sees the full post-transform
    /// stream — including tuples the overflow shedder down-samples for
    /// the join estimate — so distinct counts are exact-stream summaries.
    pub fn distinct(mut self, precision: u8) -> Self {
        self.distinct = Some(precision);
        self
    }

    /// Maintain a KLL rank summary alongside the main summary, unlocking
    /// [`StreamEngine::quantile`]. `k` is the accuracy parameter (≥ 8);
    /// the uniform rank error is ≈ `2.296 / k^0.9433` (k = 200 → ±1.6%).
    ///
    /// Sees the full post-transform stream, like the other side
    /// summaries.
    pub fn quantiles(mut self, k: usize) -> Self {
        self.quantiles = Some(k);
        self
    }

    /// Spawn the runtime and finish the engine.
    ///
    /// # Errors
    ///
    /// [`StreamError::MissingEstimator`] if neither
    /// [`estimator`](Self::estimator) nor [`schema`](Self::schema) was
    /// called; [`StreamError::InvalidConfig`] for degenerate shard/queue
    /// settings or shedding without a schema.
    pub fn build(self) -> StreamResult<StreamEngine<E>> {
        let prototype = self.prototype.ok_or(StreamError::MissingEstimator)?;
        let mut stats: Vec<StageStats> = self
            .transforms
            .iter()
            .map(|(name, _)| StageStats {
                name: name.clone(),
                tuples_in: 0,
                tuples_out: 0,
            })
            .collect();
        stats.push(StageStats {
            name: "runtime".into(),
            tuples_in: 0,
            tuples_out: 0,
        });
        let shed = match self.shedding {
            None => None,
            Some(cfg) => {
                let schema = self.schema.as_ref().ok_or(StreamError::InvalidConfig {
                    parameter: "shedding",
                    value: 0,
                    reason: "requires .schema(…) — the shedder sketches overflow",
                })?;
                stats.push(StageStats {
                    name: "overflow-shedder".into(),
                    tuples_in: 0,
                    tuples_out: 0,
                });
                let controller = RateController::new(cfg);
                let mut rng = StdRng::seed_from_u64(self.seed);
                let shedder = EpochShedder::new(schema, controller.probability(), &mut rng)
                    .map_err(StreamError::Estimator)?;
                Some(ShedPath {
                    controller,
                    shedder,
                    rng,
                })
            }
        };
        let topk = match self.top_k {
            None => None,
            Some(0) => {
                return Err(StreamError::InvalidConfig {
                    parameter: "top_k",
                    value: 0,
                    reason: "must be at least 1",
                })
            }
            Some(k) => {
                // The heavy-hitter summary is an independent query over
                // the same stream: its Count-Sketch draws its own seeds
                // (derived from the engine seed, so runs reproduce) and
                // does not need to share the join schema's.
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0x746f_706b);
                let schema = FagmsSchema::new(5, 2048, &mut rng);
                let summary = CountSketchTopK::new(&schema, (4 * k).max(64))
                    .map_err(|e| StreamError::Estimator(e.into()))?;
                // p = 1: the engine feeds every post-transform tuple; the
                // Sampled wrapper only supplies the typed query path.
                Some(Sampled::new(summary, 1.0, &mut rng).map_err(StreamError::Estimator)?)
            }
        };
        let distinct = match self.distinct {
            None => None,
            // Seeds derive from the engine seed so runs reproduce; the
            // xor tags keep the side summaries independent of each other.
            Some(precision) => Some(
                HyperLogLog::with_seed(precision, self.seed ^ 0x6466_3066_4630)
                    .map_err(|e| StreamError::Estimator(e.into()))?,
            ),
        };
        let quantiles = match self.quantiles {
            None => None,
            Some(k) => Some(
                KllSketch::with_seed(k, self.seed ^ 0x6b6c_6c71)
                    .map_err(|e| StreamError::Estimator(e.into()))?,
            ),
        };
        let runtime = ShardedRuntime::new(self.config, &prototype)?;
        Ok(StreamEngine {
            transforms: self.transforms,
            stats,
            runtime,
            shed,
            topk,
            distinct,
            quantiles,
            scratch: Vec::new(),
            overflow: Vec::new(),
        })
    }
}

impl EngineBuilder<JoinSketch> {
    /// Use the backend-erased sketch of `schema` as the estimator. Also
    /// remembers the schema so [`shedding`](Self::shedding) can build its
    /// overflow sketch from the same seeds (merged and shedded parts must
    /// share hash functions for the cross term).
    pub fn schema(mut self, schema: &JoinSchema) -> Self {
        self.prototype = Some(schema.sketch());
        self.schema = Some(schema.clone());
        self
    }

    /// Enable the overflow-shedding path: when shard queues are full the
    /// engine routes the excess through an adaptive [`EpochShedder`]
    /// instead of blocking, and the estimate stays unbiased.
    pub fn shedding(mut self, config: ControllerConfig) -> Self {
        self.shedding = Some(config);
        self
    }
}

impl<E: Summary> Default for EngineBuilder<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The running engine: transform chain, sharded runtime, optional
/// overflow shedder and side summaries. Built by [`EngineBuilder`].
#[derive(Debug)]
pub struct StreamEngine<E: Summary = JoinSketch> {
    transforms: Vec<(String, Transform)>,
    stats: Vec<StageStats>,
    runtime: ShardedRuntime<E>,
    shed: Option<ShedPath>,
    topk: Option<Sampled<CountSketchTopK>>,
    distinct: Option<HyperLogLog>,
    quantiles: Option<KllSketch>,
    scratch: Vec<u64>,
    overflow: Vec<u64>,
}

impl<E: Summary> StreamEngine<E> {
    /// Feed one batch that arrived over `seconds` of wall-clock time.
    ///
    /// Without a shedding path the push **blocks** on full queues
    /// (backpressure propagates to the caller and nothing is lost). With
    /// one, the push never blocks: overflow is Bernoulli-shedded into the
    /// epoch sketch and the combined estimate stays unbiased.
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker died, or an
    /// estimator error from the shedding path.
    pub fn push_batch(&mut self, keys: &[u64], seconds: f64) -> StreamResult<()> {
        // Run the transform chain on a scratch buffer.
        self.scratch.clear();
        self.scratch.extend_from_slice(keys);
        for (i, (_, t)) in self.transforms.iter().enumerate() {
            self.stats[i].tuples_in += self.scratch.len() as u64;
            match t {
                Transform::Filter(pred) => self.scratch.retain(|&k| pred(k)),
                Transform::Map(f) => {
                    for k in self.scratch.iter_mut() {
                        *k = f(*k);
                    }
                }
            }
            self.stats[i].tuples_out += self.scratch.len() as u64;
        }
        let n = self.scratch.len() as u64;
        // The side summaries see the whole post-transform stream — both
        // the tuples the runtime accepts and any overflow the shedder
        // will down-sample for the join estimate.
        if let Some(topk) = &mut self.topk {
            topk.feed_batch(&self.scratch);
        }
        if let Some(distinct) = &mut self.distinct {
            distinct.insert_batch(&self.scratch);
        }
        if let Some(quantiles) = &mut self.quantiles {
            quantiles.insert_batch(&self.scratch);
        }
        let runtime_stage = self.transforms.len();
        self.stats[runtime_stage].tuples_in += n;
        match &mut self.shed {
            None => {
                self.runtime.push(&self.scratch)?;
                self.stats[runtime_stage].tuples_out += n;
            }
            Some(shed) => {
                self.overflow.clear();
                let accepted = self.runtime.try_push(&self.scratch, &mut self.overflow)?;
                self.stats[runtime_stage].tuples_out += accepted;
                // The controller watches the *overflow* rate: that is the
                // load the shedding path must absorb.
                let p = shed
                    .controller
                    .observe_batch(self.overflow.len() as u64, seconds);
                shed.shedder
                    .set_probability(p, &mut shed.rng)
                    .map_err(StreamError::Estimator)?;
                let of_stage = &mut self.stats[runtime_stage + 1];
                of_stage.tuples_in += self.overflow.len() as u64;
                of_stage.tuples_out += shed.shedder.feed_batch(&self.overflow);
            }
        }
        Ok(())
    }

    /// Merge the shard estimators as of now (the runtime keeps running).
    /// Covers only the tuples the runtime accepted; the shedded overflow
    /// contribution is what [`StreamEngine::self_join`] adds on top.
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker died.
    pub fn merged(&self) -> StreamResult<E> {
        self.runtime.merged()
    }

    /// Per-stage statistics (transforms, then `"runtime"`, then —
    /// if shedding is enabled — `"overflow-shedder"`).
    pub fn stats(&self) -> &[StageStats] {
        &self.stats
    }

    /// The live rate controller, when the shedding path is enabled.
    pub fn controller(&self) -> Option<&RateController> {
        self.shed.as_ref().map(|s| &s.controller)
    }

    /// The live overflow shedder, when the shedding path is enabled.
    pub fn shedder(&self) -> Option<&EpochShedder> {
        self.shed.as_ref().map(|s| &s.shedder)
    }

    /// Highest queue occupancy any shard ever reached (≤ depth + 1).
    pub fn queue_high_water(&self) -> usize {
        self.runtime.queue_high_water()
    }

    /// Point-in-time queue occupancy of the most loaded shard (0 when the
    /// workers have caught up) — the live companion of the
    /// [`queue_high_water`](Self::queue_high_water) watermark.
    pub fn queue_occupancy(&self) -> usize {
        self.runtime.queue_occupancy()
    }

    /// Snapshot-cache counters for the runtime's at-all-times queries —
    /// see [`sss_stream::CacheStats`](crate::CacheStats).
    pub fn cache_stats(&self) -> crate::CacheStats {
        self.runtime.cache_stats()
    }

    /// A cloneable handle answering runtime queries (merged sketch only —
    /// without the shedded overflow leg) from other threads, concurrently
    /// with this engine's ingest.
    pub fn query_handle(&self) -> crate::QueryHandle<E> {
        self.runtime.query_handle()
    }

    /// The number of shard workers.
    pub fn shards(&self) -> usize {
        self.runtime.shards()
    }

    /// The `k` heaviest post-transform keys with typed frequency
    /// estimates, heaviest first (ties toward the smaller key). The error
    /// bars carry the Count-Sketch point-query noise; the engine feeds
    /// the summary at full rate, so there is no sampling term.
    ///
    /// # Errors
    ///
    /// [`StreamError::TopKDisabled`] if the engine was built without
    /// [`EngineBuilder::top_k`].
    pub fn top_k(&self, k: usize) -> StreamResult<Vec<(u64, Estimate)>> {
        self.topk
            .as_ref()
            .map(|t| t.top_k(k))
            .ok_or(StreamError::TopKDisabled)
    }

    /// Typed frequency estimate for one post-transform key (any key, not
    /// only the current candidates), from the same summary as
    /// [`StreamEngine::top_k`].
    ///
    /// # Errors
    ///
    /// [`StreamError::TopKDisabled`] if the engine was built without
    /// [`EngineBuilder::top_k`].
    pub fn key_frequency(&self, key: u64) -> StreamResult<Estimate> {
        self.topk
            .as_ref()
            .map(|t| t.point_estimate(key))
            .ok_or(StreamError::TopKDisabled)
    }

    /// The number of distinct post-transform keys seen so far (point
    /// estimate; the engine feeds the counter at full rate).
    ///
    /// # Errors
    ///
    /// [`StreamError::DistinctDisabled`] if the engine was built without
    /// [`EngineBuilder::distinct`].
    pub fn distinct(&self) -> StreamResult<f64> {
        self.distinct
            .as_ref()
            .map(DistinctQuery::distinct)
            .ok_or(StreamError::DistinctDisabled)
    }

    /// Typed counterpart of [`StreamEngine::distinct`]: the same value
    /// with the HyperLogLog standard-error model as variance, so
    /// [`Estimate::interval`] works.
    ///
    /// # Errors
    ///
    /// [`StreamError::DistinctDisabled`] if the engine was built without
    /// [`EngineBuilder::distinct`].
    pub fn distinct_estimate(&self) -> StreamResult<Estimate> {
        self.distinct
            .as_ref()
            .map(DistinctQuery::distinct_estimate)
            .ok_or(StreamError::DistinctDisabled)
    }

    /// The value at quantile `q ∈ [0, 1]` of the post-transform key
    /// stream (`q = 0.5` is the median).
    ///
    /// # Errors
    ///
    /// [`StreamError::QuantilesDisabled`] if the engine was built without
    /// [`EngineBuilder::quantiles`]; an estimator error for `q` outside
    /// `[0, 1]` or an empty stream.
    pub fn quantile(&self, q: f64) -> StreamResult<f64> {
        let kll = self
            .quantiles
            .as_ref()
            .ok_or(StreamError::QuantilesDisabled)?;
        QuantileQuery::quantile(kll, q).map_err(StreamError::Estimator)
    }

    /// Values at the rank band `q ∓ rank_error` — deterministic envelope
    /// bounds for [`StreamEngine::quantile`] (the KLL guarantee is on
    /// ranks, so the honest error statement is a value interval, not a
    /// variance).
    ///
    /// # Errors
    ///
    /// As for [`StreamEngine::quantile`].
    pub fn quantile_bounds(&self, q: f64) -> StreamResult<(f64, f64)> {
        let kll = self
            .quantiles
            .as_ref()
            .ok_or(StreamError::QuantilesDisabled)?;
        QuantileQuery::quantile_bounds(kll, q).map_err(StreamError::Estimator)
    }

    /// The fraction of post-transform keys strictly below `value` (the
    /// inverse query of [`StreamEngine::quantile`]), accurate to the
    /// summary's uniform rank error.
    ///
    /// # Errors
    ///
    /// [`StreamError::QuantilesDisabled`] if the engine was built without
    /// [`EngineBuilder::quantiles`].
    pub fn rank(&self, value: u64) -> StreamResult<f64> {
        self.quantiles
            .as_ref()
            .map(|kll| QuantileQuery::rank(kll, value))
            .ok_or(StreamError::QuantilesDisabled)
    }

    /// Shut down the workers and return the merged runtime estimator
    /// (the shedded overflow part is dropped — query
    /// [`StreamEngine::self_join`] first if it matters).
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker panicked.
    pub fn into_merged(self) -> StreamResult<E> {
        self.runtime.into_merged()
    }
}

impl StreamEngine<JoinSketch> {
    /// Unbiased self-join (F₂) estimate of the full post-transform
    /// stream, overflow included.
    ///
    /// The stream splits disjointly into the runtime part `A` (sketched at
    /// full rate) and the overflow part `O` (Bernoulli-shedded): `F₂ =
    /// A·A + O·O + 2·A·O`, each term estimated unbiasedly — `A·A` from
    /// the merged shard sketch, `O·O` by the shedder's Proposition 14
    /// estimate, and the cross term by the Proposition 13 product with
    /// `q = 1` for the full-rate side. Queue-fullness decides the split,
    /// independently of the sampling and sketch randomness, so the sum is
    /// unbiased for any overload pattern.
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker died, or an
    /// estimator error from the cross-term computation.
    pub fn self_join(&self) -> StreamResult<f64> {
        let merged = self.runtime.merged()?;
        let mut est = merged.raw_self_join();
        if let Some(shed) = &self.shed {
            est += shed.shedder.self_join().map_err(StreamError::Estimator)?;
            est += 2.0
                * shed
                    .shedder
                    .size_of_join_sketch(&merged, 1.0)
                    .map_err(StreamError::Estimator)?;
        }
        Ok(est)
    }

    /// Unbiased size-of-join estimate between this engine's stream and
    /// another engine's, overflow included on both sides.
    ///
    /// Expands the product of the two split streams: `(A₁+O₁)·(A₂+O₂)`,
    /// with each of the four terms estimated by the matching sketch pair.
    /// Both engines must have been built from the same [`JoinSchema`].
    ///
    /// # Errors
    ///
    /// Schema mismatch between the engines, or
    /// [`StreamError::ShardDisconnected`].
    pub fn size_of_join(&self, other: &StreamEngine<JoinSketch>) -> StreamResult<f64> {
        let m1 = self.runtime.merged()?;
        let m2 = other.runtime.merged()?;
        let join = |r: Result<f64>| r.map_err(StreamError::Estimator);
        let mut est = join(m1.raw_size_of_join(&m2))?;
        if let Some(s1) = &self.shed {
            est += join(s1.shedder.size_of_join_sketch(&m2, 1.0))?;
        }
        if let Some(s2) = &other.shed {
            est += join(s2.shedder.size_of_join_sketch(&m1, 1.0))?;
        }
        if let (Some(s1), Some(s2)) = (&self.shed, &other.shed) {
            est += join(s1.shedder.size_of_join(&s2.shedder))?;
        }
        Ok(est)
    }

    /// Typed counterpart of [`StreamEngine::self_join`]: the same value
    /// (bit-identical accumulation order) with empirical error state.
    ///
    /// Each independent sketch lane sums its merged-runtime basic, the
    /// shedder's Proposition-14-corrected basic, and twice the `q = 1`
    /// cross-term basic — the lane-wise image of the scalar `A·A + O·O +
    /// 2·A·O` decomposition — so the lane spread measures the sketch
    /// noise of the *combined* estimator. The shedder's Bernoulli sampling
    /// plug-in is added unscaled on top (every lane sees the same sampled
    /// tuples, so averaging lanes does not average that noise away).
    ///
    /// # Errors
    ///
    /// As for [`StreamEngine::self_join`].
    pub fn self_join_estimate(&self) -> StreamResult<Estimate> {
        let merged = self.runtime.merged()?;
        let Some(shed) = &self.shed else {
            return Ok(merged.raw_self_join_estimate());
        };
        // Value: replicate the scalar accumulation order bit for bit.
        let mut value = merged.raw_self_join();
        value += shed.shedder.self_join().map_err(StreamError::Estimator)?;
        value += 2.0
            * shed
                .shedder
                .size_of_join_sketch(&merged, 1.0)
                .map_err(StreamError::Estimator)?;
        let basics = |r: Result<Vec<f64>>| r.map_err(StreamError::Estimator);
        let mut lanes = merged.self_join_basics();
        let shed_lanes = basics(shed.shedder.self_join_basics())?;
        let cross = basics(shed.shedder.size_of_join_sketch_basics(&merged, 1.0))?;
        for ((lane, s), c) in lanes.iter_mut().zip(shed_lanes).zip(cross) {
            *lane += s + 2.0 * c;
        }
        let single = 2.0 * value * value / merged.averaging_factor() as f64;
        Ok(merged
            .combine_lanes(value, lanes, single)
            .plus_variance(shed.shedder.sampling_variance()))
    }

    /// Typed counterpart of [`StreamEngine::size_of_join`]: the same value
    /// (bit-identical four-term accumulation) with empirical error state.
    ///
    /// Lanes sum the four per-lane terms of `(A₁+O₁)·(A₂+O₂)`; the
    /// Bernoulli sampling plug-in is evaluated at each side's smallest
    /// epoch rate (`1` for a side without shedding) with the combined
    /// self-join estimates standing in for the unknown F₂'s.
    ///
    /// # Errors
    ///
    /// As for [`StreamEngine::size_of_join`].
    pub fn size_of_join_estimate(
        &self,
        other: &StreamEngine<JoinSketch>,
    ) -> StreamResult<Estimate> {
        let m1 = self.runtime.merged()?;
        let m2 = other.runtime.merged()?;
        let join = |r: Result<f64>| r.map_err(StreamError::Estimator);
        // Value: replicate the scalar accumulation order bit for bit.
        let mut value = join(m1.raw_size_of_join(&m2))?;
        if let Some(s1) = &self.shed {
            value += join(s1.shedder.size_of_join_sketch(&m2, 1.0))?;
        }
        if let Some(s2) = &other.shed {
            value += join(s2.shedder.size_of_join_sketch(&m1, 1.0))?;
        }
        if let (Some(s1), Some(s2)) = (&self.shed, &other.shed) {
            value += join(s1.shedder.size_of_join(&s2.shedder))?;
        }
        let basics = |r: Result<Vec<f64>>| r.map_err(StreamError::Estimator);
        let add = |lanes: &mut Vec<f64>, extra: Vec<f64>| {
            for (lane, x) in lanes.iter_mut().zip(extra) {
                *lane += x;
            }
        };
        let mut lanes = basics(m1.size_of_join_basics(&m2))?;
        if let Some(s1) = &self.shed {
            add(
                &mut lanes,
                basics(s1.shedder.size_of_join_sketch_basics(&m2, 1.0))?,
            );
        }
        if let Some(s2) = &other.shed {
            add(
                &mut lanes,
                basics(s2.shedder.size_of_join_sketch_basics(&m1, 1.0))?,
            );
        }
        if let (Some(s1), Some(s2)) = (&self.shed, &other.shed) {
            add(
                &mut lanes,
                basics(s1.shedder.size_of_join_basics(&s2.shedder))?,
            );
        }
        let f2_1 = self.self_join()?.max(0.0);
        let f2_2 = other.self_join()?.max(0.0);
        let p1 = self
            .shed
            .as_ref()
            .map_or(1.0, |s| s.shedder.min_probability());
        let p2 = other
            .shed
            .as_ref()
            .map_or(1.0, |s| s.shedder.min_probability());
        let sampling =
            sss_sampling::bernoulli_size_of_join_variance_plugin(p1, p2, f2_1, f2_2, value);
        let single = (f2_1 * f2_2 + value * value) / m1.averaging_factor() as f64;
        Ok(m1
            .combine_lanes(value, lanes, single)
            .plus_variance(sampling))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::ControllerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_exact_stub::Exact;

    /// A tiny exact aggregator local to the tests (the real `sss-exact`
    /// crate is not a dependency of `sss-stream`; this stub keeps it so).
    mod sss_exact_stub {
        use std::collections::HashMap;

        #[derive(Default)]
        pub struct Exact(HashMap<u64, u64>);

        impl Exact {
            pub fn add(&mut self, k: u64) {
                *self.0.entry(k).or_insert(0) += 1;
            }
            pub fn self_join(&self) -> f64 {
                self.0.values().map(|&c| (c * c) as f64).sum()
            }
        }
    }

    fn controller_config(capacity: f64) -> ControllerConfig {
        ControllerConfig {
            capacity_tps: capacity,
            smoothing: 0.5,
            hysteresis: 0.1,
            min_p: 1e-3,
            grid: sss_core::RateGrid::default(),
        }
    }

    fn is_even(k: u64) -> bool {
        k % 2 == 0
    }

    fn halve(k: u64) -> u64 {
        k / 2
    }

    #[test]
    fn transforms_apply_in_order_and_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let schema = JoinSchema::fagms(1, 1024, &mut rng);
        let mut e = EngineBuilder::new()
            .filter("evens", is_even)
            .map("halve", halve)
            .shards(2)
            .schema(&schema)
            .build()
            .unwrap();
        e.push_batch(&(0..1000u64).collect::<Vec<_>>(), 1.0)
            .unwrap();
        let stats = e.stats();
        assert_eq!(stats[0].tuples_in, 1000);
        assert_eq!(stats[0].tuples_out, 500, "filter halves the batch");
        assert_eq!(stats[1].tuples_in, 500);
        assert_eq!(stats[1].tuples_out, 500, "map preserves cardinality");
        // Blocking engine: the runtime accepts everything.
        assert_eq!(stats[2].name, "runtime");
        assert_eq!(stats[2].tuples_out, 500);
    }

    #[test]
    fn estimate_tracks_the_post_transform_stream() {
        let mut rng = StdRng::seed_from_u64(2);
        let schema = JoinSchema::fagms(1, 4096, &mut rng);
        let mut e = EngineBuilder::new()
            .filter("evens", is_even)
            .map("halve", halve)
            .shards(3)
            .schema(&schema)
            .build()
            .unwrap();
        let mut exact = Exact::default();
        // keys 0..2000 ×30: after filter+map the stream is 0..1000 ×30.
        for _ in 0..30 {
            let batch: Vec<u64> = (0..2000u64).collect();
            e.push_batch(&batch, 1.0).unwrap();
            for k in 0..2000u64 {
                if is_even(k) {
                    exact.add(halve(k));
                }
            }
        }
        let est = e.self_join().unwrap();
        let truth = exact.self_join();
        assert!(
            (est - truth).abs() / truth < 0.1,
            "est = {est}, truth = {truth}"
        );
    }

    /// The engine result is bit-identical to the sequential sketch of the
    /// post-transform stream, for any shard count (linearity end to end).
    #[test]
    fn engine_is_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(3);
        let schema = JoinSchema::fagms(2, 512, &mut rng);
        let keys: Vec<u64> = (0..40_000u64).map(|i| (i * 31) % 3000).collect();
        let mut seq = schema.sketch();
        for &k in &keys {
            if is_even(k) {
                seq.update(halve(k), 1);
            }
        }
        for shards in [1usize, 4] {
            let mut e = EngineBuilder::new()
                .filter("evens", is_even)
                .map("halve", halve)
                .shards(shards)
                .queue_depth(4)
                .schema(&schema)
                .build()
                .unwrap();
            for chunk in keys.chunks(777) {
                e.push_batch(chunk, 1e-3).unwrap();
            }
            let merged = e.into_merged().unwrap();
            assert_eq!(
                merged.raw_self_join().to_bits(),
                seq.raw_self_join().to_bits(),
                "shards = {shards}"
            );
        }
    }

    /// A generic estimator (typed F-AGMS, not the erased enum) drives the
    /// same engine through `.estimator(…)`.
    #[test]
    fn engine_is_generic_over_the_estimator() {
        let mut rng = StdRng::seed_from_u64(4);
        let schema: sss_sketch::FagmsSchema = sss_sketch::FagmsSchema::new(1, 256, &mut rng);
        let mut e = EngineBuilder::new()
            .shards(2)
            .summary(schema.sketch())
            .build()
            .unwrap();
        let keys: Vec<u64> = (0..5_000u64).map(|i| i % 50).collect();
        e.push_batch(&keys, 1.0).unwrap();
        let merged = e.into_merged().unwrap();
        let mut seq = schema.sketch();
        sss_sketch::Sketch::update_batch(&mut seq, &keys);
        assert_eq!(merged.self_join().to_bits(), seq.self_join().to_bits());
    }

    #[test]
    fn builder_rejects_incomplete_or_bad_configs() {
        let mut rng = StdRng::seed_from_u64(5);
        let schema = JoinSchema::agms(4, &mut rng);
        assert!(matches!(
            EngineBuilder::<JoinSketch>::new().build(),
            Err(StreamError::MissingEstimator)
        ));
        assert!(matches!(
            EngineBuilder::new().schema(&schema).shards(0).build(),
            Err(StreamError::InvalidConfig { .. })
        ));
        // Shedding without a schema has no sketch to shed into.
        assert!(matches!(
            EngineBuilder::new()
                .summary(schema.sketch())
                .shedding(ControllerConfig::default())
                .build(),
            Err(StreamError::InvalidConfig {
                parameter: "shedding",
                ..
            })
        ));
    }

    /// With a saturated tiny queue the overflow path sheds, and the
    /// combined estimate still lands on the full-stream truth.
    #[test]
    fn overflow_sheds_without_bias() {
        let mut rng = StdRng::seed_from_u64(6);
        let schema = JoinSchema::fagms(1, 4096, &mut rng);
        let mut e = EngineBuilder::new()
            .shards(1)
            .queue_depth(1)
            .schema(&schema)
            .shedding(controller_config(1e5))
            .build()
            .unwrap();
        let mut exact = Exact::default();
        for _ in 0..200 {
            let batch: Vec<u64> = (0..10_000u64).map(|i| i % 2000).collect();
            e.push_batch(&batch, 1e-2).unwrap();
            for i in 0..10_000u64 {
                exact.add(i % 2000);
            }
        }
        let stats = e.stats();
        let runtime = &stats[0];
        let shed = &stats[1];
        assert_eq!(runtime.tuples_in, 200 * 10_000);
        assert_eq!(
            runtime.tuples_out + shed.tuples_in,
            runtime.tuples_in,
            "every tuple is either accepted or routed to the shedder"
        );
        assert!(e.queue_high_water() <= 2, "queue memory bounded");
        let est = e.self_join().unwrap();
        let truth = exact.self_join();
        assert!(
            (est - truth).abs() / truth < 0.15,
            "est = {est}, truth = {truth} (overflowed {})",
            shed.tuples_in
        );
    }

    #[test]
    fn empty_batches_are_harmless() {
        let mut rng = StdRng::seed_from_u64(7);
        let schema = JoinSchema::agms(4, &mut rng);
        let mut e = EngineBuilder::new()
            .schema(&schema)
            .shedding(controller_config(1e6))
            .build()
            .unwrap();
        e.push_batch(&[], 1.0).unwrap();
        assert_eq!(e.stats().last().unwrap().tuples_in, 0);
        assert_eq!(e.self_join().unwrap(), 0.0);
    }

    /// Two engines over the same schema estimate their join size,
    /// overflow included on both sides.
    #[test]
    fn cross_engine_size_of_join() {
        let mut rng = StdRng::seed_from_u64(8);
        let schema = JoinSchema::fagms(1, 4096, &mut rng);
        // Engine 1: keys 0..1000 ×20, no shedding.
        let mut e1 = EngineBuilder::new()
            .shards(2)
            .schema(&schema)
            .build()
            .unwrap();
        for _ in 0..20 {
            e1.push_batch(&(0..1000u64).collect::<Vec<_>>(), 1.0)
                .unwrap();
        }
        // Engine 2: keys 500..1500 ×10, with a saturating queue.
        let mut e2 = EngineBuilder::new()
            .shards(1)
            .queue_depth(1)
            .seed(99)
            .schema(&schema)
            .shedding(controller_config(1e5))
            .build()
            .unwrap();
        for _ in 0..10 {
            e2.push_batch(&(500..1500u64).collect::<Vec<_>>(), 1e-2)
                .unwrap();
        }
        // Overlap 500..1000: 500 keys × 20 × 10.
        let truth = 500.0 * 20.0 * 10.0;
        let est = e1.size_of_join(&e2).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.2,
            "est = {est}, truth = {truth}"
        );
        // Schema mismatch errors cleanly.
        let other = JoinSchema::agms(8, &mut rng);
        let e3 = EngineBuilder::new().schema(&other).build().unwrap();
        assert!(e1.size_of_join(&e3).is_err());
    }

    /// Regression (formerly on the deprecated `Pipeline`): a batch with a
    /// zero, negative, or non-finite duration must not panic or poison the
    /// controller — overflow tuples are still sketched at the current
    /// rate.
    #[test]
    fn degenerate_batch_durations_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let schema = JoinSchema::fagms(1, 1024, &mut rng);
        let mut e = EngineBuilder::new()
            .shards(1)
            .queue_depth(1)
            .schema(&schema)
            .shedding(controller_config(1e12))
            .build()
            .unwrap();
        let batch: Vec<u64> = (0..500u64).collect();
        for secs in [0.0, -2.0, f64::NAN, f64::INFINITY, 1.0] {
            e.push_batch(&batch, secs).unwrap();
        }
        assert_eq!(e.controller().unwrap().probability(), 1.0);
        let stats = e.stats();
        assert_eq!(stats[0].tuples_in, 2500);
        // No shedding at huge capacity: every tuple either entered the
        // runtime or was sketched by the shedder at p = 1.
        assert_eq!(stats[1].tuples_in, stats[1].tuples_out);
        assert_eq!(stats[0].tuples_out + stats[1].tuples_out, 2500);
    }

    /// The overflow shedder's epoch count stays bounded by the
    /// controller's rate grid even under a wildly oscillating load
    /// (formerly a deprecated-`Pipeline` test).
    #[test]
    fn epoch_count_is_bounded_under_oscillating_load() {
        let mut rng = StdRng::seed_from_u64(6);
        let schema = JoinSchema::fagms(1, 512, &mut rng);
        let mut e = EngineBuilder::new()
            .shards(1)
            .queue_depth(1)
            .schema(&schema)
            .shedding(controller_config(1e4))
            .build()
            .unwrap();
        let bound = e.controller().unwrap().distinct_rate_bound();
        let batch: Vec<u64> = (0..1000u64).map(|j| j % 100).collect();
        for i in 0..500u64 {
            // Overflow rate swings between ~77k and 1M tuples/s.
            let secs = 1e-3 * (1.0 + (i % 13) as f64);
            e.push_batch(&batch, secs).unwrap();
        }
        let shedder = e.shedder().unwrap();
        assert!(
            shedder.epoch_count() <= bound,
            "epochs {} exceed grid bound {bound}",
            shedder.epoch_count()
        );
    }

    /// The engine's top-k surface: heavy keys of the post-transform
    /// stream come back ranked with coherent error bars, any-key point
    /// queries work, and engines built without `.top_k(…)` answer with
    /// the typed `TopKDisabled` error instead of a panic.
    #[test]
    fn top_k_reports_post_transform_heavy_hitters() {
        let mut rng = StdRng::seed_from_u64(10);
        let schema = JoinSchema::fagms(1, 1024, &mut rng);
        let mut e = EngineBuilder::new()
            .filter("evens", is_even)
            .map("halve", halve)
            .shards(2)
            .schema(&schema)
            .top_k(5)
            .build()
            .unwrap();
        // Post-transform frequencies: key k (0..8) appears 2^(8-k) · 32
        // times; odd pre-images are filtered out.
        let mut batch = Vec::new();
        for k in 0..8u64 {
            for _ in 0..(1u64 << (8 - k)) * 32 {
                batch.push(2 * k); // even pre-image, halves to k
                batch.push(2 * k + 1); // odd pre-image, filtered
            }
        }
        for chunk in batch.chunks(997) {
            e.push_batch(chunk, 1e-3).unwrap();
        }
        let top = e.top_k(3).unwrap();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 0, "heaviest post-transform key");
        assert_eq!(top[1].0, 1);
        let truth = (1u64 << 8) as f64 * 32.0;
        let est = &top[0].1;
        assert!(
            (est.value - truth).abs() / truth < 0.1,
            "est {} truth {truth}",
            est.value
        );
        assert!(est.variance.is_finite() && est.variance >= 0.0);
        assert!(est.chebyshev(0.95).unwrap().contains(est.value));
        // Point query for a non-candidate key still answers.
        let light = e.key_frequency(7).unwrap();
        assert!((light.value - 32.0).abs() < 5.0 * light.variance.sqrt().max(1.0));
        // Without `.top_k(…)` the query is a typed error.
        let plain = EngineBuilder::new().schema(&schema).build().unwrap();
        assert!(matches!(plain.top_k(3), Err(StreamError::TopKDisabled)));
        assert!(matches!(
            plain.key_frequency(0),
            Err(StreamError::TopKDisabled)
        ));
        // And k = 0 is rejected at build time.
        assert!(matches!(
            EngineBuilder::new().schema(&schema).top_k(0).build(),
            Err(StreamError::InvalidConfig {
                parameter: "top_k",
                ..
            })
        ));
    }

    /// The distinct / quantile side summaries ride the engine next to
    /// the join path: full-rate answers near truth, typed errors when
    /// the sides were not requested, bad geometry rejected at build.
    #[test]
    fn distinct_and_quantile_side_summaries() {
        let mut rng = StdRng::seed_from_u64(12);
        let schema = JoinSchema::fagms(1, 1024, &mut rng);
        let mut e = EngineBuilder::new()
            .filter("evens", is_even)
            .map("halve", halve)
            .shards(2)
            .schema(&schema)
            .distinct(12)
            .quantiles(200)
            .build()
            .unwrap();
        // Post-transform stream: 0..3000, 10 times each.
        for _ in 0..10 {
            let batch: Vec<u64> = (0..6000u64).collect();
            e.push_batch(&batch, 1.0).unwrap();
        }
        let d = e.distinct().unwrap();
        assert!((d - 3000.0).abs() / 3000.0 < 0.05, "distinct = {d}");
        let de = e.distinct_estimate().unwrap();
        assert_eq!(de.value.to_bits(), d.to_bits());
        assert!(de.chebyshev(0.99).unwrap().contains(3000.0));
        let med = e.quantile(0.5).unwrap();
        assert!((med - 1500.0).abs() < 100.0, "median = {med}");
        let (lo, hi) = e.quantile_bounds(0.5).unwrap();
        assert!(lo <= med && med <= hi);
        let r = e.rank(1500).unwrap();
        assert!((r - 0.5).abs() < 0.05, "rank = {r}");
        // Engines built without the sides answer with typed errors.
        let plain = EngineBuilder::new().schema(&schema).build().unwrap();
        assert!(matches!(
            plain.distinct(),
            Err(StreamError::DistinctDisabled)
        ));
        assert!(matches!(
            plain.distinct_estimate(),
            Err(StreamError::DistinctDisabled)
        ));
        assert!(matches!(
            plain.quantile(0.5),
            Err(StreamError::QuantilesDisabled)
        ));
        assert!(matches!(
            plain.quantile_bounds(0.5),
            Err(StreamError::QuantilesDisabled)
        ));
        assert!(matches!(plain.rank(0), Err(StreamError::QuantilesDisabled)));
        // Bad geometry is a build-time estimator error.
        assert!(EngineBuilder::new()
            .schema(&schema)
            .distinct(3)
            .build()
            .is_err());
        assert!(EngineBuilder::new()
            .schema(&schema)
            .quantiles(1)
            .build()
            .is_err());
    }

    /// The engine is generic over the whole summary hierarchy: a
    /// `MultiSummary` prototype makes one sharded pass answer F₂,
    /// distinct, quantiles, and top-k at once from `merged()`.
    #[test]
    fn multi_summary_engine_answers_every_family_in_one_pass() {
        use sss_core::{
            DistinctQuery as _, JoinQuery as _, MultiSpec, QuantileQuery as _, TopKQuery as _,
        };
        let mut rng = StdRng::seed_from_u64(13);
        let spec = MultiSpec::new(JoinSchema::fagms(3, 2048, &mut rng), &mut rng);
        let mut e = EngineBuilder::new()
            .shards(2)
            .summary(spec.summary().unwrap())
            .build()
            .unwrap();
        // 2000 keys × 50 occurrences, plus a 5000-copy heavy hitter.
        for _ in 0..50 {
            e.push_batch(&(0..2000u64).collect::<Vec<_>>(), 1.0)
                .unwrap();
        }
        e.push_batch(&vec![7u64; 5000], 1.0).unwrap();
        let m = e.into_merged().unwrap();
        let f2 = m.self_join();
        let truth = 1999.0 * 50.0 * 50.0 + 5050.0 * 5050.0;
        assert!((f2 - truth).abs() / truth < 0.15, "f2 = {f2}");
        let d = m.distinct();
        assert!((d - 2000.0).abs() / 2000.0 < 0.05, "distinct = {d}");
        let med = m.quantile(0.5).unwrap();
        assert!((med - 1000.0).abs() < 100.0, "median = {med}");
        assert_eq!(m.stream_len(), 105_000);
        let top = m.top_k(5);
        assert_eq!(top.len(), 5);
        assert_eq!(top[0].0, 7, "the heavy hitter leads");
        assert!(
            (top[0].1 - 5050.0).abs() / 5050.0 < 0.1,
            "top freq {}",
            top[0].1
        );
    }

    /// The typed estimates carry the scalar values bit for bit — with and
    /// without a shedding leg, self-join and cross-engine join — and
    /// their error state is coherent.
    #[test]
    fn typed_estimates_match_scalar_queries_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(9);
        let schema = JoinSchema::fagms(3, 512, &mut rng);
        // e1 sheds under a saturated one-slot queue; e2 stays calm.
        let mut e1 = EngineBuilder::new()
            .shards(1)
            .queue_depth(1)
            .schema(&schema)
            .shedding(controller_config(1e5))
            .build()
            .unwrap();
        let mut e2 = EngineBuilder::new()
            .shards(2)
            .seed(11)
            .schema(&schema)
            .build()
            .unwrap();
        for _ in 0..50 {
            let batch: Vec<u64> = (0..5000u64).map(|i| i % 700).collect();
            e1.push_batch(&batch, 1e-2).unwrap();
            e2.push_batch(&(0..1000u64).collect::<Vec<_>>(), 1.0)
                .unwrap();
        }
        let sj = e1.self_join_estimate().unwrap();
        assert_eq!(sj.value.to_bits(), e1.self_join().unwrap().to_bits());
        assert_eq!(sj.basics.len(), 3, "one lane per F-AGMS row");
        assert!(sj.variance.is_finite() && sj.variance > 0.0);
        assert!(sj.chebyshev(0.95).unwrap().half_width() > sj.clt(0.95).unwrap().half_width());
        let join = e1.size_of_join_estimate(&e2).unwrap();
        assert_eq!(
            join.value.to_bits(),
            e1.size_of_join(&e2).unwrap().to_bits()
        );
        assert!(join.variance.is_finite() && join.variance > 0.0);
        let rev = e2.size_of_join_estimate(&e1).unwrap();
        assert_eq!(rev.value.to_bits(), e2.size_of_join(&e1).unwrap().to_bits());
        // Without a shedding leg the estimate is the raw sketch estimate.
        let calm = e2.self_join_estimate().unwrap();
        assert_eq!(calm.value.to_bits(), e2.self_join().unwrap().to_bits());
        assert!(calm.variance.is_finite());
    }
}
