//! A miniature data-stream-manager pipeline with QoS load shedding.
//!
//! The paper situates sketch-over-samples inside a DSMS: when the arrival
//! rate exceeds what the query network sustains, a *load shedder* drops
//! tuples — and if the drops are Bernoulli, every sketch downstream remains
//! an unbiased (rescalable) summary. This module is the minimal honest
//! version of that architecture (after Tatbul et al., VLDB'03):
//!
//! ```text
//! source batches ─▶ [transforms: filter/map …] ─▶ [adaptive shedder] ─▶ sketch
//!                                                        ▲
//!                                            RateController (capacity vs λ)
//! ```
//!
//! * Transforms model the query network (selection, key extraction).
//! * The [`RateController`] watches the *post-transform* rate and adjusts
//!   the shedding probability, snapping it to a log-grid so that only a
//!   bounded set of distinct rates is ever emitted.
//! * The [`EpochShedder`] segments the stream at each rate change and
//!   compacts same-rate epochs, so the final estimate is unbiased end to
//!   end while memory stays bounded by the grid size — not the number of
//!   rate changes.
//! * Per-stage statistics expose where tuples went — the observability a
//!   real engine needs to explain an approximate answer.

use crate::adaptive::RateController;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_core::sketch::JoinSchema;
use sss_core::{EpochShedder, Result};

/// A stateless per-tuple transform (function pointers keep the engine
/// `Debug` and the stages trivially serializable in spirit).
#[derive(Debug, Clone, Copy)]
pub enum Transform {
    /// Keep only tuples satisfying the predicate.
    Filter(fn(u64) -> bool),
    /// Rewrite the key (projection / key extraction).
    Map(fn(u64) -> u64),
}

/// Tuples in/out of one stage, cumulative over the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Stage label.
    pub name: String,
    /// Tuples entering the stage.
    pub tuples_in: u64,
    /// Tuples leaving the stage.
    pub tuples_out: u64,
}

/// The pipeline: transforms, an adaptive shedder, and a sketch sink.
#[derive(Debug)]
pub struct Pipeline {
    transforms: Vec<(String, Transform)>,
    stats: Vec<StageStats>,
    controller: RateController,
    shedder: EpochShedder,
    rng: StdRng,
    scratch: Vec<u64>,
}

/// Builder for [`Pipeline`].
#[derive(Debug)]
pub struct PipelineBuilder {
    transforms: Vec<(String, Transform)>,
}

impl PipelineBuilder {
    /// Start an empty pipeline description.
    pub fn new() -> Self {
        Self {
            transforms: Vec::new(),
        }
    }

    /// Append a named filter stage.
    pub fn filter(mut self, name: &str, pred: fn(u64) -> bool) -> Self {
        self.transforms
            .push((name.to_string(), Transform::Filter(pred)));
        self
    }

    /// Append a named map stage.
    pub fn map(mut self, name: &str, f: fn(u64) -> u64) -> Self {
        self.transforms.push((name.to_string(), Transform::Map(f)));
        self
    }

    /// Finish with the adaptive shedder and sketch sink.
    pub fn sink<R: rand::Rng>(
        self,
        schema: &JoinSchema,
        controller: RateController,
        seed_rng: &mut R,
    ) -> Result<Pipeline> {
        let mut stats: Vec<StageStats> = self
            .transforms
            .iter()
            .map(|(name, _)| StageStats {
                name: name.clone(),
                tuples_in: 0,
                tuples_out: 0,
            })
            .collect();
        stats.push(StageStats {
            name: "shedder".into(),
            tuples_in: 0,
            tuples_out: 0,
        });
        let mut rng = StdRng::seed_from_u64(seed_rng.random());
        let shedder = EpochShedder::new(schema, controller.probability(), &mut rng)?;
        Ok(Pipeline {
            transforms: self.transforms,
            stats,
            controller,
            shedder,
            rng,
            scratch: Vec::new(),
        })
    }
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    /// Feed one batch that arrived over `seconds` of wall-clock time.
    pub fn push_batch(&mut self, keys: &[u64], seconds: f64) -> Result<()> {
        // Run the transform chain on a scratch buffer.
        self.scratch.clear();
        self.scratch.extend_from_slice(keys);
        for (i, (_, t)) in self.transforms.iter().enumerate() {
            self.stats[i].tuples_in += self.scratch.len() as u64;
            match t {
                Transform::Filter(pred) => self.scratch.retain(|&k| pred(k)),
                Transform::Map(f) => {
                    for k in self.scratch.iter_mut() {
                        *k = f(*k);
                    }
                }
            }
            self.stats[i].tuples_out += self.scratch.len() as u64;
        }
        // The controller sees the post-transform rate (that is what the
        // sketch path must sustain).
        let p = self
            .controller
            .observe_batch(self.scratch.len() as u64, seconds);
        self.shedder.set_probability(p, &mut self.rng)?;
        let shed_stats = self.stats.last_mut().expect("shedder stage always exists");
        shed_stats.tuples_in += self.scratch.len() as u64;
        // Batched skip-sampling: bit-identical to observing each tuple, but
        // skipped tuples are jumped over and kept tuples sketched in bulk.
        shed_stats.tuples_out += self.shedder.feed_batch(&self.scratch);
        Ok(())
    }

    /// Unbiased self-join estimate of the post-transform stream.
    pub fn self_join(&self) -> Result<f64> {
        self.shedder.self_join()
    }

    /// Per-stage statistics (transforms first, shedder last).
    pub fn stats(&self) -> &[StageStats] {
        &self.stats
    }

    /// The live controller (rate estimate, current p).
    pub fn controller(&self) -> &RateController {
        &self.controller
    }

    /// The live shedder (epochs, kept counts).
    pub fn shedder(&self) -> &EpochShedder {
        &self.shedder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::ControllerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_exact_stub::Exact;

    /// A tiny exact aggregator local to the tests (the real `sss-exact`
    /// crate is not a dependency of `sss-stream`; this stub keeps it so).
    mod sss_exact_stub {
        use std::collections::HashMap;

        #[derive(Default)]
        pub struct Exact(HashMap<u64, u64>);

        impl Exact {
            pub fn add(&mut self, k: u64) {
                *self.0.entry(k).or_insert(0) += 1;
            }
            pub fn self_join(&self) -> f64 {
                self.0.values().map(|&c| (c * c) as f64).sum()
            }
        }
    }

    fn controller(capacity: f64) -> RateController {
        RateController::new(ControllerConfig {
            capacity_tps: capacity,
            smoothing: 0.5,
            hysteresis: 0.1,
            min_p: 1e-3,
            grid: sss_core::RateGrid::default(),
        })
    }

    fn is_even(k: u64) -> bool {
        k % 2 == 0
    }

    fn halve(k: u64) -> u64 {
        k / 2
    }

    #[test]
    fn transforms_apply_in_order_and_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let schema = JoinSchema::fagms(1, 1024, &mut rng);
        let mut p = PipelineBuilder::new()
            .filter("evens", is_even)
            .map("halve", halve)
            .sink(&schema, controller(1e12), &mut rng)
            .unwrap();
        p.push_batch(&(0..1000u64).collect::<Vec<_>>(), 1.0)
            .unwrap();
        let stats = p.stats();
        assert_eq!(stats[0].tuples_in, 1000);
        assert_eq!(stats[0].tuples_out, 500, "filter halves the batch");
        assert_eq!(stats[1].tuples_in, 500);
        assert_eq!(stats[1].tuples_out, 500, "map preserves cardinality");
        // Huge capacity: no shedding.
        assert_eq!(stats[2].tuples_out, 500);
        assert_eq!(p.controller().probability(), 1.0);
    }

    #[test]
    fn estimate_tracks_the_post_transform_stream() {
        let mut rng = StdRng::seed_from_u64(2);
        let schema = JoinSchema::fagms(1, 4096, &mut rng);
        let mut p = PipelineBuilder::new()
            .filter("evens", is_even)
            .map("halve", halve)
            .sink(&schema, controller(1e12), &mut rng)
            .unwrap();
        let mut exact = Exact::default();
        // keys 0..2000 ×30: after filter+map the stream is 0..1000 ×30.
        for _ in 0..30 {
            let batch: Vec<u64> = (0..2000u64).collect();
            p.push_batch(&batch, 1.0).unwrap();
            for k in 0..2000u64 {
                if is_even(k) {
                    exact.add(halve(k));
                }
            }
        }
        let est = p.self_join().unwrap();
        let truth = exact.self_join();
        assert!(
            (est - truth).abs() / truth < 0.1,
            "est = {est}, truth = {truth}"
        );
    }

    #[test]
    fn overload_triggers_shedding_but_not_bias() {
        let mut rng = StdRng::seed_from_u64(3);
        let schema = JoinSchema::fagms(1, 4096, &mut rng);
        // Capacity of 100k tuples/s against a 1M tuples/s stream.
        let mut p = PipelineBuilder::new()
            .sink(&schema, controller(1e5), &mut rng)
            .unwrap();
        let mut exact = Exact::default();
        for _ in 0..20 {
            let batch: Vec<u64> = (0..1_000_000u64).map(|i| i % 2000).collect();
            p.push_batch(&batch, 1.0).unwrap();
            for i in 0..1_000_000u64 {
                exact.add(i % 2000);
            }
        }
        // The shedder actually dropped most tuples…
        let shed = p.stats().last().unwrap();
        assert!(
            (shed.tuples_out as f64) < 0.2 * shed.tuples_in as f64,
            "kept {}/{}",
            shed.tuples_out,
            shed.tuples_in
        );
        assert!(p.controller().probability() < 0.2);
        // …and the estimate still lands on the full-stream truth.
        let est = p.self_join().unwrap();
        let truth = exact.self_join();
        assert!(
            (est - truth).abs() / truth < 0.1,
            "est = {est}, truth = {truth}"
        );
    }

    #[test]
    fn empty_batches_are_harmless() {
        let mut rng = StdRng::seed_from_u64(4);
        let schema = JoinSchema::agms(4, &mut rng);
        let mut p = PipelineBuilder::new()
            .sink(&schema, controller(1e6), &mut rng)
            .unwrap();
        p.push_batch(&[], 1.0).unwrap();
        assert_eq!(p.stats().last().unwrap().tuples_in, 0);
    }

    /// Regression: a batch with a zero, negative, or non-finite duration
    /// must not panic or poison the controller — the tuples are still
    /// sketched at the current rate.
    #[test]
    fn degenerate_batch_durations_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let schema = JoinSchema::fagms(1, 1024, &mut rng);
        let mut p = PipelineBuilder::new()
            .sink(&schema, controller(1e12), &mut rng)
            .unwrap();
        let batch: Vec<u64> = (0..500u64).collect();
        for secs in [0.0, -2.0, f64::NAN, f64::INFINITY, 1.0] {
            p.push_batch(&batch, secs).unwrap();
        }
        assert_eq!(p.controller().probability(), 1.0);
        assert_eq!(p.stats().last().unwrap().tuples_in, 2500);
        // No shedding at huge capacity: every tuple of every batch counted.
        assert_eq!(p.stats().last().unwrap().tuples_out, 2500);
    }

    /// The pipeline's epoch count stays bounded by the controller's rate
    /// grid even under a wildly oscillating load.
    #[test]
    fn epoch_count_is_bounded_under_oscillating_load() {
        let mut rng = StdRng::seed_from_u64(6);
        let schema = JoinSchema::fagms(1, 512, &mut rng);
        let controller = controller(1e4);
        let bound = controller.distinct_rate_bound();
        let mut p = PipelineBuilder::new()
            .sink(&schema, controller, &mut rng)
            .unwrap();
        let batch: Vec<u64> = (0..1000u64).map(|j| j % 100).collect();
        for i in 0..500u64 {
            // Arrival rate swings between ~77k and 1M tuples/s.
            let secs = 1e-3 * (1.0 + (i % 13) as f64);
            p.push_batch(&batch, secs).unwrap();
        }
        assert!(
            p.shedder().epoch_count() <= bound,
            "epochs {} exceed grid bound {bound}",
            p.shedder().epoch_count()
        );
    }
}
