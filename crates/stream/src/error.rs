//! The streaming layer's error type, completing the workspace hierarchy.
//!
//! Errors flow upward along the crate graph without stringifying:
//! `sss_sampling::Error` / `sss_sketch::Error` convert into
//! [`sss_core::Error`], which converts into [`StreamError`], so a runtime
//! caller matches one enum no matter which layer failed. Runtime-specific
//! failure modes (misconfiguration, a dead shard worker) get their own
//! variants instead of being shoehorned into estimator errors.

use std::fmt;

/// Anything that can go wrong constructing or driving the streaming
/// runtime.
#[derive(Debug)]
pub enum StreamError {
    /// An estimator-layer failure (schema mismatch, invalid probability…)
    /// surfaced through the runtime.
    Estimator(sss_core::Error),
    /// The builder was finished without a summary prototype (neither
    /// `.schema(…)` nor `.summary(…)` was called).
    MissingEstimator,
    /// A runtime configuration parameter is out of range.
    InvalidConfig {
        /// The offending parameter (`"shards"`, `"queue_depth"`, …).
        parameter: &'static str,
        /// What the configuration said.
        value: usize,
        /// Why it is rejected.
        reason: &'static str,
    },
    /// A shard worker is gone (its thread panicked or was torn down), so
    /// the runtime can no longer accept tuples or answer queries.
    ShardDisconnected {
        /// Index of the dead shard.
        shard: usize,
    },
    /// A top-k query was issued but the engine was built without
    /// `.top_k(…)`, so no heavy-hitter summary was maintained.
    TopKDisabled,
    /// A distinct-count query was issued but the engine was built without
    /// `.distinct(…)`, so no cardinality summary was maintained.
    DistinctDisabled,
    /// A quantile query was issued but the engine was built without
    /// `.quantiles(…)`, so no rank summary was maintained.
    QuantilesDisabled,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Estimator(e) => write!(f, "estimator error: {e}"),
            StreamError::MissingEstimator => {
                write!(f, "engine builder needs .schema(…) or .summary(…)")
            }
            StreamError::InvalidConfig {
                parameter,
                value,
                reason,
            } => write!(
                f,
                "invalid runtime config: {parameter} = {value} ({reason})"
            ),
            StreamError::ShardDisconnected { shard } => {
                write!(f, "shard worker {shard} disconnected")
            }
            StreamError::TopKDisabled => {
                write!(
                    f,
                    "top-k query on an engine built without .top_k(…) — no \
                     heavy-hitter summary was maintained"
                )
            }
            StreamError::DistinctDisabled => {
                write!(
                    f,
                    "distinct-count query on an engine built without \
                     .distinct(…) — no cardinality summary was maintained"
                )
            }
            StreamError::QuantilesDisabled => {
                write!(
                    f,
                    "quantile query on an engine built without .quantiles(…) \
                     — no rank summary was maintained"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Estimator(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sss_core::Error> for StreamError {
    fn from(e: sss_core::Error) -> Self {
        StreamError::Estimator(e)
    }
}

impl From<sss_sketch::Error> for StreamError {
    fn from(e: sss_sketch::Error) -> Self {
        StreamError::Estimator(e.into())
    }
}

impl From<sss_sampling::Error> for StreamError {
    fn from(e: sss_sampling::Error) -> Self {
        StreamError::Estimator(e.into())
    }
}

/// Streaming-layer result alias.
pub type Result<T> = std::result::Result<T, StreamError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_layer_errors_convert_upward() {
        let sampling = sss_sampling::Error::InvalidProbability(2.0);
        let e: StreamError = sampling.into();
        assert!(matches!(
            e,
            StreamError::Estimator(sss_core::Error::Sampling(_))
        ));
        // The source chain reaches the originating layer.
        let mut depth = 0;
        let mut cur: &dyn std::error::Error = &e;
        while let Some(next) = cur.source() {
            cur = next;
            depth += 1;
        }
        assert!(depth >= 2, "expected stream → core → sampling chain");
    }

    #[test]
    fn display_is_informative() {
        let e = StreamError::InvalidConfig {
            parameter: "shards",
            value: 0,
            reason: "must be at least 1",
        };
        let s = e.to_string();
        assert!(s.contains("shards") && s.contains('0'), "{s}");
        let d = StreamError::ShardDisconnected { shard: 3 };
        assert!(d.to_string().contains('3'));
    }
}
