//! # sss-stream — streaming pipelines around the combined estimators
//!
//! The operational layer of the reproduction: where `sss-core` owns the
//! estimator mathematics, this crate owns *running streams through them*
//! and measuring what the paper's Sections VI–VII measure:
//!
//! * [`shedder`] — a load-shedding pipeline pairing a full-stream sketch
//!   with a Bernoulli-shedded sketch and reporting the update-throughput
//!   **speed-up** (the paper's headline "factor of at least 10");
//! * [`online`] — an online-aggregation run that scans a relation in
//!   random order and records an estimate **trajectory** at configurable
//!   checkpoints (Figures 7–8 are trajectories of this kind);
//! * [`throughput`] — wall-clock instrumentation shared by the pipelines
//!   and the Criterion benches;
//! * [`ops`] — small composable stream operators (tagging, key
//!   extraction, multiplexing a stream into several consumers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod engine;
pub mod online;
pub mod ops;
pub mod parallel;
pub mod shedder;
pub mod throughput;
pub mod window;

pub use adaptive::{ControllerConfig, RateController};
pub use engine::{Pipeline, PipelineBuilder, StageStats, Transform};
pub use online::{OnlineAggregation, OnlineJoinAggregation, Snapshot};
pub use parallel::{parallel_shed, parallel_sketch, ParallelShedResult};
pub use shedder::{ShedderComparison, ShedderReport};
pub use throughput::Throughput;
pub use window::PanedWindowSketch;
