//! # sss-stream — streaming pipelines around the combined estimators
//!
//! The operational layer of the reproduction: where `sss-core` owns the
//! estimator mathematics, this crate owns *running streams through them*
//! and measuring what the paper's Sections VI–VII measure:
//!
//! * [`runtime`] — the persistent sharded runtime: a pool of shard
//!   workers behind bounded queues, merging to the sequential sketch bit
//!   for bit (the paper's §VI-C multi-core observation, made long-lived);
//! * [`ring`] — the lock-free SPSC ring buffers and the out-of-band
//!   control queue the runtime's ingest lanes are built from;
//! * [`snapshot`] — the versioned incremental snapshot cache behind
//!   `merged()`: repeated at-all-times queries re-clone only shards
//!   dirtied since the previous query;
//! * [`engine`] — the DSMS engine over that runtime: transform chain,
//!   backpressure, and an adaptive overflow shedder, built by
//!   [`EngineBuilder`]; every query also has a typed `*_estimate()` form
//!   returning an [`Estimate`](sss_core::Estimate) with error bars;
//! * [`shedder`] — a load-shedding pipeline pairing a full-stream sketch
//!   with a Bernoulli-shedded sketch and reporting the update-throughput
//!   **speed-up** (the paper's headline "factor of at least 10");
//! * [`online`] — an online-aggregation run that scans a relation in
//!   random order and records an estimate **trajectory** at configurable
//!   checkpoints (Figures 7–8 are trajectories of this kind);
//! * [`throughput`] — wall-clock instrumentation shared by the pipelines
//!   and the Criterion benches;
//! * [`ops`] — small composable stream operators (tagging, key
//!   extraction, multiplexing a stream into several consumers).

// `deny` rather than `forbid`: the SPSC ring transport ([`ring`]) is the
// one audited module allowed to use `unsafe`, mirroring the SIMD kernel
// policy of `sss-xi`. Everything else in the crate stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod engine;
pub mod error;
pub mod online;
pub mod ops;
pub mod parallel;
pub mod ring;
pub mod runtime;
pub mod shedder;
pub mod snapshot;
pub mod throughput;
pub mod window;

pub use adaptive::{ControllerConfig, RateController};
pub use engine::{EngineBuilder, StageStats, StreamEngine, Transform};
pub use error::{Result, StreamError};
pub use online::{OnlineAggregation, OnlineJoinAggregation, Snapshot};
pub use parallel::{parallel_shed, parallel_sketch, parallel_sketch_with, ParallelShedResult};
pub use runtime::{Partition, PoolStats, QueryHandle, ReadReplica, RuntimeConfig, ShardedRuntime};
pub use shedder::{ShedderComparison, ShedderReport};
pub use snapshot::CacheStats;
pub use throughput::Throughput;
pub use window::PanedWindowSketch;
