//! Online aggregation runs: estimate trajectories over a random-order scan.
//!
//! An [`OnlineAggregation`] drives a [`ScanSketcher`] through a relation
//! and snapshots the running estimate at the requested scan fractions —
//! the experimental shape of the paper's Figures 7–8, and the user-facing
//! behaviour of an online aggregation engine ("partial approximate answers
//! are provided to the user while the query is processed").

use sss_core::sketch::JoinSchema;
use sss_core::{Error, Result, ScanSketcher};

/// One point of an estimate trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Fraction of the relation scanned when the snapshot was taken.
    pub fraction: f64,
    /// Tuples scanned.
    pub scanned: u64,
    /// The running (bias-corrected) estimate.
    pub estimate: f64,
}

/// Drives a self-join scan and records snapshots.
#[derive(Debug)]
pub struct OnlineAggregation {
    scan: ScanSketcher,
    checkpoints: Vec<u64>,
    next_checkpoint: usize,
    snapshots: Vec<Snapshot>,
}

impl OnlineAggregation {
    /// Create a run over a relation of `population` tuples, snapshotting
    /// at the given scan `fractions` (each in `(0, 1]`).
    ///
    /// # Errors
    ///
    /// [`Error::Sampling`] for an empty relation, [`Error::Moments`] —
    /// never; invalid fractions are reported via
    /// [`sss_sampling::Error::InvalidProbability`].
    pub fn new(schema: &JoinSchema, population: u64, fractions: &[f64]) -> Result<Self> {
        for &f in fractions {
            if !(f > 0.0 && f <= 1.0) {
                return Err(sss_sampling::Error::InvalidProbability(f).into());
            }
        }
        let mut checkpoints: Vec<u64> = fractions
            .iter()
            .map(|&f| ((f * population as f64).round() as u64).clamp(1, population))
            .collect();
        checkpoints.sort_unstable();
        checkpoints.dedup();
        Ok(Self {
            scan: ScanSketcher::new(schema, population)?,
            checkpoints,
            next_checkpoint: 0,
            snapshots: Vec::new(),
        })
    }

    /// Feed the next scanned tuple; snapshots fire automatically.
    pub fn observe(&mut self, key: u64) -> Result<()> {
        self.scan.observe(key)?;
        if self.next_checkpoint < self.checkpoints.len()
            && self.scan.scanned() == self.checkpoints[self.next_checkpoint]
        {
            self.next_checkpoint += 1;
            // The estimate needs ≥ 2 tuples; a 1-tuple checkpoint on a
            // larger relation is skipped rather than failed.
            match self.scan.self_join() {
                Ok(estimate) => self.snapshots.push(Snapshot {
                    fraction: self.scan.progress(),
                    scanned: self.scan.scanned(),
                    estimate,
                }),
                Err(Error::InsufficientSample { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Run an entire scan order through the aggregation.
    pub fn run<I: IntoIterator<Item = u64>>(&mut self, scan_order: I) -> Result<()> {
        for k in scan_order {
            self.observe(k)?;
        }
        Ok(())
    }

    /// The snapshots recorded so far.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// The live scanner (for progress or ad-hoc estimates).
    pub fn scanner(&self) -> &ScanSketcher {
        &self.scan
    }
}

/// Drives two relation scans in lockstep and snapshots the running
/// **size-of-join** estimate at the requested fractions — the shape of the
/// paper's Figure 7.
///
/// Both relations advance to the same *fraction* at each checkpoint (the
/// natural behaviour of an engine scanning both inputs of a join at
/// proportional rates); the estimate applies the Proposition 16 scaling
/// with each side's own `α`.
#[derive(Debug)]
pub struct OnlineJoinAggregation {
    left: ScanSketcher,
    right: ScanSketcher,
    fractions: Vec<f64>,
    snapshots: Vec<Snapshot>,
}

impl OnlineJoinAggregation {
    /// Create a run over two relations of the given sizes, snapshotting at
    /// the given scan `fractions` (each in `(0, 1]`, deduplicated).
    pub fn new(
        schema: &JoinSchema,
        left_population: u64,
        right_population: u64,
        fractions: &[f64],
    ) -> Result<Self> {
        for &f in fractions {
            if !(f > 0.0 && f <= 1.0) {
                return Err(sss_sampling::Error::InvalidProbability(f).into());
            }
        }
        let mut fr = fractions.to_vec();
        fr.sort_by(|a, b| a.partial_cmp(b).expect("fractions are finite"));
        fr.dedup();
        Ok(Self {
            left: ScanSketcher::new(schema, left_population)?,
            right: ScanSketcher::new(schema, right_population)?,
            fractions: fr,
            snapshots: Vec::new(),
        })
    }

    /// Run both scan orders to completion, snapshotting along the way.
    ///
    /// # Errors
    ///
    /// Propagates scan overruns and schema mismatches; scans shorter than
    /// their declared population are permitted (trailing checkpoints are
    /// simply not reached).
    pub fn run(&mut self, left_order: &[u64], right_order: &[u64]) -> Result<()> {
        let mut li = 0usize;
        let mut ri = 0usize;
        for fi in 0..self.fractions.len() {
            let frac = self.fractions[fi];
            let lt = ((frac * self.left.population() as f64) as usize).min(left_order.len());
            let rt = ((frac * self.right.population() as f64) as usize).min(right_order.len());
            while li < lt {
                self.left.observe(left_order[li])?;
                li += 1;
            }
            while ri < rt {
                self.right.observe(right_order[ri])?;
                ri += 1;
            }
            match self.left.size_of_join(&self.right) {
                Ok(estimate) => self.snapshots.push(Snapshot {
                    fraction: frac,
                    scanned: self.left.scanned() + self.right.scanned(),
                    estimate,
                }),
                Err(Error::InsufficientSample { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// The snapshots recorded so far.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_sampling::without_replacement::PrefixScan;

    fn relation() -> Vec<u64> {
        (0..200u64)
            .flat_map(|k| std::iter::repeat(k).take((k % 10 + 1) as usize))
            .collect()
    }

    #[test]
    fn snapshots_fire_at_fractions() {
        let mut rng = StdRng::seed_from_u64(31);
        let rel = relation();
        let schema = JoinSchema::fagms(1, 2048, &mut rng);
        let scan = PrefixScan::new(rel.clone(), &mut rng);
        let mut oa = OnlineAggregation::new(&schema, rel.len() as u64, &[0.1, 0.5, 1.0]).unwrap();
        oa.run(scan.tuples().iter().copied()).unwrap();
        let snaps = oa.snapshots();
        assert_eq!(snaps.len(), 3);
        assert!((snaps[0].fraction - 0.1).abs() < 0.01);
        assert!((snaps[2].fraction - 1.0).abs() < 1e-12);
        // Trajectory converges to the truth at full scan (up to sketch
        // error, which is small at this width).
        let truth: f64 = (0..200u64)
            .map(|k| ((k % 10 + 1) * (k % 10 + 1)) as f64)
            .sum();
        let last = snaps[2].estimate;
        assert!(
            (last - truth).abs() / truth < 0.05,
            "final {last} vs {truth}"
        );
    }

    #[test]
    fn invalid_fractions_rejected() {
        let mut rng = StdRng::seed_from_u64(32);
        let schema = JoinSchema::agms(8, &mut rng);
        assert!(OnlineAggregation::new(&schema, 100, &[0.0]).is_err());
        assert!(OnlineAggregation::new(&schema, 100, &[1.5]).is_err());
    }

    #[test]
    fn duplicate_fractions_deduplicate() {
        let mut rng = StdRng::seed_from_u64(33);
        let rel = relation();
        let schema = JoinSchema::fagms(1, 256, &mut rng);
        let mut oa = OnlineAggregation::new(&schema, rel.len() as u64, &[0.5, 0.5, 0.5]).unwrap();
        oa.run(rel.iter().copied()).unwrap();
        assert_eq!(oa.snapshots().len(), 1);
    }

    #[test]
    fn join_trajectory_converges_to_truth() {
        let mut rng = StdRng::seed_from_u64(41);
        // F: keys 0..300 ×20; G: keys 150..450 ×10 — overlap 150 keys.
        let f_rel: Vec<u64> = (0..300u64)
            .flat_map(|k| std::iter::repeat(k).take(20))
            .collect();
        let g_rel: Vec<u64> = (150..450u64)
            .flat_map(|k| std::iter::repeat(k).take(10))
            .collect();
        let truth = 150.0 * 20.0 * 10.0;
        let schema = JoinSchema::fagms(1, 4096, &mut rng);
        let f_scan = PrefixScan::new(f_rel.clone(), &mut rng);
        let g_scan = PrefixScan::new(g_rel.clone(), &mut rng);
        let mut oj = OnlineJoinAggregation::new(
            &schema,
            f_rel.len() as u64,
            g_rel.len() as u64,
            &[0.1, 0.5, 1.0],
        )
        .unwrap();
        oj.run(f_scan.tuples(), g_scan.tuples()).unwrap();
        let snaps = oj.snapshots();
        assert_eq!(snaps.len(), 3);
        let final_est = snaps[2].estimate;
        assert!(
            (final_est - truth).abs() / truth < 0.1,
            "full-scan join estimate {final_est} vs {truth}"
        );
        // Earlier snapshots are present and at the right fractions.
        assert!((snaps[0].fraction - 0.1).abs() < 1e-12);
        assert!(snaps[0].scanned < snaps[2].scanned);
    }

    #[test]
    fn join_aggregation_rejects_bad_fractions() {
        let mut rng = StdRng::seed_from_u64(42);
        let schema = JoinSchema::agms(8, &mut rng);
        assert!(OnlineJoinAggregation::new(&schema, 10, 10, &[0.0]).is_err());
        assert!(OnlineJoinAggregation::new(&schema, 10, 10, &[2.0]).is_err());
    }

    #[test]
    fn estimates_tighten_as_the_scan_advances() {
        // Average trajectory error at 5% vs at 80% over several runs.
        let mut rng = StdRng::seed_from_u64(34);
        let rel = relation();
        let truth: f64 = (0..200u64)
            .map(|k| ((k % 10 + 1) * (k % 10 + 1)) as f64)
            .sum();
        let mut err_early = 0.0;
        let mut err_late = 0.0;
        let runs = 30;
        for _ in 0..runs {
            let schema = JoinSchema::fagms(1, 1024, &mut rng);
            let scan = PrefixScan::new(rel.clone(), &mut rng);
            let mut oa = OnlineAggregation::new(&schema, rel.len() as u64, &[0.05, 0.8]).unwrap();
            oa.run(scan.tuples().iter().copied()).unwrap();
            err_early += ((oa.snapshots()[0].estimate - truth) / truth).abs();
            err_late += ((oa.snapshots()[1].estimate - truth) / truth).abs();
        }
        assert!(
            err_late < err_early,
            "error must shrink along the scan: early {err_early}, late {err_late}"
        );
    }
}
