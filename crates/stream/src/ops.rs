//! Small composable stream operators.
//!
//! The pipelines in this crate consume plain `Iterator<Item = u64>`
//! streams; these helpers adapt richer tuple shapes onto that interface
//! and fan one stream out to several consumers (e.g. sketching two
//! different attributes of the same relation during one scan, which is how
//! an online aggregation engine amortizes its pass — "sketching can be
//! done essentially for free" on a spare core).

/// Extract a `u64` join key from each item of a stream.
pub fn keyed<T, I, F>(stream: I, mut key_fn: F) -> impl Iterator<Item = u64>
where
    I: IntoIterator<Item = T>,
    F: FnMut(&T) -> u64,
{
    stream.into_iter().map(move |t| key_fn(&t))
}

/// Feed every item of `stream` to each of the `consumers` callbacks.
///
/// This is the one-pass multiplexing pattern: one scan, many sketches.
pub fn broadcast<I>(stream: I, consumers: &mut [&mut dyn FnMut(u64)])
where
    I: IntoIterator<Item = u64>,
{
    for k in stream {
        for c in consumers.iter_mut() {
            c(k);
        }
    }
}

/// Count tuples flowing through a stream while passing them on unchanged.
pub struct Counted<I> {
    inner: I,
    count: u64,
}

impl<I> Counted<I> {
    /// Wrap a stream.
    pub fn new(inner: I) -> Self {
        Self { inner, count: 0 }
    }

    /// Tuples that have flowed through so far.
    ///
    /// (Named `seen` rather than `count` because `Iterator::count(self)`
    /// would shadow an inherent `count(&self)` during method resolution.)
    pub fn seen(&self) -> u64 {
        self.count
    }
}

impl<I: Iterator<Item = u64>> Iterator for Counted<I> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let item = self.inner.next();
        if item.is_some() {
            self.count += 1;
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_extracts_join_keys() {
        let rows = vec![("a", 3u64), ("b", 5), ("c", 3)];
        let keys: Vec<u64> = keyed(rows, |r| r.1).collect();
        assert_eq!(keys, vec![3, 5, 3]);
    }

    #[test]
    fn broadcast_reaches_every_consumer() {
        let mut sum = 0u64;
        let mut count = 0u64;
        {
            let mut add = |k: u64| sum += k;
            let mut cnt = |_k: u64| count += 1;
            broadcast(1..=4u64, &mut [&mut add, &mut cnt]);
        }
        assert_eq!(sum, 10);
        assert_eq!(count, 4);
    }

    #[test]
    fn counted_passes_through_and_counts() {
        let mut c = Counted::new(0..5u64);
        let collected: Vec<u64> = c.by_ref().collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.seen(), 5);
    }
}
