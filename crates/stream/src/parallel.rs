//! Parallel sketching over partitioned streams.
//!
//! Sketch linearity means a stream can be partitioned arbitrarily, each
//! partition sketched on its own core, and the partial sketches merged —
//! the result is *bit-identical* to sequential sketching (the paper's §VI-C
//! remark that "on the modern multi-core processors, sketching can be done
//! essentially for free"). Bernoulli shedding composes the same way: each
//! tuple of the union is still kept independently with probability `p`.
//!
//! One-shot helpers over the persistent [`ShardedRuntime`]
//! (`parallel_sketch`, `parallel_sketch_with`) plus the scoped-thread
//! `parallel_shed`; no extra dependencies.

use crate::error::Result as StreamResult;
use crate::runtime::{Partition, RuntimeConfig, ShardedRuntime};
use crate::throughput::Throughput;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sss_core::sketch::{JoinSchema, JoinSketch};
use sss_core::{
    bernoulli_self_join, bernoulli_self_join_estimate, Estimate, JoinQuery, LoadSheddingSketcher,
    Result, Summary,
};

/// Sketch `stream` with `threads` workers and merge the partial sketches.
///
/// The partitioning is by contiguous chunks; any partitioning yields the
/// same result by linearity. One-shot front end to the persistent
/// [`ShardedRuntime`] — spawn, scatter, merge, join.
///
/// ```
/// use rand::SeedableRng;
/// use sss_core::sketch::JoinSchema;
/// use sss_stream::parallel_sketch;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let schema = JoinSchema::fagms(1, 512, &mut rng);
/// let stream: Vec<u64> = (0..10_000).map(|i| i % 100).collect();
/// let merged = parallel_sketch(&schema, &stream, 4).unwrap();
/// // Bit-identical to the sequential sketch of the same stream.
/// let mut seq = schema.sketch();
/// for &k in &stream { seq.update(k, 1); }
/// assert_eq!(merged.raw_self_join(), seq.raw_self_join());
/// ```
pub fn parallel_sketch(
    schema: &JoinSchema,
    stream: &[u64],
    threads: usize,
) -> StreamResult<JoinSketch> {
    parallel_sketch_with(&schema.sketch(), stream, threads)
}

/// [`parallel_sketch`] for any [`JoinQuery`]: sketch `stream` across
/// `threads` shard workers cloned from `prototype` and merge the shards.
pub fn parallel_sketch_with<E: Summary + JoinQuery>(
    prototype: &E,
    stream: &[u64],
    threads: usize,
) -> StreamResult<E> {
    // An empty stream has nothing to partition: return the zero estimator
    // without spawning workers.
    if stream.is_empty() {
        return Ok(prototype.clone());
    }
    // Never more workers than tuples — a short stream yields fewer, busier
    // partitions rather than empty spawns.
    let threads = threads.clamp(1, stream.len());
    let chunk = stream.len().div_ceil(threads);
    let config = RuntimeConfig {
        shards: threads,
        // One chunk per shard: depth 1 suffices and bounds the copies.
        queue_depth: 1,
        partition: Partition::RoundRobin,
    };
    let mut rt = ShardedRuntime::new(config, prototype)?;
    for part in stream.chunks(chunk) {
        rt.push(part)?;
    }
    rt.into_merged()
}

/// Result of a parallel shedding run: the merged sketch plus the total
/// kept-tuple count needed by the Bernoulli bias correction.
#[derive(Debug)]
pub struct ParallelShedResult {
    /// Merged (unscaled) sketch of the union of kept tuples.
    pub sketch: JoinSketch,
    /// Total tuples kept across all workers.
    pub kept: u64,
    /// Total tuples offered across all workers (the logical stream
    /// length), needed by the sampling-noise plug-in of the typed
    /// estimate.
    pub seen: u64,
    /// Wall-clock measurement of the parallel region.
    pub throughput: Throughput,
    /// The shedding probability, for applying estimates later.
    pub p: f64,
}

impl ParallelShedResult {
    /// The unbiased self-join estimate of the full logical stream
    /// (the shared Proposition 14 correction).
    pub fn self_join(&self) -> f64 {
        bernoulli_self_join(self.sketch.raw_self_join(), self.p, self.kept)
    }

    /// Typed counterpart of [`ParallelShedResult::self_join`]: the same
    /// value bit for bit, with sketch-lane spread (corrected per lane)
    /// plus the Bernoulli sampling plug-in as the error bar.
    pub fn self_join_estimate(&self) -> Estimate {
        bernoulli_self_join_estimate(&self.sketch, self.p, self.kept, self.seen)
    }
}

/// Shed-and-sketch `stream` in parallel with `threads` workers, each with
/// an independently seeded sampler.
pub fn parallel_shed<R: Rng>(
    schema: &JoinSchema,
    stream: &[u64],
    p: f64,
    threads: usize,
    seed_rng: &mut R,
) -> Result<ParallelShedResult> {
    // Validate `p` up front so an empty stream still rejects bad inputs,
    // then handle the empty stream explicitly (nothing to partition).
    if !(p > 0.0 && p <= 1.0) {
        return Err(sss_sampling::Error::InvalidProbability(p).into());
    }
    if stream.is_empty() {
        return Ok(ParallelShedResult {
            sketch: schema.sketch(),
            kept: 0,
            seen: 0,
            throughput: Throughput::measure(0, || {}),
            p,
        });
    }
    let threads = threads.clamp(1, stream.len());
    let chunk = stream.len().div_ceil(threads);
    // Seed one RNG per worker up front, deterministically from the caller's.
    let seeds: Vec<u64> = (0..threads).map(|_| seed_rng.random()).collect();
    let mut result: Option<(JoinSketch, u64)> = None;
    let mut err = None;
    let t = Throughput::measure(stream.len() as u64, || {
        let partials: Vec<Result<(JoinSketch, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = stream
                .chunks(chunk)
                .zip(&seeds)
                .map(|(part, &seed)| {
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed);
                        let mut shed = LoadSheddingSketcher::new(schema, p, &mut rng)?;
                        shed.feed_batch(part);
                        Ok((shed.sketch().clone(), shed.kept()))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shed worker panicked"))
                .collect()
        });
        let mut merged = schema.sketch();
        let mut kept = 0u64;
        for part in partials {
            match part {
                Ok((sk, k)) => {
                    if let Err(e) = merged.merge(&sk) {
                        err = Some(e);
                        return;
                    }
                    kept += k;
                }
                Err(e) => {
                    err = Some(e);
                    return;
                }
            }
        }
        result = Some((merged, kept));
    });
    if let Some(e) = err {
        return Err(e);
    }
    let (sketch, kept) = result.expect("either err or result is set");
    Ok(ParallelShedResult {
        sketch,
        kept,
        seen: stream.len() as u64,
        throughput: t,
        p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream() -> Vec<u64> {
        (0..200_000u64).map(|i| (i * 2654435761) % 5000).collect()
    }

    /// Parallel sketching is bit-identical to sequential (linearity).
    #[test]
    fn parallel_equals_sequential() {
        let mut rng = StdRng::seed_from_u64(1);
        let schema = JoinSchema::fagms(2, 512, &mut rng);
        let s = stream();
        let mut sequential = schema.sketch();
        for &k in &s {
            sequential.update(k, 1);
        }
        for threads in [1usize, 2, 4, 7] {
            let parallel = parallel_sketch(&schema, &s, threads).unwrap();
            assert_eq!(
                parallel.raw_self_join(),
                sequential.raw_self_join(),
                "threads = {threads}"
            );
        }
    }

    /// The generic front end drives a typed estimator (not the erased
    /// enum) to the same bit-identical merge.
    #[test]
    fn parallel_sketch_with_any_estimator() {
        let mut rng = StdRng::seed_from_u64(30);
        let schema: sss_sketch::AgmsSchema = sss_sketch::AgmsSchema::new(64, &mut rng);
        let s = stream();
        let mut seq = schema.sketch();
        sss_sketch::Sketch::update_batch(&mut seq, &s);
        let par = parallel_sketch_with(&schema.sketch(), &s, 4).unwrap();
        assert_eq!(par.self_join().to_bits(), seq.self_join().to_bits());
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(2);
        let schema = JoinSchema::agms(4, &mut rng);
        let empty = parallel_sketch(&schema, &[], 8).unwrap();
        assert_eq!(empty.raw_self_join(), 0.0);
        let single = parallel_sketch(&schema, &[42], 8).unwrap();
        assert_eq!(single.raw_self_join(), 1.0);
    }

    /// Empty streams return the zero sketch without spawning workers, for
    /// any thread count (including the degenerate 0).
    #[test]
    fn empty_stream_yields_zero_sketch() {
        let mut rng = StdRng::seed_from_u64(20);
        let schema = JoinSchema::fagms(2, 64, &mut rng);
        for threads in [0usize, 1, 8] {
            let sk = parallel_sketch(&schema, &[], threads).unwrap();
            assert_eq!(sk.raw_self_join(), 0.0, "threads = {threads}");
        }
        // Shedding over an empty stream: zero kept, estimate zero, and the
        // probability is still validated.
        let r = parallel_shed(&schema, &[], 0.5, 4, &mut rng).unwrap();
        assert_eq!(r.kept, 0);
        assert_eq!(r.self_join(), 0.0);
        assert!(parallel_shed(&schema, &[], 0.0, 4, &mut rng).is_err());
    }

    /// More workers than tuples: the worker count clamps to the stream
    /// length and the result stays bit-identical to sequential.
    #[test]
    fn more_threads_than_tuples() {
        let mut rng = StdRng::seed_from_u64(21);
        let schema = JoinSchema::fagms(2, 64, &mut rng);
        let short: Vec<u64> = (0..5u64).collect();
        let mut sequential = schema.sketch();
        for &k in &short {
            sequential.update(k, 1);
        }
        for threads in [6usize, 64] {
            let parallel = parallel_sketch(&schema, &short, threads).unwrap();
            assert_eq!(
                parallel.raw_self_join(),
                sequential.raw_self_join(),
                "threads = {threads}"
            );
        }
        let r = parallel_shed(&schema, &short, 1.0, 64, &mut rng).unwrap();
        assert_eq!(r.kept, short.len() as u64, "p = 1 keeps everything");
    }

    /// Parallel shedding gives an unbiased estimate with ≈p·n kept tuples.
    #[test]
    fn parallel_shed_estimates_the_stream() {
        let mut rng = StdRng::seed_from_u64(3);
        let schema = JoinSchema::fagms(1, 4096, &mut rng);
        let s = stream(); // 5000 keys × 40 copies → F₂ = 8·10⁶
        let r = parallel_shed(&schema, &s, 0.2, 4, &mut rng).unwrap();
        let frac = r.kept as f64 / s.len() as f64;
        assert!((frac - 0.2).abs() < 0.01, "kept fraction {frac}");
        let truth = 5000.0 * 40.0 * 40.0;
        let est = r.self_join();
        assert!(
            (est - truth).abs() / truth < 0.1,
            "est = {est}, truth = {truth}"
        );
    }

    /// The typed shed estimate carries the scalar value bit for bit, the
    /// full stream length, and a finite two-part error bar.
    #[test]
    fn parallel_shed_typed_estimate_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(5);
        let schema = JoinSchema::agms(48, &mut rng);
        let s = stream();
        let r = parallel_shed(&schema, &s, 0.3, 4, &mut rng).unwrap();
        assert_eq!(r.seen, s.len() as u64);
        let e = r.self_join_estimate();
        assert_eq!(e.value.to_bits(), r.self_join().to_bits());
        assert_eq!(e.basics.len(), 48);
        assert!(e.variance.is_finite() && e.variance > 0.0);
        assert!(e.clt(0.95).unwrap().half_width() < e.chebyshev(0.95).unwrap().half_width());
    }

    #[test]
    fn parallel_shed_rejects_bad_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let schema = JoinSchema::agms(4, &mut rng);
        assert!(parallel_shed(&schema, &[1, 2, 3], 0.0, 2, &mut rng).is_err());
    }
}
