//! Lock-free single-producer/single-consumer ring buffers — the ingest
//! transport under [`ShardedRuntime`](crate::ShardedRuntime).
//!
//! Every shard lane is a pair of these rings: a *data* ring carrying
//! filled batch buffers producer → worker, and a *recycle* ring carrying
//! the emptied buffers back, so the steady-state ingest path performs
//! **zero heap allocations per batch**. Compared to the
//! `std::sync::mpsc::sync_channel` transport this replaces, a push or pop
//! is a handful of atomic operations on cache-line-padded cursors instead
//! of a mutex/futex round-trip, and wakeups only happen when the peer has
//! actually escalated its [`Backoff`] to a park.
//!
//! # Memory model
//!
//! The ring is the textbook SPSC design: a power-of-two slot array with
//! two monotonically increasing cursors.
//!
//! * The **producer** owns `tail`: it writes the slot at `tail & mask`,
//!   then publishes with a `Release` store of `tail + 1`. The consumer's
//!   `Acquire` load of `tail` therefore observes the slot write
//!   (release/acquire pairing on `tail`).
//! * The **consumer** owns `head`: it reads the slot at `head & mask`,
//!   then releases it with a `Release` store of `head + 1`. The
//!   producer's `Acquire` load of `head` therefore knows the slot is free
//!   before reusing it.
//! * Each side keeps a **shadow copy** of the cursor it does not own and
//!   refreshes it only when the ring looks full/empty, so the fast path
//!   touches a single shared cache line instead of two.
//! * The cursors live in `CachePadded` cells (128-byte aligned — two
//!   64-byte lines, covering adjacent-line prefetchers) so producer and
//!   consumer never false-share.
//!
//! Waiting escalates spin → yield → park ([`Backoff`]): a short
//! exponential spin for the "peer is mid-operation" case, a few
//! `yield_now`s for the "peer needs the core" case (this matters on the
//! single-core hosts the benches document), then a real `park_timeout`
//! behind a [`Parker`] handshake. The park protocol is the standard
//! flag-then-recheck dance: the waiter publishes `parked = true`
//! (SeqCst), re-checks the condition, and only then parks; the waker
//! performs its state change first and then swaps `parked` to false,
//! unparking on observation. Either the waiter's re-check sees the state
//! change or the waker sees the flag — both racing stores are
//! sequentially consistent — so no wakeup is lost. The park still uses a
//! 1 ms timeout as a belt-and-braces bound, never for correctness.
//!
//! This module is the **only** unsafe code in the crate (`unsafe` is
//! denied crate-wide and allowed here, mirroring the SIMD kernel policy
//! of `sss-xi`): the unsafety is confined to slot reads/writes through
//! `UnsafeCell<MaybeUninit<T>>` justified by the cursor discipline above,
//! and to the `Send`/`Sync` impls stating that discipline. Everything
//! above this module (lanes, snapshot cache, runtime) is safe code. Run
//! the tests under Miri with `cargo +nightly miri test -p sss-stream
//! ring` where a nightly toolchain is available (the threaded tests
//! shrink their iteration counts under `cfg(miri)`).

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;
use std::time::Duration;

/// Pad-and-align wrapper keeping producer and consumer cursors on
/// different cache lines (128 bytes: two 64-byte lines, so adjacent-line
/// prefetching cannot re-introduce false sharing).
#[repr(align(128))]
struct CachePadded<T>(T);

/// One side's park/unpark slot. See the module docs for the lost-wakeup
/// argument; the `Mutex` guards only the `Thread` handle registration and
/// is touched exclusively on the park slow path.
#[derive(Debug, Default)]
pub struct Parker {
    parked: AtomicBool,
    thread: Mutex<Option<Thread>>,
}

impl Parker {
    fn new() -> Self {
        Self::default()
    }

    /// Park the current thread until [`Parker::wake`] or the safety-net
    /// timeout. `ready` is re-checked *after* the `parked` flag is
    /// published, closing the race window against a concurrent waker.
    fn park(&self, ready: impl Fn() -> bool) {
        *self.thread.lock().expect("parker registration") = Some(std::thread::current());
        self.parked.store(true, Ordering::SeqCst);
        // Dekker handshake, waiter side: the `parked` publication must be
        // globally ordered against the peer's condition write *before*
        // `ready` reads that condition. The peer's cursor stores are only
        // Release and `ready`'s loads only Acquire, which do not join the
        // SeqCst total order — without this fence (and its twin in
        // [`Parker::wake`]) both sides can read stale values: the pusher
        // sees "not parked" (skips the unpark) while we see the old
        // cursor (park anyway) and eat the full safety-net timeout.
        std::sync::atomic::fence(Ordering::SeqCst);
        if ready() {
            self.parked.store(false, Ordering::SeqCst);
            return;
        }
        std::thread::park_timeout(Duration::from_millis(1));
        self.parked.store(false, Ordering::SeqCst);
    }

    /// Wake the parked peer, if there is one. Cheap when nobody is parked
    /// (a fence plus one atomic load).
    pub fn wake(&self) {
        // Dekker handshake, waker side: order the caller's preceding
        // condition write (a Release cursor store) before the `parked`
        // read. Paired with the fence in [`Parker::park`], at least one
        // side is guaranteed to see the other's store — the lost-wakeup
        // case where both read stale is impossible.
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) && self.parked.swap(false, Ordering::SeqCst) {
            if let Some(t) = self.thread.lock().expect("parker registration").clone() {
                t.unpark();
            }
        }
    }
}

/// Escalating wait strategy: exponential spin, then yields, then parks.
///
/// Reset it whenever progress is made so the next stall starts cheap.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
}

/// 2⁰..2⁵ `spin_loop` hints before the first yield. Deliberately short:
/// on a single-core host a spinning producer only delays the worker it is
/// waiting for.
const SPIN_STEPS: u32 = 6;
/// Yields between spinning and the first park.
const YIELD_STEPS: u32 = 4;

impl Backoff {
    /// A fresh (fully patient) backoff.
    pub fn new() -> Self {
        Self { step: 0 }
    }

    /// Record progress: the next stall starts from the cheap end.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Wait one escalation step. `parker` is this thread's park slot and
    /// `ready` the wake condition re-checked before a real park.
    pub fn snooze(&mut self, parker: &Parker, ready: impl Fn() -> bool) {
        if self.step < SPIN_STEPS {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else if self.step < SPIN_STEPS + YIELD_STEPS {
            std::thread::yield_now();
        } else {
            parker.park(ready);
        }
        self.step = self.step.saturating_add(1);
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

/// The state shared by a [`Producer`]/[`Consumer`] pair.
struct Shared<T> {
    /// Power-of-two slot array; a slot is initialized iff its index is in
    /// `head..tail` (the cursor discipline the unsafe blocks rely on).
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `slots.len() - 1`, for cheap index masking.
    mask: usize,
    /// Logical capacity (≤ `slots.len()`): the exact bound the runtime's
    /// `queue_depth` semantics promise, independent of the power-of-two
    /// rounding.
    capacity: usize,
    /// Next slot the consumer will read. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
    /// Set when either side drops; the other side observes it instead of
    /// blocking forever.
    closed: AtomicBool,
    /// Park slot of a producer blocked on a full ring.
    producer: Parker,
    /// Park slot of a consumer blocked on an empty ring. Shared with the
    /// runtime's control path (see [`Consumer::parker`]).
    consumer: Arc<Parker>,
}

// SAFETY: the ring moves `T` values across threads (so `T: Send` is
// required), and the only shared mutable state — the slot array — is
// partitioned by the head/tail cursor discipline: the producer writes
// only slots outside `head..tail`, the consumer reads only slots inside
// it, and each handoff is ordered by a Release store / Acquire load on
// the corresponding cursor. The atomics and the parker mutex are
// themselves thread-safe.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for Shared<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both handles are gone (`&mut self` proves it), so plain loads
        // suffice and every slot in `head..tail` is initialized.
        let mut head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        while head != tail {
            // SAFETY: `head..tail` slots hold initialized values that no
            // other thread can touch any more.
            #[allow(unsafe_code)]
            unsafe {
                (*self.slots[head & self.mask].get()).assume_init_drop();
            }
            head = head.wrapping_add(1);
        }
    }
}

/// A failed [`Producer::try_push`], handing the value back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is at capacity; the caller decides whether to retry,
    /// block, or route the value elsewhere (the runtime's overflow leg).
    Full(T),
    /// The consumer is gone; no push can ever succeed again.
    Closed(T),
}

impl<T> PushError<T> {
    /// The value that could not be pushed.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(v) | PushError::Closed(v) => v,
        }
    }
}

/// The sending half of an SPSC ring. Not cloneable — the *single*
/// producer is enforced by ownership.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Shadow of `head`, refreshed only when the ring looks full.
    cached_head: usize,
}

/// The receiving half of an SPSC ring. Not cloneable — the *single*
/// consumer is enforced by ownership.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Shadow of `tail`, refreshed only when the ring looks empty.
    cached_tail: usize,
}

/// Create a bounded SPSC ring holding at most `capacity` values.
///
/// # Panics
///
/// If `capacity` is zero (a zero-capacity ring could never transfer a
/// value without a rendezvous, which an SPSC ring cannot express).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be at least 1");
    let slots = capacity.next_power_of_two();
    let shared = Arc::new(Shared {
        slots: (0..slots)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        mask: slots - 1,
        capacity,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        producer: Parker::new(),
        consumer: Arc::new(Parker::new()),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            cached_head: 0,
        },
        Consumer {
            shared,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Push without blocking. On a full ring or a hung-up consumer the
    /// value comes back in the error.
    pub fn try_push(&mut self, value: T) -> Result<(), PushError<T>> {
        let s = &*self.shared;
        if s.closed.load(Ordering::Acquire) {
            return Err(PushError::Closed(value));
        }
        // Only this thread writes `tail`, so a relaxed load is exact.
        let tail = s.tail.0.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head) >= s.capacity {
            self.cached_head = s.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) >= s.capacity {
                return Err(PushError::Full(value));
            }
        }
        // SAFETY: `tail - head < capacity ≤ slots.len()`, so this slot is
        // outside `head..tail` — the consumer will not touch it until the
        // Release store below publishes it.
        #[allow(unsafe_code)]
        unsafe {
            (*s.slots[tail & s.mask].get()).write(value);
        }
        s.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        s.consumer.wake();
        Ok(())
    }

    /// Push, blocking (spin → yield → park) while the ring is full.
    /// Returns the value if the consumer is gone.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let mut value = value;
        let mut backoff = Backoff::new();
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Closed(v)) => return Err(v),
                Err(PushError::Full(v)) => value = v,
            }
            let s = &*self.shared;
            backoff.snooze(&s.producer, || {
                s.closed.load(Ordering::SeqCst)
                    || s.tail
                        .0
                        .load(Ordering::Relaxed)
                        .wrapping_sub(s.head.0.load(Ordering::SeqCst))
                        < s.capacity
            });
        }
    }

    /// Values currently in the ring.
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(s.head.0.load(Ordering::Acquire))
    }

    /// Whether the ring holds no values right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a [`Producer::try_push`] right now would report full.
    pub fn is_full(&self) -> bool {
        self.len() >= self.shared.capacity
    }

    /// The logical capacity the ring was created with.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        self.shared.consumer.wake();
    }
}

impl<T> Consumer<T> {
    /// Pop without blocking; `None` when the ring is empty (closed or
    /// not — a closed ring still drains).
    pub fn try_pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        // Only this thread writes `head`, so a relaxed load is exact.
        let head = s.head.0.load(Ordering::Relaxed);
        if self.cached_tail == head {
            self.cached_tail = s.tail.0.load(Ordering::Acquire);
            if self.cached_tail == head {
                return None;
            }
        }
        // SAFETY: `head < tail`, so this slot holds a value the producer
        // published with the Release store our Acquire load paired with;
        // the producer will not reuse it until the Release store below.
        #[allow(unsafe_code)]
        let value = unsafe { (*s.slots[head & s.mask].get()).assume_init_read() };
        s.head.0.store(head.wrapping_add(1), Ordering::Release);
        s.producer.wake();
        Some(value)
    }

    /// Pop, blocking (spin → yield → park) while the ring is empty.
    /// `None` only when the producer is gone **and** the ring is drained.
    pub fn pop(&mut self) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.shared.closed.load(Ordering::SeqCst) {
                // The producer may have pushed right before hanging up:
                // one more check after observing `closed`.
                return self.try_pop();
            }
            let s = &*self.shared;
            backoff.snooze(&s.consumer, || {
                s.closed.load(Ordering::SeqCst)
                    || s.tail.0.load(Ordering::Acquire) != s.head.0.load(Ordering::Relaxed)
            });
        }
    }

    /// Whether the producer has hung up (the ring may still hold values).
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::SeqCst)
    }

    /// Values currently in the ring.
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .0
            .load(Ordering::Acquire)
            .wrapping_sub(s.head.0.load(Ordering::Relaxed))
    }

    /// Whether the ring holds no values right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// This consumer's park slot, shared so an out-of-band signal (the
    /// runtime's snapshot control queue) can wake a worker parked on an
    /// empty data ring. The waiter must fold the out-of-band condition
    /// into the `ready` closure it passes to [`Backoff::snooze`].
    pub fn parker(&self) -> Arc<Parker> {
        Arc::clone(&self.shared.consumer)
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        self.shared.producer.wake();
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ring::Producer")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ring::Consumer")
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

/// A multi-producer control queue sharing a worker's [`Parker`]: the
/// runtime's out-of-band lane for snapshot requests, deliberately **not**
/// the SPSC ring (control is many-producers-to-one-worker and must never
/// compete with data for ring slots — that separation is what makes
/// "snapshot routed through the overflow leg" unrepresentable).
///
/// A mutex guards the queue; that is fine because control traffic is one
/// message per *query*, not per batch.
#[derive(Debug)]
pub struct ControlQueue<M> {
    queue: Mutex<VecDeque<M>>,
    /// The worker's park slot (the data-ring consumer's), so a control
    /// message can wake a worker parked on an empty data ring.
    waker: Arc<Parker>,
}

impl<M> ControlQueue<M> {
    /// A control queue waking `waker` (the worker's data-ring parker) on
    /// every message.
    pub fn new(waker: Arc<Parker>) -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            waker,
        }
    }

    /// Enqueue a control message and wake the worker if it is parked.
    pub fn send(&self, msg: M) {
        self.queue.lock().expect("control queue").push_back(msg);
        self.waker.wake();
    }

    /// Dequeue the oldest control message, if any.
    pub fn try_recv(&self) -> Option<M> {
        self.queue.lock().expect("control queue").pop_front()
    }

    /// Whether a control message is waiting (used in park re-checks).
    pub fn is_ready(&self) -> bool {
        !self.queue.lock().expect("control queue").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Iteration counts shrink under Miri (it interprets every memory
    /// access; the point there is the memory model, not throughput).
    const STRESS: u64 = if cfg!(miri) { 300 } else { 200_000 };

    #[test]
    fn fifo_order_and_capacity_single_thread() {
        let (mut tx, mut rx) = ring::<u64>(3);
        assert_eq!(tx.capacity(), 3);
        assert!(rx.try_pop().is_none(), "fresh ring is empty");
        assert!(tx.try_push(1).is_ok());
        assert!(tx.try_push(2).is_ok());
        assert!(tx.try_push(3).is_ok());
        assert!(tx.is_full());
        match tx.try_push(4) {
            Err(PushError::Full(4)) => {}
            other => panic!("expected Full(4), got {other:?}"),
        }
        assert_eq!(rx.try_pop(), Some(1));
        assert!(tx.try_push(4).is_ok(), "slot freed by the pop");
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), Some(3));
        assert_eq!(rx.try_pop(), Some(4));
        assert!(rx.try_pop().is_none());
    }

    /// Wrap the cursors around the slot array many times; order and
    /// occupancy stay exact (exercises the masking arithmetic).
    #[test]
    fn wraparound_preserves_order_and_occupancy() {
        let (mut tx, mut rx) = ring::<u64>(5); // slots rounded to 8
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for round in 0..if cfg!(miri) { 40 } else { 10_000 } {
            let burst = (round % 5) + 1;
            for _ in 0..burst {
                tx.try_push(next_in).unwrap();
                next_in += 1;
            }
            assert!(tx.len() <= 5, "occupancy within logical capacity");
            for _ in 0..burst {
                assert_eq!(rx.try_pop(), Some(next_out));
                next_out += 1;
            }
        }
        assert!(rx.is_empty());
    }

    /// The threaded contract: every value arrives exactly once, in order,
    /// across a tiny ring that forces constant blocking on both sides.
    #[test]
    fn spsc_threads_deliver_everything_in_order() {
        let (mut tx, mut rx) = ring::<u64>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..STRESS {
                tx.push(i).expect("consumer alive");
            }
            // Dropping tx closes the ring.
        });
        let mut expect = 0u64;
        while let Some(v) = rx.pop() {
            assert_eq!(v, expect);
            expect += 1;
        }
        assert_eq!(expect, STRESS, "every pushed value was popped");
        producer.join().unwrap();
    }

    /// Dropping the consumer makes pushes fail with the value handed
    /// back; dropping the producer lets the consumer drain then end.
    #[test]
    fn close_semantics_both_directions() {
        // Consumer hangs up first.
        let (mut tx, rx) = ring::<String>(4);
        tx.try_push("a".into()).unwrap();
        drop(rx);
        assert_eq!(tx.push("b".into()), Err("b".to_string()));
        match tx.try_push("c".into()) {
            Err(PushError::Closed(v)) => assert_eq!(v, "c"),
            other => panic!("expected Closed, got {other:?}"),
        }

        // Producer hangs up first: the ring still drains.
        let (mut tx, mut rx) = ring::<u64>(4);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None, "closed and drained");
    }

    /// Values still in the ring when both handles drop are dropped
    /// exactly once (the `Shared::drop` cleanup loop).
    #[test]
    fn dropping_a_nonempty_ring_drops_contents_exactly_once() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let (mut tx, mut rx) = ring::<Counted>(8);
        for _ in 0..5 {
            tx.try_push(Counted).unwrap();
        }
        drop(rx.try_pop()); // one popped and dropped by us
        drop(tx);
        drop(rx); // four remain in the ring
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    /// A parked consumer is woken by a push and a parked producer by a
    /// pop — stalls on both sides, no lost wakeups, everything arrives.
    #[test]
    fn park_and_wake_across_stalls() {
        let rounds = if cfg!(miri) { 20 } else { 400 };
        let (mut tx, mut rx) = ring::<u64>(1);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = rx.pop() {
                got.push(v);
                if v % 7 == 0 {
                    // Let the producer fill the ring and park.
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            got
        });
        for i in 0..rounds {
            if i % 5 == 0 {
                // Let the consumer drain the ring and park.
                std::thread::sleep(Duration::from_micros(200));
            }
            tx.push(i).unwrap();
        }
        drop(tx);
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..rounds).collect::<Vec<_>>());
    }

    /// The control queue wakes a worker parked on an empty data ring.
    #[test]
    fn control_queue_wakes_a_parked_worker() {
        let (tx, mut rx) = ring::<u64>(4);
        let ctrl = Arc::new(ControlQueue::<&'static str>::new(rx.parker()));
        let worker_ctrl = Arc::clone(&ctrl);
        let worker = std::thread::spawn(move || {
            let mut backoff = Backoff::new();
            loop {
                if let Some(msg) = worker_ctrl.try_recv() {
                    return msg;
                }
                if rx.try_pop().is_some() || rx.is_closed() {
                    continue;
                }
                let parker = rx.parker();
                backoff.snooze(&parker, || worker_ctrl.is_ready() || rx.is_closed());
            }
        });
        // Give the worker time to escalate all the way to parking.
        std::thread::sleep(Duration::from_millis(if cfg!(miri) { 1 } else { 20 }));
        ctrl.send("snapshot");
        assert_eq!(worker.join().unwrap(), "snapshot");
        drop(tx);
    }

    /// Model-based check: a random push/pop interleaving agrees with a
    /// `VecDeque` oracle at every step (single-threaded, so the oracle is
    /// exact). Skipped under Miri — the threaded tests cover the memory
    /// model there; this one checks the cursor arithmetic.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn random_ops_match_a_vecdeque_model() {
        // SplitMix64 as a tiny deterministic RNG.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rand = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for capacity in [1usize, 2, 3, 7, 8] {
            let (mut tx, mut rx) = ring::<u64>(capacity);
            let mut model: VecDeque<u64> = VecDeque::new();
            let mut next = 0u64;
            for _ in 0..20_000 {
                if rand() % 2 == 0 {
                    match tx.try_push(next) {
                        Ok(()) => {
                            assert!(model.len() < capacity, "push succeeded past capacity");
                            model.push_back(next);
                            next += 1;
                        }
                        Err(PushError::Full(_)) => {
                            assert_eq!(model.len(), capacity, "spurious Full");
                        }
                        Err(PushError::Closed(_)) => unreachable!("never closed here"),
                    }
                } else {
                    assert_eq!(rx.try_pop(), model.pop_front());
                }
                assert_eq!(tx.len(), model.len());
                assert_eq!(rx.len(), model.len());
            }
        }
    }
}
