//! The persistent sharded streaming runtime.
//!
//! The paper's §VI-C observes that by sketch linearity "on the modern
//! multi-core processors, sketching can be done essentially for free":
//! partition the stream any way at all, sketch each partition on its own
//! core, and the merged sketch is *bit-identical* to sequential sketching.
//! [`parallel_sketch`](crate::parallel_sketch) exploits this for a
//! pre-materialized slice; this module is the long-lived version — a DSMS
//! needs a runtime that absorbs batches continuously and answers
//! at-all-times queries, not a one-shot scatter/gather.
//!
//! ```text
//!              ┌─ data ring ─▶ worker 0 ─ owns shard sketch E₀
//! push_batch ──┼─ data ring ─▶ worker 1 ─ owns shard sketch E₁   ⇠ recycle
//!  (partition) └─ data ring ─▶ worker 2 ─ owns shard sketch E₂     rings
//!                      ▲ control queue (snapshot requests)
//!  merged() ── dirty shards only ──▶ snapshot cache ──▶ E₀ ⊕ E₁ ⊕ E₂
//! ```
//!
//! Two perf-critical design decisions (see `DESIGN.md` §4h and
//! `BENCH_sharded_runtime.json` for the before/after numbers):
//!
//! * **Transport** — each shard lane is a pair of lock-free SPSC
//!   [`ring`] buffers: a *data* ring carrying batch buffers
//!   (`Vec<u64>`, no command enum) to the worker, and a reverse *recycle*
//!   ring returning emptied buffers to the producer. Steady-state ingest
//!   therefore performs **zero heap allocations per batch**
//!   ([`ShardedRuntime::pool_stats`] proves it) and a push is a handful
//!   of atomics, not a `sync_channel` futex round-trip. The rings are
//!   still **bounded** (`queue_depth` batches), so memory stays
//!   `O(shards · queue_depth · batch)` no matter how fast the producer is.
//! * **Queries** — snapshot requests travel on a separate per-shard
//!   control queue, so a query can *never* be routed through the data
//!   ring's overflow leg (the old transport had a dead
//!   `Full(Cmd::Snapshot)` match arm to that effect; the split makes the
//!   confusion unrepresentable at the type level). Each worker bumps a
//!   per-shard **dirty epoch** after every applied batch, and
//!   [`merged`](ShardedRuntime::merged) re-clones only shards whose epoch
//!   moved since the previous query, folding them into a cached merge by
//!   exact retract + merge deltas ([`snapshot`](crate::snapshot)). A
//!   repeated at-all-times query with no intervening ingest costs one
//!   clone — O(sketch bytes), independent of the shard count.
//!
//! * [`push`](ShardedRuntime::push) blocks when a ring is full
//!   (backpressure propagates to the source);
//!   [`try_push`](ShardedRuntime::try_push) never blocks and instead hands
//!   overflowed tuples back to the caller: the engine routes overload
//!   into the [`EpochShedder`](sss_core::EpochShedder) path and keeps the
//!   estimate unbiased under sustained overload.
//! * [`merged`](ShardedRuntime::merged) reflects exactly the tuples
//!   accepted before the call: each snapshot request carries the shard's
//!   accepted-batch count and the worker answers only once it has applied
//!   at least that many — the at-all-times query, without a full barrier.
//! * [`query_handle`](ShardedRuntime::query_handle) returns a cloneable
//!   [`QueryHandle`] so queries can run from other threads *while* the
//!   owner keeps pushing — the read-path/write-path separation SF-sketch
//!   (arXiv 1701.04148) argues for, with Huang–Tai–Yi (arXiv 1412.1763)
//!   continuous-tracking polling as the motivating workload.
//!
//! The runtime is generic over any [`Summary`] — join sketches and
//! heavy-hitter summaries alike, not just the backend-erased `JoinSketch`;
//! the join-query conveniences additionally require a [`JoinQuery`].

use crate::error::{Result, StreamError};
use crate::ring::{self, Backoff, ControlQueue, PushError};
use crate::snapshot::{CacheStats, ReplicaFrame, ReplicaHub, SnapshotCache};
use sss_core::{Estimate, JoinQuery, Portable, SlimQuery, Summary};
use sss_sampling::staleness_variance_plugin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How [`ShardedRuntime::push`] routes tuples to shard workers.
///
/// By linearity every policy merges to the same (bit-identical) sketch;
/// the choice only affects load balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partition {
    /// Each batch goes, whole, to the next shard in rotation. Cheapest
    /// (no per-key work) and balanced when batches are similar in size.
    #[default]
    RoundRobin,
    /// Each key is routed by a hash of its value, so a given key always
    /// lands on the same shard. Balanced even when batch sizes vary
    /// wildly, at the cost of a per-key hash and scatter.
    Hash,
}

/// Configuration for a [`ShardedRuntime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of shard workers (threads) to spawn.
    pub shards: usize,
    /// Bounded depth of each shard's data ring, in batches.
    pub queue_depth: usize,
    /// Tuple-routing policy.
    pub partition: Partition,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            queue_depth: 64,
            partition: Partition::default(),
        }
    }
}

impl RuntimeConfig {
    /// Reject configurations the runtime cannot honour.
    fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(StreamError::InvalidConfig {
                parameter: "shards",
                value: 0,
                reason: "must be at least 1",
            });
        }
        if self.queue_depth == 0 {
            return Err(StreamError::InvalidConfig {
                parameter: "queue_depth",
                value: 0,
                reason: "must be at least 1 (0 would rendezvous every batch)",
            });
        }
        Ok(())
    }
}

/// A snapshot request on a shard's control queue: "reply with your
/// estimator once you have applied at least `min` batches". Carrying the
/// floor instead of queueing behind data gives the same exactness as the
/// old in-band barrier — every batch accepted before the query is
/// reflected — without a `Cmd` enum sharing the data path.
struct SnapshotReq<E> {
    /// The shard's accepted-batch count at request time.
    min: u64,
    /// Where to send `(applied_epoch, clone)` once `applied ≥ min`.
    reply: mpsc::Sender<(u64, E)>,
}

/// SplitMix64: a full-avalanche mix so adversarially clustered keys still
/// spread across shards (the sketch hash families are independent of it).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-shard state shared between the producer, the worker, and queriers.
struct ShardState<E> {
    /// Batches successfully enqueued on this shard's data ring
    /// (producer-bumped, immediately after the ring push).
    accepted: AtomicU64,
    /// Batches the worker has claimed off the data ring. The occupancy
    /// gauges read `accepted − applied` as "batches still queued", so the
    /// worker bumps this as buffers *leave the ring* (a coalesced run
    /// claims each buffer on pop), keeping the structural
    /// `≤ depth + 1` high-water bound. Snapshot floors never read this:
    /// they use the worker-local counter, which only advances after
    /// `update_batch` lands.
    applied: AtomicU64,
    /// Tuples the worker has applied (bumped after `update_batch`, so the
    /// gauge counts work done rather than work promised).
    ingested: AtomicU64,
    /// Cleared when the worker exits (normally or by panic), so queriers
    /// waiting on a snapshot reply can fail over to
    /// [`StreamError::ShardDisconnected`] instead of waiting forever.
    live: AtomicBool,
    /// The out-of-band snapshot lane, waking the worker through its
    /// data-ring parker.
    ctrl: ControlQueue<SnapshotReq<E>>,
}

/// State shared by the runtime, its workers, and every [`QueryHandle`].
struct RuntimeShared<E> {
    config: RuntimeConfig,
    /// The empty estimator every shard started from (schema seeds). Under
    /// a mutex so only `E: Send` is required of the estimator.
    prototype: Mutex<E>,
    shards: Vec<ShardState<E>>,
    /// The incremental snapshot cache; its mutex also serializes
    /// concurrent queries from multiple handles.
    cache: Mutex<SnapshotCache<E>>,
    /// The slim read-replica exchange point: one refresher projects the
    /// merged fat state, N [`ReadReplica`]s decode the published bytes.
    replica: ReplicaHub,
    /// Highest `accepted − applied` any shard ever reached (≤ depth + 1).
    high_water: AtomicUsize,
    /// Monotonic construction timestamp — the denominator of
    /// [`ShardedRuntime::tuples_per_sec`].
    started: Instant,
}

impl<E: Summary> RuntimeShared<E> {
    /// Lock the snapshot cache, recovering from poison. A querier thread
    /// can panic while holding this lock (estimator `Clone`/`merge_from`
    /// run user code), possibly leaving a half-refreshed cache behind.
    /// The cache is pure derived state, so recovery is to reset it and
    /// let the next query rebuild from the live shards — subsequent
    /// queries must degrade to a full re-merge, never to a panic.
    fn lock_cache(&self) -> MutexGuard<'_, SnapshotCache<E>> {
        match self.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                *guard = SnapshotCache::new(self.config.shards);
                guard
            }
        }
    }

    /// Lock the prototype, recovering from poison. The prototype is only
    /// ever *cloned* under this lock, never mutated, so a poisoned guard
    /// still holds the pristine schema-bearing estimator.
    fn lock_prototype(&self) -> MutexGuard<'_, E> {
        self.prototype
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn tuples_ingested(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.ingested.load(Ordering::Acquire))
            .sum()
    }

    fn tuples_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.tuples_ingested() as f64 / secs
        } else {
            0.0
        }
    }

    fn queue_occupancy(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.accepted
                    .load(Ordering::Acquire)
                    .saturating_sub(s.applied.load(Ordering::Acquire)) as usize
            })
            .max()
            .unwrap_or(0)
    }

    /// The incremental at-all-times query. See the module docs: only
    /// shards whose dirty epoch moved past the cached stamp are asked for
    /// a fresh clone; the cache folds them in by exact retract + merge.
    fn merged(&self) -> Result<E> {
        // Holding the cache lock for the whole query serializes
        // concurrent handles (each still pays only its own dirty delta).
        let mut cache = self.lock_cache();
        let mut fetches = Vec::new();
        for (shard, state) in self.shards.iter().enumerate() {
            let target = state.accepted.load(Ordering::Acquire);
            let clean = cache
                .shard_version(shard)
                .map_or(target == 0, |v| v >= target);
            if clean {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            state.ctrl.send(SnapshotReq {
                min: target,
                reply: tx,
            });
            fetches.push((shard, rx));
        }
        let mut fresh = Vec::with_capacity(fetches.len());
        for (shard, rx) in fetches {
            let (version, clone) = self.fetch_snapshot(shard, &rx)?;
            fresh.push((shard, version, clone));
        }
        let prototype = self.lock_prototype().clone();
        cache
            .refresh(&prototype, fresh)
            .map_err(StreamError::Estimator)
    }

    /// The pre-cache full barrier: clone every shard, merge in shard
    /// order. Kept as the benchmark baseline and a cross-check.
    fn merged_uncached(&self) -> Result<E> {
        let mut fetches = Vec::with_capacity(self.shards.len());
        for (shard, state) in self.shards.iter().enumerate() {
            let target = state.accepted.load(Ordering::Acquire);
            let (tx, rx) = mpsc::channel();
            state.ctrl.send(SnapshotReq {
                min: target,
                reply: tx,
            });
            fetches.push((shard, rx));
        }
        let mut merged = self.lock_prototype().clone();
        for (shard, rx) in fetches {
            let (_, clone) = self.fetch_snapshot(shard, &rx)?;
            merged.merge_from(&clone)?;
        }
        Ok(merged)
    }

    /// Wait for a shard's snapshot reply, failing over to
    /// [`StreamError::ShardDisconnected`] if the worker dies.
    fn fetch_snapshot(&self, shard: usize, rx: &mpsc::Receiver<(u64, E)>) -> Result<(u64, E)> {
        loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(reply) => return Ok(reply),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !self.shards[shard].live.load(Ordering::SeqCst) {
                        // The worker may have replied in its dying
                        // breath; one last non-blocking look.
                        return rx
                            .try_recv()
                            .map_err(|_| StreamError::ShardDisconnected { shard });
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(StreamError::ShardDisconnected { shard });
                }
            }
        }
    }

    fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    /// Sum of every shard's accepted-batch counter — the staleness
    /// yardstick of the replica frames (monotone; each shard's counter is
    /// bumped by the producer at enqueue time).
    fn accepted_total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.accepted.load(Ordering::Acquire))
            .sum()
    }
}

impl<E: Summary + SlimQuery> RuntimeShared<E> {
    /// Ensure the hub carries a frame reflecting at least `min_version`
    /// accepted batches, projecting a fresh one if not. Single-flight:
    /// concurrent stale readers elect one refresher (the `begin_refresh`
    /// guard) and everyone else decodes the frame that refresher
    /// published.
    fn ensure_replica(&self, min_version: u64) -> Result<ReplicaFrame> {
        if let Some(frame) = self.replica.frame() {
            if frame.version >= min_version {
                return Ok(frame);
            }
        }
        let _refresh = self.replica.begin_refresh();
        // Double-check under the refresh lock: the previous holder may
        // have published exactly what we need.
        if let Some(frame) = self.replica.frame() {
            if frame.version >= min_version {
                return Ok(frame);
            }
        }
        // Stamp the version *before* merging: `merged()` reflects at
        // least every batch accepted before the call, so the projection
        // covers ≥ `version` batches and staleness is never understated.
        let version = self.accepted_total();
        let fat = self.merged()?;
        let applied = self.tuples_ingested();
        let bytes = fat.slim().encode().map_err(StreamError::Estimator)?;
        let frame = ReplicaFrame {
            version,
            applied,
            bytes: Arc::new(bytes),
        };
        self.replica.publish(frame.clone());
        Ok(frame)
    }
}

/// The producer side of one shard lane: the data ring in, the recycle
/// ring back, and a stack of spare (cleared) batch buffers.
struct IngestLane {
    data: ring::Producer<Vec<u64>>,
    recycle: ring::Consumer<Vec<u64>>,
    spare: Vec<Vec<u64>>,
}

/// Batch-buffer pool accounting ([`ShardedRuntime::pool_stats`]): in
/// steady state `reuses` grows with every batch while `allocations`
/// stays at its warm-up value — the observable form of the zero
/// allocations / batch claim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers allocated fresh (pool was empty — warm-up, or the worker
    /// fell so far behind that the recycle ring starved).
    pub allocations: u64,
    /// Buffers taken from the spare stack or the recycle ring.
    pub reuses: u64,
}

/// A long-lived pool of shard workers, each owning one estimator.
///
/// Created from a *prototype* estimator (a fresh, empty sketch carrying
/// the schema seeds); every shard clones it, so all shards share the same
/// hash functions and their sketches merge exactly.
///
/// ```
/// use rand::SeedableRng;
/// use sss_core::sketch::JoinSchema;
/// use sss_stream::{RuntimeConfig, ShardedRuntime};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let schema = JoinSchema::fagms(1, 512, &mut rng);
/// let config = RuntimeConfig { shards: 4, ..Default::default() };
/// let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
/// for chunk in (0..10_000u64).collect::<Vec<_>>().chunks(256) {
///     rt.push(chunk).unwrap();
/// }
/// let merged = rt.into_merged().unwrap();
/// // Bit-identical to the sequential sketch of the same stream.
/// let mut seq = schema.sketch();
/// for k in 0..10_000u64 { seq.update(k, 1); }
/// assert_eq!(merged.raw_self_join(), seq.raw_self_join());
/// ```
pub struct ShardedRuntime<E: Summary> {
    shared: Arc<RuntimeShared<E>>,
    lanes: Vec<IngestLane>,
    handles: Vec<JoinHandle<E>>,
    /// Next shard for [`Partition::RoundRobin`].
    cursor: usize,
    /// Per-shard scatter buffers for [`Partition::Hash`]; these circulate
    /// through the pool too (a filled one is pushed as-is and replaced by
    /// a recycled buffer).
    scatter: Vec<Vec<u64>>,
    pool: PoolStats,
}

impl<E: Summary> ShardedRuntime<E> {
    /// Spawn the worker pool. `prototype` must be a fresh estimator; each
    /// shard starts from a clone of it.
    pub fn new(config: RuntimeConfig, prototype: &E) -> Result<Self> {
        config.validate()?;
        Self::new_per_shard(config, vec![prototype.clone(); config.shards])
    }

    /// Spawn the worker pool with a *distinct* prototype per shard
    /// (`prototypes.len()` must equal `config.shards`; all must be
    /// mutually mergeable).
    ///
    /// [`new`](Self::new) clones one prototype everywhere, which is
    /// correct for deterministic summaries but **wrong for summaries
    /// carrying private sampling randomness**: cloning a
    /// [`Sampled`](sss_core::Sampled) front end duplicates its skip RNG,
    /// so every shard would make *correlated* inclusion decisions and the
    /// cross-shard estimator would no longer be unbiased. Build one
    /// prototype, then [`Sampled::reseed`](sss_core::Sampled::reseed)
    /// per-shard clones before passing them here.
    pub fn new_per_shard(config: RuntimeConfig, prototypes: Vec<E>) -> Result<Self> {
        config.validate()?;
        if prototypes.len() != config.shards {
            return Err(StreamError::InvalidConfig {
                parameter: "prototypes",
                value: prototypes.len(),
                reason: "must supply exactly one prototype per shard",
            });
        }
        let mut lanes = Vec::with_capacity(config.shards);
        let mut consumers = Vec::with_capacity(config.shards);
        let mut states = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let (data_tx, data_rx) = ring::ring::<Vec<u64>>(config.queue_depth);
            // The recycle ring holds every buffer that can circulate:
            // `queue_depth` in the data ring + one in the worker's hands
            // + one being filled by the producer, with headroom so the
            // worker never has to drop a buffer on a full recycle ring.
            let (recycle_tx, recycle_rx) = ring::ring::<Vec<u64>>(config.queue_depth + 4);
            states.push(ShardState {
                accepted: AtomicU64::new(0),
                applied: AtomicU64::new(0),
                ingested: AtomicU64::new(0),
                live: AtomicBool::new(true),
                // Control messages wake the worker through the same
                // parker it uses when the data ring runs empty.
                ctrl: ControlQueue::new(data_rx.parker()),
            });
            lanes.push(IngestLane {
                data: data_tx,
                recycle: recycle_rx,
                spare: Vec::new(),
            });
            consumers.push((data_rx, recycle_tx));
        }
        let shared = Arc::new(RuntimeShared {
            config,
            // The merge zero: a fresh clone of shard 0's prototype. All
            // prototypes are mutually mergeable by contract, so any one
            // serves as the identity the shard snapshots merge into.
            prototype: Mutex::new(prototypes[0].clone()),
            shards: states,
            cache: Mutex::new(SnapshotCache::new(config.shards)),
            replica: ReplicaHub::new(),
            high_water: AtomicUsize::new(0),
            started: Instant::now(),
        });
        let mut handles = Vec::with_capacity(config.shards);
        for ((shard, (data_rx, recycle_tx)), worker_est) in
            consumers.into_iter().enumerate().zip(prototypes)
        {
            let worker_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("sss-shard-{shard}"))
                .spawn(move || shard_worker(shard, worker_est, data_rx, recycle_tx, worker_shared))
                .expect("spawning a shard worker thread");
            handles.push(handle);
        }
        Ok(Self {
            shared,
            lanes,
            handles,
            cursor: 0,
            scatter: vec![Vec::new(); config.shards],
            pool: PoolStats::default(),
        })
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shared.config.shards
    }

    /// The configured per-shard data-ring depth, in batches.
    pub fn queue_depth(&self) -> usize {
        self.shared.config.queue_depth
    }

    /// The highest number of batches ever enqueued-or-in-flight on any
    /// single shard — never exceeds `queue_depth + 1` (one batch may be
    /// mid-application when the ring refills).
    pub fn queue_high_water(&self) -> usize {
        self.shared.high_water.load(Ordering::Acquire)
    }

    /// Point-in-time occupancy gauge beside the
    /// [`queue_high_water`](Self::queue_high_water) watermark: batches
    /// currently enqueued-or-in-flight on the *most loaded* shard. Zero
    /// after a quiescing [`merged`](Self::merged) call returns.
    pub fn queue_occupancy(&self) -> usize {
        self.shared.queue_occupancy()
    }

    /// Tuples applied to shard sketches so far, summed over all workers.
    ///
    /// Each worker bumps its counter *after* `update_batch`, so this lags
    /// [`push`](Self::push) while batches sit in rings. After a
    /// [`merged`](Self::merged) call returns, the gauge covers every tuple
    /// accepted before it (the snapshot floor quiesces each shard).
    pub fn tuples_ingested(&self) -> u64 {
        self.shared.tuples_ingested()
    }

    /// Tuples applied by one worker (panics if `shard >= shards()`). The
    /// spread across shards shows how well the partition policy balances
    /// the load.
    pub fn shard_tuples_ingested(&self, shard: usize) -> u64 {
        self.shared.shards[shard].ingested.load(Ordering::Acquire)
    }

    /// Merged ingest throughput gauge: tuples applied per second of
    /// monotonic wall-clock time since the pool was constructed
    /// ([`Instant`] captured in `new`, so system clock adjustments never
    /// skew it). Pair with [`queue_high_water`](Self::queue_high_water)
    /// when deciding whether a pipeline needs more shards or a lower
    /// sampling rate.
    pub fn tuples_per_sec(&self) -> f64 {
        self.shared.tuples_per_sec()
    }

    /// Snapshot-cache counters: how many queries were served from cache,
    /// by partial delta rebuild, or by full re-merge.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache_stats()
    }

    /// Batch-buffer pool counters — the zero-allocations-per-batch
    /// evidence (see [`PoolStats`]).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool
    }

    /// A cloneable handle answering queries concurrently with ingest —
    /// valid (for cache-served queries) even after the runtime itself is
    /// gone.
    pub fn query_handle(&self) -> QueryHandle<E> {
        QueryHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Take a cleared batch buffer: spare stack, then the recycle ring,
    /// then (warm-up only) a fresh allocation.
    fn take_buf(&mut self, shard: usize, hint: usize) -> Vec<u64> {
        let lane = &mut self.lanes[shard];
        if let Some(buf) = lane.spare.pop().or_else(|| lane.recycle.try_pop()) {
            self.pool.reuses += 1;
            buf
        } else {
            self.pool.allocations += 1;
            Vec::with_capacity(hint)
        }
    }

    /// Record a successful enqueue on `shard` in the occupancy gauges.
    fn note_enqueued(&self, shard: usize) {
        let state = &self.shared.shards[shard];
        let accepted = state.accepted.fetch_add(1, Ordering::AcqRel) + 1;
        let occupancy = accepted.saturating_sub(state.applied.load(Ordering::Acquire)) as usize;
        self.shared
            .high_water
            .fetch_max(occupancy, Ordering::AcqRel);
    }

    /// Scatter `keys` into the per-shard hash buffers (which must be, and
    /// are left, managed by the push paths).
    fn scatter_keys(&mut self, keys: &[u64]) {
        let shards = self.shared.config.shards as u64;
        for &k in keys {
            self.scatter[(splitmix64(k) % shards) as usize].push(k);
        }
    }

    /// Blocking enqueue of a finished batch buffer on `shard`.
    fn send_blocking(&mut self, shard: usize, batch: Vec<u64>) -> Result<()> {
        match self.lanes[shard].data.push(batch) {
            Ok(()) => {
                self.note_enqueued(shard);
                Ok(())
            }
            Err(_) => Err(StreamError::ShardDisconnected { shard }),
        }
    }

    /// Non-blocking enqueue: on a full ring the tuples go to `overflow`
    /// and the buffer returns to the pool. Returns tuples accepted.
    fn send_nonblocking(
        &mut self,
        shard: usize,
        batch: Vec<u64>,
        overflow: &mut Vec<u64>,
    ) -> Result<u64> {
        let len = batch.len() as u64;
        match self.lanes[shard].data.try_push(batch) {
            Ok(()) => {
                self.note_enqueued(shard);
                Ok(len)
            }
            Err(PushError::Full(mut batch)) => {
                overflow.extend_from_slice(&batch);
                batch.clear();
                self.lanes[shard].spare.push(batch);
                Ok(0)
            }
            Err(PushError::Closed(_)) => Err(StreamError::ShardDisconnected { shard }),
        }
    }

    /// Borrow a cleared batch buffer from the pool — the **loan half** of
    /// the zero-copy ingest pair ([`push_loaned`](Self::push_loaned) is
    /// the other half).
    ///
    /// The buffer is drawn from the recycle ring of the shard the next
    /// `push_loaned` will target (falling back to a fresh allocation only
    /// during warm-up — [`pool_stats`](Self::pool_stats) accounts for
    /// both), so a caller that *fills* the loan in place — say, a network
    /// server decoding a wire frame's keys straight into it — extends the
    /// zero-allocations-per-batch invariant across the socket boundary:
    /// socket bytes → loaned buffer → data ring → worker → recycle ring,
    /// with no copy and no allocation in steady state.
    ///
    /// A loaned buffer must go back via `push_loaned` (possibly empty);
    /// dropping it instead is safe but shrinks the pool by one buffer.
    pub fn loan_batch_buf(&mut self, hint: usize) -> Vec<u64> {
        let shard = self.cursor;
        self.take_buf(shard, hint)
    }

    /// Enqueue a buffer obtained from
    /// [`loan_batch_buf`](Self::loan_batch_buf), **blocking** while the
    /// target ring is full.
    ///
    /// Under [`Partition::RoundRobin`] the buffer itself is shipped to
    /// the worker — the keys are never copied after the caller wrote
    /// them. Under [`Partition::Hash`] the keys are scattered into the
    /// per-shard buffers (one copy, same as [`push`](Self::push)) and the
    /// loan returns to the pool. An empty loan just returns to the pool.
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread has died.
    pub fn push_loaned(&mut self, mut batch: Vec<u64>) -> Result<()> {
        if batch.is_empty() {
            self.lanes[self.cursor].spare.push(batch);
            return Ok(());
        }
        match self.shared.config.partition {
            Partition::RoundRobin => {
                let shard = self.cursor;
                self.cursor = (self.cursor + 1) % self.shards();
                self.send_blocking(shard, batch)
            }
            Partition::Hash => {
                self.scatter_keys(&batch);
                let hint = batch.len();
                for shard in 0..self.shards() {
                    if self.scatter[shard].is_empty() {
                        continue;
                    }
                    let scattered = std::mem::take(&mut self.scatter[shard]);
                    self.send_blocking(shard, scattered)?;
                    self.scatter[shard] = self.take_buf(shard, hint);
                }
                batch.clear();
                self.lanes[self.cursor].spare.push(batch);
                Ok(())
            }
        }
    }

    /// Feed one batch, **blocking** while any target shard's ring is
    /// full. Backpressure propagates to the caller; nothing is dropped.
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread has died.
    pub fn push(&mut self, keys: &[u64]) -> Result<()> {
        if keys.is_empty() {
            return Ok(());
        }
        match self.shared.config.partition {
            Partition::RoundRobin => {
                let shard = self.cursor;
                self.cursor = (self.cursor + 1) % self.shards();
                let mut batch = self.take_buf(shard, keys.len());
                batch.extend_from_slice(keys);
                self.send_blocking(shard, batch)
            }
            Partition::Hash => {
                self.scatter_keys(keys);
                for shard in 0..self.shards() {
                    if self.scatter[shard].is_empty() {
                        continue;
                    }
                    // Ship the filled scatter buffer itself (one copy
                    // total) and put a pooled buffer in its place.
                    let batch = std::mem::take(&mut self.scatter[shard]);
                    self.send_blocking(shard, batch)?;
                    self.scatter[shard] = self.take_buf(shard, keys.len());
                }
                Ok(())
            }
        }
    }

    /// Feed one batch **without blocking**: tuples whose shard ring is
    /// full are appended to `overflow` instead of enqueued, and the number
    /// of tuples actually accepted is returned. The caller decides what to
    /// do with the overflow — the engine routes it through the epoch
    /// shedder so the combined estimate stays unbiased. (Snapshot traffic
    /// rides a separate control queue and can never land here — see the
    /// module docs.)
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread has died.
    pub fn try_push(&mut self, keys: &[u64], overflow: &mut Vec<u64>) -> Result<u64> {
        if keys.is_empty() {
            return Ok(0);
        }
        match self.shared.config.partition {
            Partition::RoundRobin => {
                let shard = self.cursor;
                self.cursor = (self.cursor + 1) % self.shards();
                let mut batch = self.take_buf(shard, keys.len());
                batch.extend_from_slice(keys);
                self.send_nonblocking(shard, batch, overflow)
            }
            Partition::Hash => {
                self.scatter_keys(keys);
                let mut accepted = 0u64;
                for shard in 0..self.shards() {
                    if self.scatter[shard].is_empty() {
                        continue;
                    }
                    let batch = std::mem::take(&mut self.scatter[shard]);
                    accepted += self.send_nonblocking(shard, batch, overflow)?;
                    self.scatter[shard] = self.take_buf(shard, keys.len());
                }
                Ok(accepted)
            }
        }
    }

    /// Merge the shard estimators as of *now*: every batch accepted by
    /// [`push`](Self::push)/[`try_push`](Self::try_push) before this call
    /// is reflected, because each snapshot request carries the shard's
    /// accepted-batch floor.
    ///
    /// The runtime keeps running; this is the at-all-times query, served
    /// through the incremental snapshot cache (shards untouched since the
    /// previous query cost nothing — [`cache_stats`](Self::cache_stats)).
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread has died.
    pub fn merged(&self) -> Result<E> {
        self.shared.merged()
    }

    /// The same at-all-times query *without* the snapshot cache: every
    /// shard is cloned and merged, exactly like the pre-cache full
    /// barrier. Kept as the benchmark baseline
    /// (`queries_under_ingest` in `BENCH_sharded_runtime.json`) and as a
    /// correctness cross-check against [`merged`](Self::merged).
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread has died.
    pub fn merged_uncached(&self) -> Result<E> {
        self.shared.merged_uncached()
    }

    /// Shut the pool down and merge the final shard estimators. Cheaper
    /// than [`merged`](Self::merged) (no clones — workers hand back their
    /// sketches) and the natural end-of-stream call.
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread panicked.
    pub fn into_merged(mut self) -> Result<E> {
        // Dropping the lanes closes the data rings — the shutdown signal…
        self.lanes.clear();
        // …after which each worker drains its ring and returns its shard.
        let handles = std::mem::take(&mut self.handles);
        let mut merged = self.shared.lock_prototype().clone();
        for (shard, handle) in handles.into_iter().enumerate() {
            let shard_est = handle
                .join()
                .map_err(|_| StreamError::ShardDisconnected { shard })?;
            merged.merge_from(&shard_est)?;
        }
        Ok(merged)
    }
}

impl<E: Summary + JoinQuery> ShardedRuntime<E> {
    /// Typed at-all-times self-join query: merge the shards as of now and
    /// return the merged estimator's [`Estimate`]. The error bar is
    /// computed on the *combined* sketch — by linearity the merge is
    /// bit-identical to sequential sketching, so the merged lanes carry
    /// exactly the sketch noise of the answer (per-shard error bars would
    /// measure the noise of partial streams instead).
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread has died.
    pub fn self_join_estimate(&self) -> Result<Estimate> {
        Ok(self.merged()?.self_join_estimate())
    }

    /// Typed at-all-times size-of-join query against another runtime over
    /// the same schema, with the error bar computed on the two combined
    /// sketches (see [`ShardedRuntime::self_join_estimate`]).
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread has died, or
    /// an estimator error (schema mismatch between the runtimes).
    pub fn size_of_join_estimate(&self, other: &ShardedRuntime<E>) -> Result<Estimate> {
        self.merged()?
            .size_of_join_estimate(&other.merged()?)
            .map_err(StreamError::Estimator)
    }
}

impl<E: Summary> Drop for ShardedRuntime<E> {
    fn drop(&mut self) {
        // Hang up, then wait: workers drain their rings and exit.
        self.lanes.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<E: Summary> std::fmt::Debug for ShardedRuntime<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("config", &self.shared.config)
            .field("tuples_ingested", &self.tuples_ingested())
            .field("queue_high_water", &self.queue_high_water())
            .field("pool", &self.pool)
            .finish()
    }
}

/// A cloneable read-side handle on a [`ShardedRuntime`]: answers
/// at-all-times queries through the same incremental snapshot cache,
/// concurrently with the owner's ingest (queries from multiple handles
/// serialize on the cache, each paying only its own dirty delta).
///
/// A handle outlives the runtime: after
/// [`into_merged`](ShardedRuntime::into_merged) (or drop) it still serves
/// queries whose cached snapshot is current, and reports
/// [`StreamError::ShardDisconnected`] when a fresh shard clone would be
/// needed.
pub struct QueryHandle<E: Summary> {
    shared: Arc<RuntimeShared<E>>,
}

impl<E: Summary> QueryHandle<E> {
    /// The at-all-times query — see [`ShardedRuntime::merged`].
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a fresh shard snapshot is
    /// needed and that worker is gone.
    pub fn merged(&self) -> Result<E> {
        self.shared.merged()
    }

    /// Snapshot-cache counters — see [`ShardedRuntime::cache_stats`].
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache_stats()
    }

    /// Tuples applied so far — see [`ShardedRuntime::tuples_ingested`].
    pub fn tuples_ingested(&self) -> u64 {
        self.shared.tuples_ingested()
    }

    /// Throughput gauge — see [`ShardedRuntime::tuples_per_sec`].
    pub fn tuples_per_sec(&self) -> f64 {
        self.shared.tuples_per_sec()
    }

    /// Point-in-time occupancy — see
    /// [`ShardedRuntime::queue_occupancy`].
    pub fn queue_occupancy(&self) -> usize {
        self.shared.queue_occupancy()
    }

    /// High-water occupancy mark — see
    /// [`ShardedRuntime::queue_high_water`]. Useful after
    /// [`into_merged`](ShardedRuntime::into_merged), which consumes the
    /// runtime but leaves the shared gauges readable through the handle.
    pub fn queue_high_water(&self) -> usize {
        self.shared.high_water.load(Ordering::Acquire)
    }
}

impl<E: Summary + JoinQuery> QueryHandle<E> {
    /// Typed self-join query — see
    /// [`ShardedRuntime::self_join_estimate`].
    ///
    /// # Errors
    ///
    /// As for [`QueryHandle::merged`].
    pub fn self_join_estimate(&self) -> Result<Estimate> {
        Ok(self.merged()?.self_join_estimate())
    }
}

impl<E: Summary> Clone for QueryHandle<E> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<E: Summary> std::fmt::Debug for QueryHandle<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("tuples_ingested", &self.tuples_ingested())
            .field("cache", &self.cache_stats())
            .finish()
    }
}

impl<E: Summary + SlimQuery> ShardedRuntime<E> {
    /// Open a slim read replica on this runtime — the two-stage read
    /// path. See [`ReadReplica`].
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if the initial projection needs
    /// a shard whose worker died; estimator errors from slim encoding.
    pub fn read_replica(&self, max_pending: u64) -> Result<ReadReplica<E>> {
        ReadReplica::open(Arc::clone(&self.shared), max_pending)
    }
}

impl<E: Summary + SlimQuery> QueryHandle<E> {
    /// Open a slim read replica — see [`ShardedRuntime::read_replica`].
    /// Every clone of the handle can open its own replica; they all share
    /// the runtime's single frame hub, so N readers trigger at most one
    /// fat projection per version.
    ///
    /// # Errors
    ///
    /// As for [`ShardedRuntime::read_replica`].
    pub fn read_replica(&self, max_pending: u64) -> Result<ReadReplica<E>> {
        ReadReplica::open(Arc::clone(&self.shared), max_pending)
    }
}

/// A slim read replica on a [`ShardedRuntime`] — stage two of the
/// two-stage read path.
///
/// Instead of cloning and merging the fat shard estimators on every
/// query (the [`merged`](ShardedRuntime::merged) path), a replica keeps a
/// decoded [`SlimQuery::Slim`] projection and refreshes it from the
/// runtime's shared frame hub only when the accepted-batch counter has
/// advanced past `max_pending`. N replicas across N query threads share
/// one hub: per version, exactly one of them (single-flight) pays the
/// fat merge + slim projection + encode, and everyone else pays a
/// pointer bump plus a slim decode of the shared byte buffer.
///
/// `*_estimate()` answers carry the slim projection's sketch variance
/// **plus** a staleness term
/// ([`sss_sampling::staleness_variance_plugin`]) grown from the tuples
/// accepted since the frame was projected, so a replica lagging behind
/// ingest reports honestly wider error bars rather than a silently stale
/// point value.
pub struct ReadReplica<E: Summary + SlimQuery> {
    shared: Arc<RuntimeShared<E>>,
    /// Accepted-batch staleness tolerated before a refresh is forced.
    max_pending: u64,
    /// Accepted-batch floor of the adopted frame.
    version: u64,
    /// Tuples applied when the adopted frame was projected.
    applied: u64,
    slim: E::Slim,
}

impl<E: Summary + SlimQuery> ReadReplica<E> {
    fn open(shared: Arc<RuntimeShared<E>>, max_pending: u64) -> Result<Self> {
        let floor = shared.accepted_total().saturating_sub(max_pending);
        let frame = shared.ensure_replica(floor)?;
        let slim = E::Slim::decode(&frame.bytes).map_err(StreamError::Estimator)?;
        Ok(Self {
            shared,
            max_pending,
            version: frame.version,
            applied: frame.applied,
            slim,
        })
    }

    /// Bring the local slim state within `max_pending` accepted batches
    /// of the ingest frontier. Returns `true` if a newer frame was
    /// adopted. At most one caller per version pays the fat projection;
    /// the rest decode its published bytes.
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a refresh needs a shard
    /// whose worker died; estimator errors from slim encode/decode.
    pub fn refresh(&mut self) -> Result<bool> {
        let target = self.shared.accepted_total();
        if target.saturating_sub(self.version) <= self.max_pending {
            return Ok(false);
        }
        let frame = self
            .shared
            .ensure_replica(target.saturating_sub(self.max_pending))?;
        if frame.version <= self.version {
            return Ok(false);
        }
        self.slim = E::Slim::decode(&frame.bytes).map_err(StreamError::Estimator)?;
        self.version = frame.version;
        self.applied = frame.applied;
        Ok(true)
    }

    /// The current slim projection (as of the last [`refresh`]).
    ///
    /// [`refresh`]: ReadReplica::refresh
    pub fn slim(&self) -> &E::Slim {
        &self.slim
    }

    /// Accepted-batch floor of the adopted frame.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Accepted batches past this replica's frame right now.
    pub fn pending(&self) -> u64 {
        self.shared.accepted_total().saturating_sub(self.version)
    }
}

impl<E> ReadReplica<E>
where
    E: Summary + SlimQuery,
    E::Slim: JoinQuery,
{
    /// Staleness-aware self-join query from the slim replica: refresh if
    /// past `max_pending`, answer from local slim state, and widen the
    /// error bar by the staleness plug-in for the tuples that arrived
    /// since the frame was projected. When the replica is fresh the value
    /// is bit-identical to
    /// [`ShardedRuntime::self_join_estimate`] on the same state.
    ///
    /// # Errors
    ///
    /// As for [`refresh`](ReadReplica::refresh).
    pub fn self_join_estimate(&mut self) -> Result<Estimate> {
        self.refresh()?;
        let est = self.slim.self_join_estimate();
        let pending = self.shared.tuples_ingested().saturating_sub(self.applied);
        let extra = staleness_variance_plugin(est.value, self.applied, pending);
        Ok(est.plus_variance(extra))
    }
}

impl<E> ReadReplica<E>
where
    E: Summary + SlimQuery,
    E::Slim: sss_core::DistinctQuery,
{
    /// Distinct-count query from the slim replica: refresh if past
    /// `max_pending`, then answer from local slim state. The estimate
    /// carries the slim projection's own variance; unlike
    /// [`self_join_estimate`](ReadReplica::self_join_estimate) no
    /// staleness term is added (there is no F₀ drift bound analogous to
    /// the F2 one), so treat the bar as "as of the adopted frame".
    ///
    /// # Errors
    ///
    /// As for [`refresh`](ReadReplica::refresh).
    pub fn distinct_estimate(&mut self) -> Result<Estimate> {
        self.refresh()?;
        Ok(sss_core::DistinctQuery::distinct_estimate(&self.slim))
    }
}

impl<E> ReadReplica<E>
where
    E: Summary + SlimQuery,
    E::Slim: sss_core::QuantileQuery,
{
    /// Quantile query from the slim replica (refreshes first).
    ///
    /// # Errors
    ///
    /// As for [`refresh`](ReadReplica::refresh), or an estimator error
    /// for `q ∉ [0, 1]` / an empty summary.
    pub fn quantile(&mut self, q: f64) -> Result<f64> {
        self.refresh()?;
        sss_core::QuantileQuery::quantile(&self.slim, q).map_err(StreamError::Estimator)
    }

    /// Quantile query with the KLL rank-error envelope (refreshes
    /// first) — `(lo, hi)` bracket the true `q`-quantile with the
    /// sketch's deterministic rank guarantee.
    ///
    /// # Errors
    ///
    /// As for [`quantile`](ReadReplica::quantile).
    pub fn quantile_bounds(&mut self, q: f64) -> Result<(f64, f64)> {
        self.refresh()?;
        sss_core::QuantileQuery::quantile_bounds(&self.slim, q).map_err(StreamError::Estimator)
    }
}

impl<E> ReadReplica<E>
where
    E: Summary + SlimQuery,
    E::Slim: sss_core::TopKQuery,
{
    /// Top-k query from the slim replica (refreshes first): the `k`
    /// heaviest tracked keys, each with its typed frequency estimate.
    ///
    /// # Errors
    ///
    /// As for [`refresh`](ReadReplica::refresh).
    pub fn top_k(&mut self, k: usize) -> Result<Vec<(u64, Estimate)>> {
        self.refresh()?;
        Ok(sss_core::TopKQuery::top_k(&self.slim, k)
            .into_iter()
            .map(|(key, _)| {
                (
                    key,
                    sss_core::TopKQuery::frequency_estimate(&self.slim, key),
                )
            })
            .collect())
    }
}

impl<E: Summary + SlimQuery> std::fmt::Debug for ReadReplica<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadReplica")
            .field("version", &self.version)
            .field("applied", &self.applied)
            .field("max_pending", &self.max_pending)
            .field("pending", &self.pending())
            .finish()
    }
}

/// The shard worker loop: apply batches from the data ring (recycling
/// their buffers), answer control-queue snapshot requests once the
/// requested floor is reached, and return the final estimator when the
/// producer hangs up.
fn shard_worker<E: Summary>(
    shard: usize,
    mut est: E,
    mut data: ring::Consumer<Vec<u64>>,
    mut recycle: ring::Producer<Vec<u64>>,
    shared: Arc<RuntimeShared<E>>,
) -> E {
    /// Clears the shard's `live` flag on every exit path, panics
    /// included, so queriers never wait on a ghost.
    struct LiveGuard<'a>(&'a AtomicBool);
    impl Drop for LiveGuard<'_> {
        fn drop(&mut self) {
            self.0.store(false, Ordering::SeqCst);
        }
    }

    /// Answer every pending request whose floor is reached. Requests are
    /// served in arrival order but never block one another: a request
    /// with a lower floor is not stuck behind an unsatisfiable one.
    fn serve<E: Summary>(pending: &mut Vec<SnapshotReq<E>>, applied: u64, est: &E) {
        let mut i = 0;
        while i < pending.len() {
            if pending[i].min <= applied {
                let req = pending.swap_remove(i);
                // A dropped receiver just means the querier gave up.
                let _ = req.reply.send((applied, est.clone()));
            } else {
                i += 1;
            }
        }
    }

    let state = &shared.shards[shard];
    let _live = LiveGuard(&state.live);
    let parker = data.parker();
    let mut pending: Vec<SnapshotReq<E>> = Vec::new();
    let mut applied = 0u64;
    let mut backoff = Backoff::new();

    // Apply everything already queued as ONE batched update: `first` grows
    // by the contents of every ring buffer waiting behind it, then a single
    // `update_batch` spans the coalesced run. Update order is exactly ring
    // order, so summary state is bit-identical to batch-at-a-time applies;
    // what changes is kernel amortization (the sketch row kernels and the
    // skip-sampler scan cost per *call*, and a backlogged worker would
    // otherwise pay that per 512-tuple producer batch). Snapshot floors are
    // unaffected: the local `applied` advances past a floor in one jump
    // after the update lands, and a floor is a minimum, never an
    // exact-prefix request. Coalescing is bounded by the ring capacity, so
    // requests arriving mid-drain wait at most one queue depth of work.
    // The atomic gauge counter is bumped per *pop* (not per apply): the
    // producer refills slots the drain frees, and counting claimed buffers
    // as still-queued would let `accepted − applied` read up to twice the
    // ring depth, breaking the documented `≤ depth + 1` high-water bound.
    let mut apply_run = |est: &mut E,
                         mut first: Vec<u64>,
                         applied: &mut u64,
                         data: &mut ring::Consumer<Vec<u64>>| {
        let mut batches = 1u64;
        state.applied.store(*applied + batches, Ordering::Release);
        while let Some(mut next) = data.try_pop() {
            first.append(&mut next);
            batches += 1;
            state.applied.store(*applied + batches, Ordering::Release);
            // A full recycle ring (only possible if the producer stopped
            // taking buffers back) just drops the buffer.
            let _ = recycle.try_push(next);
        }
        est.update_batch(&first);
        *applied += batches;
        state
            .ingested
            .fetch_add(first.len() as u64, Ordering::AcqRel);
        state.applied.store(*applied, Ordering::Release);
        first.clear();
        let _ = recycle.try_push(first);
    };

    loop {
        while let Some(req) = state.ctrl.try_recv() {
            pending.push(req);
        }
        serve(&mut pending, applied, &est);
        match data.try_pop() {
            Some(buf) => {
                apply_run(&mut est, buf, &mut applied, &mut data);
                backoff.reset();
            }
            None if data.is_closed() => {
                // The producer hung up: drain what it pushed before
                // closing, then answer any last requests (every floor is
                // reachable now — nothing more can be accepted).
                while let Some(buf) = data.try_pop() {
                    apply_run(&mut est, buf, &mut applied, &mut data);
                }
                while let Some(req) = state.ctrl.try_recv() {
                    pending.push(req);
                }
                serve(&mut pending, applied, &est);
                return est;
            }
            None => {
                backoff.snooze(&parker, || {
                    state.ctrl.is_ready() || !data.is_empty() || data.is_closed()
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_core::sketch::{JoinSchema, JoinSketch};

    fn stream() -> Vec<u64> {
        (0..50_000u64).map(|i| (i * 2654435761) % 4000).collect()
    }

    fn sequential(schema: &JoinSchema, keys: &[u64]) -> JoinSketch {
        let mut sk = schema.sketch();
        sk.update_batch(keys);
        sk
    }

    #[test]
    fn merged_is_bit_identical_for_both_partitions() {
        let mut rng = StdRng::seed_from_u64(1);
        let schema = JoinSchema::fagms(2, 512, &mut rng);
        let s = stream();
        let seq = sequential(&schema, &s);
        for partition in [Partition::RoundRobin, Partition::Hash] {
            for shards in [1usize, 2, 4, 7] {
                let config = RuntimeConfig {
                    shards,
                    queue_depth: 8,
                    partition,
                };
                let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
                for chunk in s.chunks(997) {
                    rt.push(chunk).unwrap();
                }
                let merged = rt.into_merged().unwrap();
                assert_eq!(
                    merged.raw_self_join().to_bits(),
                    seq.raw_self_join().to_bits(),
                    "partition {partition:?}, shards {shards}"
                );
            }
        }
    }

    #[test]
    fn live_snapshot_reflects_everything_pushed_so_far() {
        let mut rng = StdRng::seed_from_u64(2);
        let schema = JoinSchema::agms(64, &mut rng);
        let s = stream();
        let config = RuntimeConfig {
            shards: 3,
            queue_depth: 4,
            partition: Partition::Hash,
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let half = s.len() / 2;
        for chunk in s[..half].chunks(512) {
            rt.push(chunk).unwrap();
        }
        let mid = rt.merged().unwrap();
        assert_eq!(
            mid.raw_self_join().to_bits(),
            sequential(&schema, &s[..half]).raw_self_join().to_bits(),
            "mid-stream snapshot"
        );
        // The runtime keeps absorbing tuples after the query.
        for chunk in s[half..].chunks(512) {
            rt.push(chunk).unwrap();
        }
        let end = rt.into_merged().unwrap();
        assert_eq!(
            end.raw_self_join().to_bits(),
            sequential(&schema, &s).raw_self_join().to_bits(),
            "end-of-stream merge"
        );
    }

    #[test]
    fn try_push_hands_back_overflow_and_bounds_the_queue() {
        let mut rng = StdRng::seed_from_u64(3);
        let schema = JoinSchema::fagms(1, 256, &mut rng);
        let config = RuntimeConfig {
            shards: 1,
            queue_depth: 1,
            partition: Partition::RoundRobin,
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let batch: Vec<u64> = (0..100u64).collect();
        let mut overflow = Vec::new();
        let mut accepted = 0u64;
        // Hammer a depth-1 ring with more batches than one worker can
        // drain between our sends: some must overflow.
        for _ in 0..20_000 {
            accepted += rt.try_push(&batch, &mut overflow).unwrap();
        }
        assert!(rt.queue_high_water() <= rt.queue_depth() + 1);
        assert_eq!(
            accepted + overflow.len() as u64,
            20_000 * batch.len() as u64,
            "every tuple is either accepted or handed back"
        );
        // The merged sketch summarizes exactly the accepted tuples: the
        // accepted multiset is `accepted/100` whole copies of the batch.
        let merged = rt.into_merged().unwrap();
        let copies = accepted / batch.len() as u64;
        let mut expect = schema.sketch();
        for _ in 0..copies {
            expect.update_batch(&batch);
        }
        assert_eq!(
            merged.raw_self_join().to_bits(),
            expect.raw_self_join().to_bits()
        );
    }

    #[test]
    fn blocking_push_never_drops_under_a_tiny_queue() {
        let mut rng = StdRng::seed_from_u64(4);
        let schema = JoinSchema::fagms(1, 256, &mut rng);
        let config = RuntimeConfig {
            shards: 2,
            queue_depth: 1,
            partition: Partition::Hash,
        };
        let s = stream();
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        for chunk in s.chunks(4096) {
            rt.push(chunk).unwrap();
        }
        assert!(rt.queue_high_water() <= 2);
        let merged = rt.into_merged().unwrap();
        assert_eq!(
            merged.raw_self_join().to_bits(),
            sequential(&schema, &s).raw_self_join().to_bits()
        );
    }

    #[test]
    fn empty_batches_and_degenerate_configs() {
        let mut rng = StdRng::seed_from_u64(5);
        let schema = JoinSchema::agms(4, &mut rng);
        assert!(matches!(
            ShardedRuntime::new(
                RuntimeConfig {
                    shards: 0,
                    ..Default::default()
                },
                &schema.sketch()
            ),
            Err(StreamError::InvalidConfig {
                parameter: "shards",
                ..
            })
        ));
        assert!(matches!(
            ShardedRuntime::new(
                RuntimeConfig {
                    queue_depth: 0,
                    ..Default::default()
                },
                &schema.sketch()
            ),
            Err(StreamError::InvalidConfig {
                parameter: "queue_depth",
                ..
            })
        ));
        let mut rt = ShardedRuntime::new(RuntimeConfig::default(), &schema.sketch()).unwrap();
        rt.push(&[]).unwrap();
        let mut overflow = Vec::new();
        assert_eq!(rt.try_push(&[], &mut overflow).unwrap(), 0);
        assert!(overflow.is_empty());
        assert_eq!(rt.into_merged().unwrap().raw_self_join(), 0.0);
    }

    /// The typed runtime queries answer on the combined sketch: values
    /// bit-identical to the sequential sketch's estimates, lanes intact.
    #[test]
    fn typed_estimates_answer_on_the_combined_sketch() {
        let mut rng = StdRng::seed_from_u64(7);
        let schema = JoinSchema::agms(32, &mut rng);
        let s = stream();
        let seq = sequential(&schema, &s);
        let config = RuntimeConfig {
            shards: 4,
            ..Default::default()
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let mut rt2 = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        for chunk in s.chunks(1234) {
            rt.push(chunk).unwrap();
            rt2.push(chunk).unwrap();
        }
        let est = rt.self_join_estimate().unwrap();
        let seq_est = seq.raw_self_join_estimate();
        assert_eq!(est.value.to_bits(), seq_est.value.to_bits());
        assert_eq!(
            est.basics, seq_est.basics,
            "merged lanes = sequential lanes"
        );
        assert!(est.variance.is_finite() && est.variance > 0.0);
        // Identical streams: the join estimate equals each self-join.
        let join = rt.size_of_join_estimate(&rt2).unwrap();
        assert_eq!(join.value.to_bits(), est.value.to_bits());
        assert!(join.chebyshev(0.9).unwrap().contains(join.value));
    }

    /// After a quiescing `merged()` call the ingest gauges are exact: the
    /// per-worker counters sum to every tuple pushed, the throughput
    /// gauge is positive, and the point-in-time occupancy is back to 0.
    #[test]
    fn ingest_counters_are_exact_after_quiesce() {
        let mut rng = StdRng::seed_from_u64(8);
        let schema = JoinSchema::fagms(1, 256, &mut rng);
        let s = stream();
        for partition in [Partition::RoundRobin, Partition::Hash] {
            let config = RuntimeConfig {
                shards: 3,
                queue_depth: 8,
                partition,
            };
            let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
            assert_eq!(rt.tuples_ingested(), 0);
            assert_eq!(rt.queue_occupancy(), 0);
            for chunk in s.chunks(777) {
                rt.push(chunk).unwrap();
            }
            // merged() waits for each shard to reach its accepted-batch
            // floor, so by the time it returns each worker has applied
            // (and counted) everything pushed before the call.
            let _ = rt.merged().unwrap();
            assert_eq!(rt.tuples_ingested(), s.len() as u64, "{partition:?}");
            let per_shard: u64 = (0..rt.shards()).map(|i| rt.shard_tuples_ingested(i)).sum();
            assert_eq!(per_shard, s.len() as u64, "{partition:?}");
            assert!(rt.tuples_per_sec() > 0.0, "{partition:?}");
            assert_eq!(rt.queue_occupancy(), 0, "{partition:?}: quiesced");
        }
    }

    /// The runtime works for any `JoinQuery`, not just `JoinSketch` —
    /// here a concrete typed F-AGMS sketch.
    #[test]
    fn generic_over_any_estimator() {
        let mut rng = StdRng::seed_from_u64(6);
        let schema: sss_sketch::FagmsSchema = sss_sketch::FagmsSchema::new(2, 128, &mut rng);
        let config = RuntimeConfig {
            shards: 3,
            ..Default::default()
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let s = stream();
        for chunk in s.chunks(1000) {
            rt.push(chunk).unwrap();
        }
        let merged = rt.into_merged().unwrap();
        let mut seq = schema.sketch();
        sss_sketch::Sketch::update_batch(&mut seq, &s);
        assert_eq!(merged.self_join().to_bits(), seq.self_join().to_bits());
    }

    /// Per-shard prototypes: a `Sampled` front end must NOT share its
    /// skip RNG across shards (correlated inclusions would bias the
    /// cross-shard estimator), so each shard gets a reseeded clone and
    /// the merged correction still lands on the truth.
    #[test]
    fn per_shard_prototypes_decorrelate_sampling() {
        use sss_core::Sampled;
        let mut rng = StdRng::seed_from_u64(21);
        let schema = JoinSchema::fagms(1, 4096, &mut rng);
        let proto = Sampled::new(schema.sketch(), 0.1, &mut rng).unwrap();
        let shards = 4usize;
        let prototypes: Vec<_> = (0..shards)
            .map(|_| {
                let mut p = proto.clone();
                p.reseed(&mut rng).unwrap();
                p
            })
            .collect();
        let config = RuntimeConfig {
            shards,
            ..Default::default()
        };
        let mut rt = ShardedRuntime::new_per_shard(config, prototypes).unwrap();
        // 2000 keys × 100: F₂ = 2000 · 100² = 2·10⁷.
        let s: Vec<u64> = (0..200_000u64).map(|i| i % 2000).collect();
        for chunk in s.chunks(512) {
            rt.push(chunk).unwrap();
        }
        let merged = rt.into_merged().unwrap();
        assert!(merged.kept() < 30_000, "only ~10% sketched");
        let est = merged.self_join();
        assert!((est - 2e7).abs() / 2e7 < 0.15, "est = {est}");
        // A prototype-count mismatch is a typed config error.
        let config = RuntimeConfig {
            shards: 2,
            ..Default::default()
        };
        assert!(matches!(
            ShardedRuntime::new_per_shard(config, vec![proto.clone()]),
            Err(StreamError::InvalidConfig {
                parameter: "prototypes",
                ..
            })
        ));
    }

    /// An estimator that sleeps per batch and opts out of retraction:
    /// deterministically saturates tiny rings, and exercises the snapshot
    /// cache's full-rebuild fallback inside the real runtime.
    #[derive(Clone)]
    struct SlowSketch {
        inner: JoinSketch,
        delay: Duration,
    }

    impl Summary for SlowSketch {
        fn update(&mut self, key: u64, count: i64) {
            self.inner.update(key, count);
        }
        fn update_batch(&mut self, keys: &[u64]) {
            std::thread::sleep(self.delay);
            self.inner.update_batch(keys);
        }
        fn merge_from(&mut self, other: &Self) -> sss_core::Result<()> {
            self.inner.merge_from(&other.inner)
        }
    }

    impl JoinQuery for SlowSketch {
        fn self_join(&self) -> f64 {
            self.inner.raw_self_join()
        }
        fn size_of_join(&self, other: &Self) -> sss_core::Result<f64> {
            self.inner.raw_size_of_join(&other.inner)
        }
    }

    /// Regression for the old transport's dead `Full(Cmd::Snapshot)` arm:
    /// snapshots ride a control queue that shares nothing with the data
    /// ring, so a query succeeds — exactly and promptly — while the data
    /// ring is full and `try_push` is shedding overflow.
    #[test]
    fn snapshots_never_ride_the_data_queue() {
        let mut rng = StdRng::seed_from_u64(9);
        let schema = JoinSchema::fagms(1, 64, &mut rng);
        let proto = SlowSketch {
            inner: schema.sketch(),
            delay: Duration::from_millis(2),
        };
        let config = RuntimeConfig {
            shards: 1,
            queue_depth: 1,
            partition: Partition::RoundRobin,
        };
        let mut rt = ShardedRuntime::new(config, &proto).unwrap();
        let batch: Vec<u64> = (0..64u64).collect();
        let mut overflow = Vec::new();
        let mut accepted = 0u64;
        // The worker sleeps 2 ms per batch: hammering it back-to-back
        // must fill the depth-1 ring and overflow.
        for _ in 0..40 {
            accepted += rt.try_push(&batch, &mut overflow).unwrap();
        }
        assert!(!overflow.is_empty(), "the data ring did saturate");
        // A query through the full data ring: answered (not shed, not
        // stuck behind the overflow leg), covering exactly the accepted
        // tuples.
        let merged = rt.merged().unwrap();
        let copies = accepted / batch.len() as u64;
        let mut expect = schema.sketch();
        for _ in 0..copies {
            expect.update_batch(&batch);
        }
        assert_eq!(
            merged.self_join().to_bits(),
            expect.raw_self_join().to_bits()
        );
        // SlowSketch opts out of retraction, so the cache fell back to
        // full rebuilds — still exact, never cached-stale.
        assert_eq!(rt.cache_stats().full_rebuilds, 1);
        assert_eq!(rt.queue_occupancy(), 0, "query quiesced the shard");
    }

    /// merged() with zero batches pushed is the empty (prototype) sketch,
    /// and asking again is a pure cache hit.
    #[test]
    fn merged_with_zero_batches_is_the_empty_sketch() {
        let mut rng = StdRng::seed_from_u64(10);
        let schema = JoinSchema::fagms(2, 128, &mut rng);
        let rt = ShardedRuntime::new(
            RuntimeConfig {
                shards: 4,
                ..Default::default()
            },
            &schema.sketch(),
        )
        .unwrap();
        let empty = rt.merged().unwrap();
        assert_eq!(
            empty.raw_self_join().to_bits(),
            schema.sketch().raw_self_join().to_bits()
        );
        let again = rt.merged().unwrap();
        assert_eq!(
            again.raw_self_join().to_bits(),
            empty.raw_self_join().to_bits()
        );
        let stats = rt.cache_stats();
        assert_eq!(stats.full_rebuilds, 1, "first query built the cache");
        assert_eq!(stats.hits, 1, "second query was served from it");
        assert_eq!(stats.shards_refreshed, 0, "no shard was ever cloned");
    }

    /// Repeated queries with no intervening ingest are cache hits,
    /// bit-identical to the first answer; new ingest dirties only the
    /// shards it touched.
    #[test]
    fn repeated_queries_hit_the_cache_bit_identically() {
        let mut rng = StdRng::seed_from_u64(11);
        let schema = JoinSchema::fagms(1, 256, &mut rng);
        let s = stream();
        let config = RuntimeConfig {
            shards: 4,
            queue_depth: 8,
            partition: Partition::RoundRobin,
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let half = s.len() / 2;
        for chunk in s[..half].chunks(512) {
            rt.push(chunk).unwrap();
        }
        let first = rt.merged().unwrap();
        for _ in 0..10 {
            let again = rt.merged().unwrap();
            assert_eq!(
                again.raw_self_join().to_bits(),
                first.raw_self_join().to_bits()
            );
        }
        let stats = rt.cache_stats();
        assert_eq!(stats.hits, 10, "all repeats served from cache");
        // The cache-bypassing full barrier agrees with the cached answer.
        let barrier = rt.merged_uncached().unwrap();
        assert_eq!(
            barrier.raw_self_join().to_bits(),
            first.raw_self_join().to_bits()
        );
        // One more round-robin batch dirties exactly one shard; the
        // delta rebuild still matches the sequential sketch bit for bit.
        rt.push(&s[half..half + 512]).unwrap();
        let after = rt.merged().unwrap();
        assert_eq!(
            after.raw_self_join().to_bits(),
            sequential(&schema, &s[..half + 512])
                .raw_self_join()
                .to_bits()
        );
        let stats = rt.cache_stats();
        assert_eq!(stats.partial_rebuilds, 1);
        assert_eq!(
            stats.shards_refreshed,
            config.shards as u64 + 1,
            "first query cloned every shard, the delta cloned one"
        );
    }

    /// A sibling QueryHandle works during ingest, and after
    /// `into_merged()` consumed the runtime it still serves cache-clean
    /// queries (bit-identical to the final merge) while honestly failing
    /// queries that would need a dead worker.
    #[test]
    fn query_handle_outlives_into_merged() {
        let mut rng = StdRng::seed_from_u64(12);
        let schema = JoinSchema::fagms(1, 256, &mut rng);
        let s = stream();
        let config = RuntimeConfig {
            shards: 3,
            queue_depth: 8,
            partition: Partition::Hash,
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let handle = rt.query_handle();
        let sibling = handle.clone();
        for chunk in s.chunks(1024) {
            rt.push(chunk).unwrap();
        }
        // Live query through the handle, concurrent with the runtime.
        let mid = handle.merged().unwrap();
        assert_eq!(
            mid.raw_self_join().to_bits(),
            sequential(&schema, &s).raw_self_join().to_bits()
        );
        assert_eq!(handle.tuples_ingested(), s.len() as u64);
        // No ingest since the last query: the final merge and a
        // post-shutdown handle query agree with it bit for bit.
        let fin = rt.into_merged().unwrap();
        assert_eq!(fin.raw_self_join().to_bits(), mid.raw_self_join().to_bits());
        let after = sibling.merged().unwrap();
        assert_eq!(
            after.raw_self_join().to_bits(),
            fin.raw_self_join().to_bits()
        );
        assert!(sibling.cache_stats().hits >= 1);

        // A handle whose cache is stale at shutdown reports the dead
        // shard instead of answering from thin air.
        let mut rt2 = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let stale = rt2.query_handle();
        rt2.push(&s[..4096]).unwrap();
        let _ = rt2.into_merged().unwrap();
        assert!(matches!(
            stale.merged(),
            Err(StreamError::ShardDisconnected { .. })
        ));
    }

    /// The runtime hosts heavy-hitter summaries too (any
    /// [`Summary`], not only join estimators): with candidate
    /// capacity ≥ distinct keys the sharded merge is bit-identical to the
    /// sequential summary — same top-k keys, same raw estimates.
    #[test]
    fn hosts_heavy_hitter_summaries() {
        use sss_sketch::{CountSketchTopK, FagmsSchema, HeavyHitters};
        let mut rng = StdRng::seed_from_u64(22);
        let schema: FagmsSchema = FagmsSchema::new(3, 256, &mut rng);
        let proto = CountSketchTopK::new(&schema, 64).unwrap();
        let s: Vec<u64> = (0..40_000u64).map(|i| (i * 2654435761) % 60).collect();
        let config = RuntimeConfig {
            shards: 4,
            queue_depth: 8,
            partition: Partition::Hash,
        };
        let mut rt = ShardedRuntime::new(config, &proto).unwrap();
        for chunk in s.chunks(997) {
            rt.push(chunk).unwrap();
        }
        // A live snapshot merge and the shutdown merge both match the
        // sequential summary exactly.
        let mid = rt.merged().unwrap();
        let merged = rt.into_merged().unwrap();
        let mut seq = CountSketchTopK::new(&schema, 64).unwrap();
        seq.offer_batch(&s);
        assert_eq!(mid.raw_top_k(10), seq.raw_top_k(10));
        assert_eq!(merged.raw_top_k(10), seq.raw_top_k(10));
    }

    /// A worker that panics mid-batch: the shard dies, and every
    /// subsequent query reports [`StreamError::ShardDisconnected`] as a
    /// typed error — never a panic, never a hang.
    #[test]
    fn dead_worker_yields_typed_errors_not_panics() {
        #[derive(Clone)]
        struct BombSketch(JoinSketch);
        impl Summary for BombSketch {
            fn update(&mut self, key: u64, count: i64) {
                assert_ne!(key, u64::MAX, "injected worker panic");
                self.0.update(key, count);
            }
            fn update_batch(&mut self, keys: &[u64]) {
                for &k in keys {
                    self.update(k, 1);
                }
            }
            fn merge_from(&mut self, other: &Self) -> sss_core::Result<()> {
                self.0.merge_from(&other.0)
            }
        }
        let mut rng = StdRng::seed_from_u64(23);
        let schema = JoinSchema::fagms(1, 64, &mut rng);
        let config = RuntimeConfig {
            shards: 1,
            queue_depth: 4,
            partition: Partition::RoundRobin,
        };
        let mut rt = ShardedRuntime::new(config, &BombSketch(schema.sketch())).unwrap();
        rt.push(&[1, 2, 3]).unwrap();
        rt.push(&[u64::MAX]).unwrap();
        assert!(matches!(
            rt.merged(),
            Err(StreamError::ShardDisconnected { shard: 0 })
        ));
        // The failure is sticky but stays typed on every later query.
        assert!(matches!(
            rt.merged(),
            Err(StreamError::ShardDisconnected { shard: 0 })
        ));
        assert!(matches!(
            rt.into_merged(),
            Err(StreamError::ShardDisconnected { shard: 0 })
        ));
    }

    /// A panic on the *querier* thread — estimator `Clone` runs user code
    /// inside the snapshot-cache critical section — used to poison the
    /// cache and prototype mutexes, turning every later query into a
    /// `PoisonError` panic. Regression: the query path recovers (poison
    /// swallowed, cache reset, answer rebuilt from the live shards).
    #[test]
    fn poisoned_query_path_recovers_after_querier_panic() {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        struct PanickyClone {
            inner: JoinSketch,
            bomb: Arc<AtomicBool>,
        }
        impl Clone for PanickyClone {
            fn clone(&self) -> Self {
                assert!(!self.bomb.load(Ordering::SeqCst), "injected clone panic");
                Self {
                    inner: self.inner.clone(),
                    bomb: Arc::clone(&self.bomb),
                }
            }
        }
        impl Summary for PanickyClone {
            fn update(&mut self, key: u64, count: i64) {
                self.inner.update(key, count);
            }
            fn update_batch(&mut self, keys: &[u64]) {
                self.inner.update_batch(keys);
            }
            fn merge_from(&mut self, other: &Self) -> sss_core::Result<()> {
                self.inner.merge_from(&other.inner)
            }
        }

        let mut rng = StdRng::seed_from_u64(24);
        let schema = JoinSchema::fagms(1, 128, &mut rng);
        let bomb = Arc::new(AtomicBool::new(false));
        let proto = PanickyClone {
            inner: schema.sketch(),
            bomb: Arc::clone(&bomb),
        };
        let config = RuntimeConfig {
            shards: 2,
            queue_depth: 4,
            partition: Partition::RoundRobin,
        };
        let mut rt = ShardedRuntime::new(config, &proto).unwrap();
        let keys: Vec<u64> = (0..4096u64).map(|i| i % 97).collect();
        for chunk in keys.chunks(512) {
            rt.push(chunk).unwrap();
        }
        // Populate the cache so the armed query needs no fresh worker
        // clones — the panic must land on the querier, not a worker.
        let first = rt.merged().unwrap();
        bomb.store(true, Ordering::SeqCst);
        assert!(
            catch_unwind(AssertUnwindSafe(|| rt.merged())).is_err(),
            "the armed query panics on the querier thread"
        );
        bomb.store(false, Ordering::SeqCst);
        // Recovery: no poison panic, and the rebuilt answer matches the
        // pre-panic snapshot bit for bit (no ingest in between).
        let after = rt.merged().unwrap();
        assert_eq!(
            after.inner.raw_self_join().to_bits(),
            first.inner.raw_self_join().to_bits()
        );
        // The read-only stats path survives too.
        let _ = rt.cache_stats();
        let fin = rt.into_merged().unwrap();
        assert_eq!(
            fin.inner.raw_self_join().to_bits(),
            first.inner.raw_self_join().to_bits()
        );
    }

    /// The zero-allocations-per-batch claim, in accounting form: over a
    /// long steady-state run the pool allocates at most its warm-up
    /// complement (bounded by ring capacities, independent of batch
    /// count) and every other batch reuses a recycled buffer.
    #[test]
    fn steady_state_ingest_reuses_pooled_buffers() {
        let mut rng = StdRng::seed_from_u64(13);
        let schema = JoinSchema::fagms(1, 128, &mut rng);
        for partition in [Partition::RoundRobin, Partition::Hash] {
            let config = RuntimeConfig {
                shards: 2,
                queue_depth: 4,
                partition,
            };
            let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
            let batch: Vec<u64> = (0..256u64).collect();
            let pushes = 2_000u64;
            for _ in 0..pushes {
                rt.push(&batch).unwrap();
            }
            let stats = rt.pool_stats();
            // Warm-up bound: every buffer that can be in flight at once —
            // ring slots + one in the worker + one per scatter/compose
            // slot — and not a buffer more, no matter how many batches ran.
            let cap = (config.shards * (config.queue_depth + 3)) as u64;
            assert!(
                stats.allocations <= cap,
                "{partition:?}: {} allocations exceed warm-up bound {cap}",
                stats.allocations
            );
            assert!(
                stats.reuses >= pushes - cap,
                "{partition:?}: steady state must reuse (reuses = {}, pushes = {pushes})",
                stats.reuses
            );
            // And the accounting didn't cost correctness.
            let merged = rt.into_merged().unwrap();
            let mut expect = schema.sketch();
            for _ in 0..pushes {
                expect.update_batch(&batch);
            }
            assert_eq!(
                merged.raw_self_join().to_bits(),
                expect.raw_self_join().to_bits(),
                "{partition:?}"
            );
        }
    }
    #[test]
    fn read_replica_matches_merged_when_fresh() {
        let mut rng = StdRng::seed_from_u64(11);
        let schema = JoinSchema::fagms(5, 512, &mut rng);
        let s = stream();
        let config = RuntimeConfig {
            shards: 3,
            queue_depth: 8,
            partition: Partition::Hash,
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        for chunk in s.chunks(997) {
            rt.push(chunk).unwrap();
        }
        let fat = rt.self_join_estimate().unwrap();
        // max_pending = 0: the replica refuses any staleness, so its
        // first answer reflects every accepted batch and the staleness
        // plug-in term is zero — the value AND variance are bit-identical
        // to the fat query on the same state.
        let mut replica = rt.read_replica(0).unwrap();
        let slim_est = replica.self_join_estimate().unwrap();
        assert_eq!(slim_est.value.to_bits(), fat.value.to_bits());
        assert_eq!(slim_est.variance.to_bits(), fat.variance.to_bits());
        assert_eq!(replica.pending(), 0);
    }

    #[test]
    fn read_replica_refreshes_only_past_max_pending() {
        let mut rng = StdRng::seed_from_u64(12);
        let schema = JoinSchema::fagms(3, 256, &mut rng);
        let s = stream();
        let config = RuntimeConfig {
            shards: 2,
            queue_depth: 8,
            partition: Partition::RoundRobin,
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        rt.push(&s[..1024]).unwrap();
        let mut replica = rt.read_replica(1_000_000).unwrap();
        let v0 = replica.version();
        // More ingest, but far below the staleness budget: no refresh.
        rt.push(&s[1024..2048]).unwrap();
        assert!(!replica.refresh().unwrap(), "within budget: no refresh");
        assert_eq!(replica.version(), v0);
        // A tight replica on the same runtime must refresh and see it.
        let mut tight = rt.read_replica(0).unwrap();
        assert!(tight.version() > v0);
        // The wide replica's answer is still served, with the staleness
        // term widening the error bar instead of a silent stale value.
        let est = replica.self_join_estimate().unwrap();
        assert!(est.variance.is_finite());
        let fresh = tight.self_join_estimate().unwrap();
        assert!(est.variance >= fresh.variance);
    }

    #[test]
    fn read_replicas_share_one_projection_per_version() {
        let mut rng = StdRng::seed_from_u64(13);
        let schema = JoinSchema::fagms(3, 256, &mut rng);
        let s = stream();
        let config = RuntimeConfig {
            shards: 2,
            queue_depth: 8,
            partition: Partition::Hash,
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        rt.push(&s[..4096]).unwrap();
        let handle = rt.query_handle();
        // Open N replicas through cloned handles on N threads; every
        // answer must be the current self-join value (no torn frames).
        let expect = rt.self_join_estimate().unwrap().value;
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    let mut r = h.read_replica(0).unwrap();
                    r.self_join_estimate().unwrap().value
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap().to_bits(), expect.to_bits());
        }
    }
}
