//! The persistent sharded streaming runtime.
//!
//! The paper's §VI-C observes that by sketch linearity "on the modern
//! multi-core processors, sketching can be done essentially for free":
//! partition the stream any way at all, sketch each partition on its own
//! core, and the merged sketch is *bit-identical* to sequential sketching.
//! [`parallel_sketch`](crate::parallel_sketch) exploits this for a
//! pre-materialized slice; this module is the long-lived version — a DSMS
//! needs a runtime that absorbs batches continuously and answers
//! at-all-times queries, not a one-shot scatter/gather.
//!
//! ```text
//!              ┌─ bounded queue ─▶ worker 0 ─ owns shard sketch E₀
//! push_batch ──┼─ bounded queue ─▶ worker 1 ─ owns shard sketch E₁
//!  (partition) └─ bounded queue ─▶ worker 2 ─ owns shard sketch E₂
//!                                    …
//!  merged() ── snapshot barrier ──▶ E₀ ⊕ E₁ ⊕ E₂ (= sequential sketch)
//! ```
//!
//! * Workers are plain [`std::thread`]s fed through
//!   [`std::sync::mpsc::sync_channel`] — **bounded** queues, so memory is
//!   `O(shards · queue_depth · batch)` no matter how fast the producer is.
//! * [`push`](ShardedRuntime::push) blocks when a queue is full
//!   (backpressure propagates to the source);
//!   [`try_push`](ShardedRuntime::try_push) never blocks and instead hands
//!   overflowed tuples back to the caller: the engine routes overload
//!   into the [`EpochShedder`](sss_core::EpochShedder) path and keeps the
//!   estimate unbiased under sustained overload.
//! * [`merged`](ShardedRuntime::merged) enqueues a snapshot command behind
//!   every batch already accepted, so the merged estimator reflects exactly
//!   the tuples pushed before the call — the at-all-times query.
//!
//! The runtime is generic over any [`JoinEstimator`], not just the
//! backend-erased `JoinSketch`.

use crate::error::{Result, StreamError};
use sss_core::{Estimate, JoinEstimator};
use std::sync::atomic::{AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// How [`ShardedRuntime::push`] routes tuples to shard workers.
///
/// By linearity every policy merges to the same (bit-identical) sketch;
/// the choice only affects load balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partition {
    /// Each batch goes, whole, to the next shard in rotation. Cheapest
    /// (no per-key work) and balanced when batches are similar in size.
    #[default]
    RoundRobin,
    /// Each key is routed by a hash of its value, so a given key always
    /// lands on the same shard. Balanced even when batch sizes vary
    /// wildly, at the cost of a per-key hash and scatter.
    Hash,
}

/// Configuration for a [`ShardedRuntime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of shard workers (threads) to spawn.
    pub shards: usize,
    /// Bounded depth of each shard's command queue, in batches.
    pub queue_depth: usize,
    /// Tuple-routing policy.
    pub partition: Partition,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            queue_depth: 64,
            partition: Partition::default(),
        }
    }
}

impl RuntimeConfig {
    /// Reject configurations the runtime cannot honour.
    fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(StreamError::InvalidConfig {
                parameter: "shards",
                value: 0,
                reason: "must be at least 1",
            });
        }
        if self.queue_depth == 0 {
            return Err(StreamError::InvalidConfig {
                parameter: "queue_depth",
                value: 0,
                reason: "must be at least 1 (0 would rendezvous every batch)",
            });
        }
        Ok(())
    }
}

/// One message on a shard's queue.
enum Cmd<E> {
    /// Sketch this batch of keys.
    Batch(Vec<u64>),
    /// Reply with a clone of the shard estimator as of this point in the
    /// queue (all batches enqueued earlier are already applied).
    Snapshot(Sender<E>),
}

/// SplitMix64: a full-avalanche mix so adversarially clustered keys still
/// spread across shards (the sketch hash families are independent of it).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A long-lived pool of shard workers, each owning one estimator.
///
/// Created from a *prototype* estimator (a fresh, empty sketch carrying
/// the schema seeds); every shard clones it, so all shards share the same
/// hash functions and their sketches merge exactly.
///
/// ```
/// use rand::SeedableRng;
/// use sss_core::sketch::JoinSchema;
/// use sss_stream::{RuntimeConfig, ShardedRuntime};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let schema = JoinSchema::fagms(1, 512, &mut rng);
/// let config = RuntimeConfig { shards: 4, ..Default::default() };
/// let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
/// for chunk in (0..10_000u64).collect::<Vec<_>>().chunks(256) {
///     rt.push(chunk).unwrap();
/// }
/// let merged = rt.into_merged().unwrap();
/// // Bit-identical to the sequential sketch of the same stream.
/// let mut seq = schema.sketch();
/// for k in 0..10_000u64 { seq.update(k, 1); }
/// assert_eq!(merged.raw_self_join(), seq.raw_self_join());
/// ```
#[derive(Debug)]
pub struct ShardedRuntime<E: JoinEstimator> {
    config: RuntimeConfig,
    prototype: E,
    txs: Vec<SyncSender<Cmd<E>>>,
    handles: Vec<JoinHandle<E>>,
    /// Commands currently enqueued-or-in-flight per shard. The producer
    /// increments after a successful send and the worker decrements after
    /// applying a batch, so the counter can dip negative transiently
    /// (worker beat the producer's increment) and can read
    /// `queue_depth + 1` momentarily (one batch mid-application while the
    /// queue refills) — the latter is the true memory bound.
    queued: Vec<Arc<AtomicIsize>>,
    high_water: Arc<AtomicUsize>,
    /// Tuples each worker has *applied* to its shard sketch (incremented
    /// by the worker after `update_batch`, not at enqueue time, so the
    /// gauge counts work done rather than work promised).
    ingested: Vec<Arc<AtomicU64>>,
    /// When the pool was spawned — the denominator of
    /// [`ShardedRuntime::tuples_per_sec`].
    started: Instant,
    /// Next shard for [`Partition::RoundRobin`].
    cursor: usize,
    /// Per-shard scatter buffers for [`Partition::Hash`].
    scatter: Vec<Vec<u64>>,
}

impl<E: JoinEstimator> ShardedRuntime<E> {
    /// Spawn the worker pool. `prototype` must be a fresh estimator; each
    /// shard starts from a clone of it.
    pub fn new(config: RuntimeConfig, prototype: &E) -> Result<Self> {
        config.validate()?;
        let high_water = Arc::new(AtomicUsize::new(0));
        let mut txs = Vec::with_capacity(config.shards);
        let mut handles = Vec::with_capacity(config.shards);
        let mut queued = Vec::with_capacity(config.shards);
        let mut ingested = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = std::sync::mpsc::sync_channel(config.queue_depth);
            let in_flight = Arc::new(AtomicIsize::new(0));
            let tuples = Arc::new(AtomicU64::new(0));
            let worker_est = prototype.clone();
            let worker_in_flight = Arc::clone(&in_flight);
            let worker_tuples = Arc::clone(&tuples);
            let handle = std::thread::Builder::new()
                .name(format!("sss-shard-{shard}"))
                .spawn(move || shard_worker(worker_est, rx, worker_in_flight, worker_tuples))
                .expect("spawning a shard worker thread");
            txs.push(tx);
            handles.push(handle);
            queued.push(in_flight);
            ingested.push(tuples);
        }
        Ok(Self {
            config,
            prototype: prototype.clone(),
            txs,
            handles,
            queued,
            high_water,
            ingested,
            started: Instant::now(),
            cursor: 0,
            scatter: vec![Vec::new(); config.shards],
        })
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The configured per-shard queue depth, in batches.
    pub fn queue_depth(&self) -> usize {
        self.config.queue_depth
    }

    /// The highest number of commands ever enqueued-or-in-flight on any
    /// single shard — never exceeds `queue_depth + 1` (one batch may be
    /// mid-application when the queue refills).
    pub fn queue_high_water(&self) -> usize {
        self.high_water.load(Ordering::Acquire)
    }

    /// Tuples applied to shard sketches so far, summed over all workers.
    ///
    /// Each worker bumps its counter *after* `update_batch`, so this lags
    /// [`push`](Self::push) while batches sit in queues. After a
    /// [`merged`](Self::merged) call returns, the gauge covers every tuple
    /// accepted before it (the snapshot quiesces each queue).
    pub fn tuples_ingested(&self) -> u64 {
        self.ingested
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum()
    }

    /// Tuples applied by one worker (panics if `shard >= shards()`). The
    /// spread across shards shows how well the partition policy balances
    /// the load.
    pub fn shard_tuples_ingested(&self, shard: usize) -> u64 {
        self.ingested[shard].load(Ordering::Acquire)
    }

    /// Merged ingest throughput gauge: tuples applied per wall-clock
    /// second since the pool was spawned. Pair with
    /// [`queue_high_water`](Self::queue_high_water) when deciding whether
    /// a pipeline needs more shards or a lower sampling rate.
    pub fn tuples_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.tuples_ingested() as f64 / secs
        } else {
            0.0
        }
    }

    /// Record a successful enqueue on `shard` in the memory accounting.
    fn note_enqueued(&self, shard: usize) {
        let now = self.queued[shard].fetch_add(1, Ordering::AcqRel) + 1;
        if now > 0 {
            self.high_water.fetch_max(now as usize, Ordering::AcqRel);
        }
    }

    /// Split `keys` into per-shard batches according to the partition
    /// policy. Returns `(shard, batch)` pairs; empty batches are skipped.
    fn route(&mut self, keys: &[u64]) -> Vec<(usize, Vec<u64>)> {
        match self.config.partition {
            Partition::RoundRobin => {
                let shard = self.cursor;
                self.cursor = (self.cursor + 1) % self.config.shards;
                vec![(shard, keys.to_vec())]
            }
            Partition::Hash => {
                let shards = self.config.shards as u64;
                for buf in &mut self.scatter {
                    buf.clear();
                }
                for &k in keys {
                    self.scatter[(splitmix64(k) % shards) as usize].push(k);
                }
                self.scatter
                    .iter_mut()
                    .enumerate()
                    .filter(|(_, buf)| !buf.is_empty())
                    .map(|(shard, buf)| (shard, std::mem::take(buf)))
                    .collect()
            }
        }
    }

    /// Feed one batch, **blocking** while any target shard's queue is
    /// full. Backpressure propagates to the caller; nothing is dropped.
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread has died.
    pub fn push(&mut self, keys: &[u64]) -> Result<()> {
        if keys.is_empty() {
            return Ok(());
        }
        for (shard, batch) in self.route(keys) {
            self.txs[shard]
                .send(Cmd::Batch(batch))
                .map_err(|_| StreamError::ShardDisconnected { shard })?;
            self.note_enqueued(shard);
        }
        Ok(())
    }

    /// Feed one batch **without blocking**: tuples whose shard queue is
    /// full are appended to `overflow` instead of enqueued, and the number
    /// of tuples actually accepted is returned. The caller decides what to
    /// do with the overflow — the engine routes it through the epoch
    /// shedder so the combined estimate stays unbiased.
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread has died.
    pub fn try_push(&mut self, keys: &[u64], overflow: &mut Vec<u64>) -> Result<u64> {
        if keys.is_empty() {
            return Ok(0);
        }
        let mut accepted = 0u64;
        for (shard, batch) in self.route(keys) {
            let len = batch.len() as u64;
            match self.txs[shard].try_send(Cmd::Batch(batch)) {
                Ok(()) => {
                    accepted += len;
                    self.note_enqueued(shard);
                }
                Err(TrySendError::Full(Cmd::Batch(batch))) => {
                    overflow.extend_from_slice(&batch);
                }
                Err(TrySendError::Full(Cmd::Snapshot(_))) => {
                    unreachable!("try_push only sends batches")
                }
                Err(TrySendError::Disconnected(_)) => {
                    return Err(StreamError::ShardDisconnected { shard });
                }
            }
        }
        Ok(accepted)
    }

    /// Merge the shard estimators as of *now*: every batch accepted by
    /// [`push`](Self::push)/[`try_push`](Self::try_push) before this call
    /// is reflected, because the snapshot command queues behind them.
    ///
    /// The runtime keeps running; this is the at-all-times query.
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread has died.
    pub fn merged(&self) -> Result<E> {
        // Enqueue every snapshot first so shards quiesce in parallel…
        let mut replies = Vec::with_capacity(self.txs.len());
        for (shard, tx) in self.txs.iter().enumerate() {
            let (reply_tx, reply_rx) = std::sync::mpsc::channel();
            tx.send(Cmd::Snapshot(reply_tx))
                .map_err(|_| StreamError::ShardDisconnected { shard })?;
            replies.push(reply_rx);
        }
        // …then collect and merge in shard order (merge order is
        // irrelevant to the result — integer adds commute — but a fixed
        // order keeps the walk deterministic).
        let mut merged = self.prototype.clone();
        for (shard, reply) in replies.into_iter().enumerate() {
            let snapshot = reply
                .recv()
                .map_err(|_| StreamError::ShardDisconnected { shard })?;
            merged.merge_from(&snapshot)?;
        }
        Ok(merged)
    }

    /// Typed at-all-times self-join query: merge the shards as of now and
    /// return the merged estimator's [`Estimate`]. The error bar is
    /// computed on the *combined* sketch — by linearity the merge is
    /// bit-identical to sequential sketching, so the merged lanes carry
    /// exactly the sketch noise of the answer (per-shard error bars would
    /// measure the noise of partial streams instead).
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread has died.
    pub fn self_join_estimate(&self) -> Result<Estimate> {
        Ok(self.merged()?.self_join_estimate())
    }

    /// Typed at-all-times size-of-join query against another runtime over
    /// the same schema, with the error bar computed on the two combined
    /// sketches (see [`ShardedRuntime::self_join_estimate`]).
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread has died, or
    /// an estimator error (schema mismatch between the runtimes).
    pub fn size_of_join_estimate(&self, other: &ShardedRuntime<E>) -> Result<Estimate> {
        self.merged()?
            .size_of_join_estimate(&other.merged()?)
            .map_err(StreamError::Estimator)
    }

    /// Shut the pool down and merge the final shard estimators. Cheaper
    /// than [`merged`](Self::merged) (no clones — workers hand back their
    /// sketches) and the natural end-of-stream call.
    ///
    /// # Errors
    ///
    /// [`StreamError::ShardDisconnected`] if a worker thread panicked.
    pub fn into_merged(mut self) -> Result<E> {
        // Closing the channels is the shutdown signal…
        self.txs.clear();
        // …after which each worker drains its queue and returns its shard.
        let handles = std::mem::take(&mut self.handles);
        let mut merged = self.prototype.clone();
        for (shard, handle) in handles.into_iter().enumerate() {
            let shard_est = handle
                .join()
                .map_err(|_| StreamError::ShardDisconnected { shard })?;
            merged.merge_from(&shard_est)?;
        }
        Ok(merged)
    }
}

impl<E: JoinEstimator> Drop for ShardedRuntime<E> {
    fn drop(&mut self) {
        // Hang up, then wait: workers drain their queues and exit.
        self.txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The shard worker loop: apply batches, answer snapshots, return the
/// final estimator when the runtime hangs up.
fn shard_worker<E: JoinEstimator>(
    mut est: E,
    rx: Receiver<Cmd<E>>,
    in_flight: Arc<AtomicIsize>,
    ingested: Arc<AtomicU64>,
) -> E {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Batch(keys) => {
                est.update_batch(&keys);
                ingested.fetch_add(keys.len() as u64, Ordering::AcqRel);
                in_flight.fetch_sub(1, Ordering::AcqRel);
            }
            Cmd::Snapshot(reply) => {
                // A dropped receiver just means the querier gave up.
                let _ = reply.send(est.clone());
            }
        }
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_core::sketch::{JoinSchema, JoinSketch};

    fn stream() -> Vec<u64> {
        (0..50_000u64).map(|i| (i * 2654435761) % 4000).collect()
    }

    fn sequential(schema: &JoinSchema, keys: &[u64]) -> JoinSketch {
        let mut sk = schema.sketch();
        sk.update_batch(keys);
        sk
    }

    #[test]
    fn merged_is_bit_identical_for_both_partitions() {
        let mut rng = StdRng::seed_from_u64(1);
        let schema = JoinSchema::fagms(2, 512, &mut rng);
        let s = stream();
        let seq = sequential(&schema, &s);
        for partition in [Partition::RoundRobin, Partition::Hash] {
            for shards in [1usize, 2, 4, 7] {
                let config = RuntimeConfig {
                    shards,
                    queue_depth: 8,
                    partition,
                };
                let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
                for chunk in s.chunks(997) {
                    rt.push(chunk).unwrap();
                }
                let merged = rt.into_merged().unwrap();
                assert_eq!(
                    merged.raw_self_join().to_bits(),
                    seq.raw_self_join().to_bits(),
                    "partition {partition:?}, shards {shards}"
                );
            }
        }
    }

    #[test]
    fn live_snapshot_reflects_everything_pushed_so_far() {
        let mut rng = StdRng::seed_from_u64(2);
        let schema = JoinSchema::agms(64, &mut rng);
        let s = stream();
        let config = RuntimeConfig {
            shards: 3,
            queue_depth: 4,
            partition: Partition::Hash,
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let half = s.len() / 2;
        for chunk in s[..half].chunks(512) {
            rt.push(chunk).unwrap();
        }
        let mid = rt.merged().unwrap();
        assert_eq!(
            mid.raw_self_join().to_bits(),
            sequential(&schema, &s[..half]).raw_self_join().to_bits(),
            "mid-stream snapshot"
        );
        // The runtime keeps absorbing tuples after the query.
        for chunk in s[half..].chunks(512) {
            rt.push(chunk).unwrap();
        }
        let end = rt.into_merged().unwrap();
        assert_eq!(
            end.raw_self_join().to_bits(),
            sequential(&schema, &s).raw_self_join().to_bits(),
            "end-of-stream merge"
        );
    }

    #[test]
    fn try_push_hands_back_overflow_and_bounds_the_queue() {
        let mut rng = StdRng::seed_from_u64(3);
        let schema = JoinSchema::fagms(1, 256, &mut rng);
        let config = RuntimeConfig {
            shards: 1,
            queue_depth: 1,
            partition: Partition::RoundRobin,
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let batch: Vec<u64> = (0..100u64).collect();
        let mut overflow = Vec::new();
        let mut accepted = 0u64;
        // Hammer a depth-1 queue with more batches than one worker can
        // drain between our sends: some must overflow.
        for _ in 0..20_000 {
            accepted += rt.try_push(&batch, &mut overflow).unwrap();
        }
        assert!(rt.queue_high_water() <= rt.queue_depth() + 1);
        assert_eq!(
            accepted + overflow.len() as u64,
            20_000 * batch.len() as u64,
            "every tuple is either accepted or handed back"
        );
        // The merged sketch summarizes exactly the accepted tuples: the
        // accepted multiset is `accepted/100` whole copies of the batch.
        let merged = rt.into_merged().unwrap();
        let copies = accepted / batch.len() as u64;
        let mut expect = schema.sketch();
        for _ in 0..copies {
            expect.update_batch(&batch);
        }
        assert_eq!(
            merged.raw_self_join().to_bits(),
            expect.raw_self_join().to_bits()
        );
    }

    #[test]
    fn blocking_push_never_drops_under_a_tiny_queue() {
        let mut rng = StdRng::seed_from_u64(4);
        let schema = JoinSchema::fagms(1, 256, &mut rng);
        let config = RuntimeConfig {
            shards: 2,
            queue_depth: 1,
            partition: Partition::Hash,
        };
        let s = stream();
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        for chunk in s.chunks(4096) {
            rt.push(chunk).unwrap();
        }
        assert!(rt.queue_high_water() <= 2);
        let merged = rt.into_merged().unwrap();
        assert_eq!(
            merged.raw_self_join().to_bits(),
            sequential(&schema, &s).raw_self_join().to_bits()
        );
    }

    #[test]
    fn empty_batches_and_degenerate_configs() {
        let mut rng = StdRng::seed_from_u64(5);
        let schema = JoinSchema::agms(4, &mut rng);
        assert!(matches!(
            ShardedRuntime::new(
                RuntimeConfig {
                    shards: 0,
                    ..Default::default()
                },
                &schema.sketch()
            ),
            Err(StreamError::InvalidConfig {
                parameter: "shards",
                ..
            })
        ));
        assert!(matches!(
            ShardedRuntime::new(
                RuntimeConfig {
                    queue_depth: 0,
                    ..Default::default()
                },
                &schema.sketch()
            ),
            Err(StreamError::InvalidConfig {
                parameter: "queue_depth",
                ..
            })
        ));
        let mut rt = ShardedRuntime::new(RuntimeConfig::default(), &schema.sketch()).unwrap();
        rt.push(&[]).unwrap();
        let mut overflow = Vec::new();
        assert_eq!(rt.try_push(&[], &mut overflow).unwrap(), 0);
        assert!(overflow.is_empty());
        assert_eq!(rt.into_merged().unwrap().raw_self_join(), 0.0);
    }

    /// The typed runtime queries answer on the combined sketch: values
    /// bit-identical to the sequential sketch's estimates, lanes intact.
    #[test]
    fn typed_estimates_answer_on_the_combined_sketch() {
        let mut rng = StdRng::seed_from_u64(7);
        let schema = JoinSchema::agms(32, &mut rng);
        let s = stream();
        let seq = sequential(&schema, &s);
        let config = RuntimeConfig {
            shards: 4,
            ..Default::default()
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let mut rt2 = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        for chunk in s.chunks(1234) {
            rt.push(chunk).unwrap();
            rt2.push(chunk).unwrap();
        }
        let est = rt.self_join_estimate().unwrap();
        let seq_est = seq.raw_self_join_estimate();
        assert_eq!(est.value.to_bits(), seq_est.value.to_bits());
        assert_eq!(
            est.basics, seq_est.basics,
            "merged lanes = sequential lanes"
        );
        assert!(est.variance.is_finite() && est.variance > 0.0);
        // Identical streams: the join estimate equals each self-join.
        let join = rt.size_of_join_estimate(&rt2).unwrap();
        assert_eq!(join.value.to_bits(), est.value.to_bits());
        assert!(join.chebyshev(0.9).contains(join.value));
    }

    /// After a quiescing `merged()` call the ingest gauges are exact: the
    /// per-worker counters sum to every tuple pushed, and the throughput
    /// gauge is positive.
    #[test]
    fn ingest_counters_are_exact_after_quiesce() {
        let mut rng = StdRng::seed_from_u64(8);
        let schema = JoinSchema::fagms(1, 256, &mut rng);
        let s = stream();
        for partition in [Partition::RoundRobin, Partition::Hash] {
            let config = RuntimeConfig {
                shards: 3,
                queue_depth: 8,
                partition,
            };
            let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
            assert_eq!(rt.tuples_ingested(), 0);
            for chunk in s.chunks(777) {
                rt.push(chunk).unwrap();
            }
            // merged() queues a snapshot behind every accepted batch, so by
            // the time it returns each worker has applied (and counted) all
            // of them.
            let _ = rt.merged().unwrap();
            assert_eq!(rt.tuples_ingested(), s.len() as u64, "{partition:?}");
            let per_shard: u64 = (0..rt.shards()).map(|i| rt.shard_tuples_ingested(i)).sum();
            assert_eq!(per_shard, s.len() as u64, "{partition:?}");
            assert!(rt.tuples_per_sec() > 0.0, "{partition:?}");
        }
    }

    /// The runtime works for any `JoinEstimator`, not just `JoinSketch` —
    /// here a concrete typed F-AGMS sketch.
    #[test]
    fn generic_over_any_estimator() {
        let mut rng = StdRng::seed_from_u64(6);
        let schema: sss_sketch::FagmsSchema = sss_sketch::FagmsSchema::new(2, 128, &mut rng);
        let config = RuntimeConfig {
            shards: 3,
            ..Default::default()
        };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let s = stream();
        for chunk in s.chunks(1000) {
            rt.push(chunk).unwrap();
        }
        let merged = rt.into_merged().unwrap();
        let mut seq = schema.sketch();
        sss_sketch::Sketch::update_batch(&mut seq, &s);
        assert_eq!(merged.self_join().to_bits(), seq.self_join().to_bits());
    }
}
