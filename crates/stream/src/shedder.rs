//! The load-shedding comparison pipeline: full-stream sketching vs
//! sketching a Bernoulli sample.
//!
//! This is the apparatus behind the paper's speed-up claims (§I, §VII-E):
//! run the *same* stream through (a) a sketch that ingests every tuple and
//! (b) a [`LoadSheddingSketcher`] that ingests a p-sample via geometric
//! skips, then compare wall-clock cost and estimate quality.

use crate::throughput::Throughput;
use rand::Rng;
use sss_core::sketch::JoinSchema;
use sss_core::{LoadSheddingSketcher, Result};

/// Results of one comparison run.
#[derive(Debug, Clone)]
pub struct ShedderReport {
    /// Shedding probability used.
    pub p: f64,
    /// Throughput of the full-stream sketch.
    pub full: Throughput,
    /// Throughput of the shedded sketch.
    pub shedded: Throughput,
    /// Tuples the shedded pipeline actually sketched.
    pub kept: u64,
    /// Self-join estimate from the full sketch.
    pub full_estimate: f64,
    /// Self-join estimate from the shedded sketch (bias-corrected).
    pub shedded_estimate: f64,
}

impl ShedderReport {
    /// Wall-clock speed-up of shedding over full sketching.
    pub fn speedup(&self) -> f64 {
        self.shedded.speedup_over(&self.full)
    }

    /// Relative disagreement of the two estimates.
    pub fn estimate_gap(&self) -> f64 {
        if self.full_estimate == 0.0 {
            return f64::INFINITY;
        }
        ((self.shedded_estimate - self.full_estimate) / self.full_estimate).abs()
    }
}

/// Pairs a full sketch and a shedded sketch over one schema.
#[derive(Debug)]
pub struct ShedderComparison {
    schema: JoinSchema,
}

impl ShedderComparison {
    /// Use the given schema for both pipelines.
    pub fn new(schema: JoinSchema) -> Self {
        Self { schema }
    }

    /// Run `stream` through both pipelines and report.
    pub fn run<R: Rng>(&self, stream: &[u64], p: f64, rng: &mut R) -> Result<ShedderReport> {
        let mut full_sketch = self.schema.sketch();
        let full = Throughput::measure(stream.len() as u64, || {
            for &k in stream {
                full_sketch.update(k, 1);
            }
        });
        let mut shed = LoadSheddingSketcher::new(&self.schema, p, rng)?;
        let shedded = Throughput::measure(stream.len() as u64, || {
            for &k in stream {
                shed.observe(k);
            }
        });
        Ok(ShedderReport {
            p,
            full,
            shedded,
            kept: shed.kept(),
            full_estimate: full_sketch.raw_self_join(),
            shedded_estimate: shed.self_join(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream() -> Vec<u64> {
        (0..400_000u64).map(|i| i % 2000).collect()
    }

    #[test]
    fn report_compares_the_same_truth() {
        let mut rng = StdRng::seed_from_u64(21);
        let cmp = ShedderComparison::new(JoinSchema::fagms(1, 5000, &mut rng));
        let report = cmp.run(&stream(), 0.1, &mut rng).unwrap();
        // 2000 keys × 200 copies → F₂ = 8·10⁷.
        let truth = 2000.0 * 200.0 * 200.0;
        assert!((report.full_estimate - truth).abs() / truth < 0.05);
        assert!((report.shedded_estimate - truth).abs() / truth < 0.10);
        assert!(report.estimate_gap() < 0.15);
        // Roughly 10% of the stream was kept.
        let frac = report.kept as f64 / 400_000.0;
        assert!((frac - 0.1).abs() < 0.01, "kept fraction {frac}");
    }

    #[test]
    fn aggressive_shedding_processes_fewer_tuples() {
        let mut rng = StdRng::seed_from_u64(22);
        let cmp = ShedderComparison::new(JoinSchema::fagms(1, 2000, &mut rng));
        let r1 = cmp.run(&stream(), 0.5, &mut rng).unwrap();
        let r001 = cmp.run(&stream(), 0.01, &mut rng).unwrap();
        assert!(r001.kept < r1.kept / 10);
    }

    #[test]
    fn shedding_is_faster_for_expensive_sketches() {
        // AGMS with many counters makes the per-update cost dominant, so
        // the 1/p work reduction must show up as wall-clock speed-up.
        let mut rng = StdRng::seed_from_u64(23);
        let cmp = ShedderComparison::new(JoinSchema::agms(64, &mut rng));
        let small: Vec<u64> = (0..40_000u64).map(|i| i % 500).collect();
        let report = cmp.run(&small, 0.05, &mut rng).unwrap();
        assert!(
            report.speedup() > 3.0,
            "expected a clear speed-up, got {:.2}×",
            report.speedup()
        );
    }

    #[test]
    fn invalid_probability_propagates() {
        let mut rng = StdRng::seed_from_u64(24);
        let cmp = ShedderComparison::new(JoinSchema::agms(4, &mut rng));
        assert!(cmp.run(&[1, 2, 3], 0.0, &mut rng).is_err());
    }
}
