//! Versioned incremental snapshot cache behind
//! [`ShardedRuntime::merged`](crate::ShardedRuntime::merged).
//!
//! The paper's at-all-times query model (and Huang–Tai–Yi's continuous
//! tracking argument, arXiv 1412.1763) means `merged()` runs *while* the
//! stream is still being ingested, often far more frequently than shard
//! state actually changes between queries. The old full snapshot barrier
//! paid O(shards × sketch bytes) per query regardless; this cache makes
//! the cost proportional to what changed:
//!
//! * Every shard worker bumps a **dirty-epoch** counter (its applied
//!   batch count) after each `update_batch`. A shard whose epoch matches
//!   the version stamped on its cached clone has not changed since the
//!   previous query — its bytes need no work at all.
//! * The cache keeps the previous **merged** result too. When the
//!   estimator supports exact retraction
//!   ([`supports_retract`](sss_core::Summary::supports_retract) —
//!   true for every integer-counter sketch in this repo), a dirty shard
//!   is folded in by `retract_from(stale clone)` + `merge_from(fresh
//!   clone)`. Counter arithmetic is exact over `i64`, so
//!   `merged − old + new` is **bit-identical** to re-merging everything
//!   from scratch — the same linearity that makes sharding itself exact
//!   (see `tests/runtime_properties.rs`).
//! * Without retraction support the cache falls back to a full re-merge
//!   in shard order — still correct, just O(shards) again.
//!
//! A query with **zero** dirty shards — the common case for repeated
//! at-all-times polling — costs one clone of the cached merged result:
//! O(sketch bytes), independent of the shard count, ≥10x cheaper than
//! the old barrier at 8 shards (see `BENCH_sharded_runtime.json`,
//! `queries_under_ingest`).
//!
//! The cache never talks to workers itself: the runtime fetches fresh
//! clones for dirty shards (via the control queue) and hands them in via
//! `SnapshotCache::refresh`, so this module is pure bookkeeping and
//! stays trivially safe code.

use sss_core::Summary;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Counters describing how the cache served queries so far — exposed as
/// [`ShardedRuntime::cache_stats`](crate::ShardedRuntime::cache_stats)
/// and recorded by the `queries_under_ingest` bench series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cached merged result alone (zero dirty
    /// shards): one clone, no merge work.
    pub hits: u64,
    /// Queries that re-integrated only the dirty shards via
    /// retract + merge deltas.
    pub partial_rebuilds: u64,
    /// Queries that re-merged every shard (first query, or the estimator
    /// does not support retraction).
    pub full_rebuilds: u64,
    /// The subset of [`full_rebuilds`](Self::full_rebuilds) that were
    /// *fallbacks*: a warm cache had dirty shards to fold in but the
    /// estimator does not support retraction, so the incremental path was
    /// unavailable and the whole merge was redone. A growing
    /// `rebuild_count` under a polling workload means the estimator's
    /// `RetractUnsupported` is costing `O(shards)` per query — logged once
    /// per cache (see the module docs) so it cannot pass silently.
    pub rebuild_count: u64,
    /// Total shard clones folded in across all partial rebuilds — the
    /// work actually paid, to compare against `queries × shards` the old
    /// barrier would have paid.
    pub shards_refreshed: u64,
}

impl CacheStats {
    /// Total queries served through the cache.
    pub fn queries(&self) -> u64 {
        self.hits + self.partial_rebuilds + self.full_rebuilds
    }
}

/// Per-shard cached state: the version (dirty-epoch) at which `clone`
/// was taken.
struct ShardEntry<E> {
    version: u64,
    clone: E,
}

/// The incremental snapshot cache. One per runtime, guarded by the
/// runtime's query mutex (queries may come from several
/// [`QueryHandle`](crate::QueryHandle)s concurrently).
pub(crate) struct SnapshotCache<E> {
    /// Last integrated clone per shard; `None` until first queried.
    shards: Vec<Option<ShardEntry<E>>>,
    /// The merged result as of the versions recorded in `shards`.
    merged: Option<E>,
    stats: CacheStats,
    /// Whether the `RetractUnsupported` fallback has been logged yet —
    /// once per cache, so a polling loop cannot flood stderr.
    logged_fallback: bool,
}

impl<E: Summary> SnapshotCache<E> {
    pub(crate) fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards).map(|_| None).collect(),
            merged: None,
            stats: CacheStats::default(),
            logged_fallback: false,
        }
    }

    /// The stamped version of `shard`'s cached clone, or `None` if the
    /// shard has never been integrated. The runtime compares this with
    /// the worker's live dirty epoch to decide whether the shard needs a
    /// fresh clone.
    pub(crate) fn shard_version(&self, shard: usize) -> Option<u64> {
        self.shards[shard].as_ref().map(|e| e.version)
    }

    /// Serve a query given fresh clones for exactly the dirty shards.
    ///
    /// `fresh` holds `(shard, version, clone)` for every shard whose live
    /// epoch differed from [`shard_version`](Self::shard_version);
    /// `prototype` seeds a full rebuild. Returns a clone of the (now
    /// current) merged estimator.
    pub(crate) fn refresh(
        &mut self,
        prototype: &E,
        fresh: Vec<(usize, u64, E)>,
    ) -> sss_core::Result<E> {
        match (&mut self.merged, fresh.is_empty()) {
            // Nothing dirty and a cached merge exists: pure cache hit.
            (Some(merged), true) => {
                self.stats.hits += 1;
                Ok(merged.clone())
            }
            // Dirty shards and a cached merge: retract stale, merge fresh
            // — exact by integer-counter linearity. Falls back to a full
            // rebuild if the estimator cannot retract.
            (Some(_), false) if prototype.supports_retract() => {
                self.stats.partial_rebuilds += 1;
                self.stats.shards_refreshed += fresh.len() as u64;
                let merged = self.merged.as_mut().expect("checked Some above");
                for (shard, version, clone) in fresh {
                    if let Some(stale) = &self.shards[shard] {
                        merged.retract_from(&stale.clone)?;
                    }
                    merged.merge_from(&clone)?;
                    self.shards[shard] = Some(ShardEntry { version, clone });
                }
                Ok(merged.clone())
            }
            // First query, or no retraction support: integrate the fresh
            // clones into the per-shard cache, then re-merge everything
            // in shard order (deterministic walk; merge order cannot
            // matter — integer adds commute).
            other => {
                // A warm cache with dirty shards and no retraction is the
                // *fallback* case: the incremental path wanted to run and
                // could not. Count it, and say so once — silently paying
                // O(shards) per poll is how perf regressions hide.
                if matches!(other, (Some(_), false)) {
                    self.stats.rebuild_count += 1;
                    if !self.logged_fallback {
                        self.logged_fallback = true;
                        eprintln!(
                            "sss-stream: estimator does not support retraction \
                             (RetractUnsupported); snapshot cache falls back to full \
                             re-merges — every dirty query pays O(shards) \
                             (rebuild_count in cache_stats() tracks this)"
                        );
                    }
                }
                self.stats.full_rebuilds += 1;
                self.stats.shards_refreshed += fresh.len() as u64;
                for (shard, version, clone) in fresh {
                    self.shards[shard] = Some(ShardEntry { version, clone });
                }
                let mut merged = prototype.clone();
                for entry in self.shards.iter().flatten() {
                    merged.merge_from(&entry.clone)?;
                }
                self.merged = Some(merged.clone());
                Ok(merged)
            }
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// One published slim snapshot: the encoded bytes of the merged summary's
/// slim projection, stamped with the accepted-batch total it reflects.
///
/// The bytes are behind an [`Arc`] so N concurrent readers share one
/// buffer — distributing a refresh costs pointer bumps, not copies; each
/// reader then decodes *slim* bytes (tens of lanes) instead of cloning the
/// fat merged state.
#[derive(Clone)]
pub(crate) struct ReplicaFrame {
    /// Sum of every shard's accepted-batch counter when the frame was
    /// projected — the staleness yardstick readers compare against.
    pub(crate) version: u64,
    /// Tuples applied across all shards at projection time — the
    /// denominator of the staleness variance plug-in.
    pub(crate) applied: u64,
    /// The encoded slim projection ([`sss_core::Portable::encode`]).
    pub(crate) bytes: Arc<Vec<u8>>,
}

/// The slim-replica exchange point between the (single) refresher that
/// projects the merged fat state and the N readers serving `*_estimate()`
/// queries — the second stage of the two-stage read path (DESIGN.md §4k).
///
/// Slim states deliberately cannot merge (`(a+b)² ≠ a² + b²`), so deltas
/// are *whole frames*: a refresh merges fat state through the
/// [`SnapshotCache`], projects once, encodes once, and publishes the
/// bytes; every reader whose local version lags decodes the shared buffer.
/// The `refreshing` mutex makes the expensive projection single-flight —
/// concurrent stale readers elect one refresher and the rest pick up the
/// frame it publishes.
pub(crate) struct ReplicaHub {
    frame: Mutex<Option<ReplicaFrame>>,
    /// Held for the duration of a fat merge + projection; see above.
    refreshing: Mutex<()>,
}

impl ReplicaHub {
    pub(crate) fn new() -> Self {
        Self {
            frame: Mutex::new(None),
            refreshing: Mutex::new(()),
        }
    }

    /// The latest published frame, if any. Lock-poisoning on either mutex
    /// is survivable: frames are immutable once published, so a poisoned
    /// guard still reads a consistent frame.
    pub(crate) fn frame(&self) -> Option<ReplicaFrame> {
        self.frame
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Publish a frame, keeping whichever reflects more accepted batches
    /// (two racing refreshers can finish out of order).
    pub(crate) fn publish(&self, frame: ReplicaFrame) {
        let mut slot = self.frame.lock().unwrap_or_else(PoisonError::into_inner);
        if !slot.as_ref().is_some_and(|f| f.version > frame.version) {
            *slot = Some(frame);
        }
    }

    /// Serialize refreshers; the guard's lifetime brackets the fat merge.
    pub(crate) fn begin_refresh(&self) -> MutexGuard<'_, ()> {
        self.refreshing
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_core::sketch::{JoinSchema, JoinSketch};

    fn shard_sketch(schema: &JoinSchema, keys: &[u64]) -> JoinSketch {
        let mut s = schema.sketch();
        s.update_batch(keys);
        s
    }

    /// The cache's three paths (full, partial, hit) all produce results
    /// bit-identical to a from-scratch merge of the same shard states.
    #[test]
    fn all_three_paths_match_a_fresh_merge() {
        let mut rng = StdRng::seed_from_u64(11);
        let schema = JoinSchema::fagms(2, 128, &mut rng);
        let proto = schema.sketch();
        let mut cache = SnapshotCache::new(3);

        let s0 = shard_sketch(&schema, &[1, 2, 3]);
        let s1 = shard_sketch(&schema, &[40, 50]);
        let s2 = shard_sketch(&schema, &[600]);

        // First query: full rebuild.
        let m1 = cache
            .refresh(
                &proto,
                vec![(0, 1, s0.clone()), (1, 1, s1.clone()), (2, 1, s2.clone())],
            )
            .unwrap();
        let mut expect = proto.clone();
        for s in [&s0, &s1, &s2] {
            expect.merge_from(s).unwrap();
        }
        assert_eq!(
            m1.raw_self_join().to_bits(),
            expect.raw_self_join().to_bits()
        );
        assert_eq!(cache.stats().full_rebuilds, 1);

        // No dirt: cache hit, bit-identical to the previous answer.
        let m2 = cache.refresh(&proto, vec![]).unwrap();
        assert_eq!(m2.raw_self_join().to_bits(), m1.raw_self_join().to_bits());
        assert_eq!(cache.stats().hits, 1);

        // Shard 1 advances: partial rebuild touches only that shard.
        let s1b = shard_sketch(&schema, &[40, 50, 60, 70]);
        let m3 = cache.refresh(&proto, vec![(1, 2, s1b.clone())]).unwrap();
        let mut expect3 = proto.clone();
        for s in [&s0, &s1b, &s2] {
            expect3.merge_from(s).unwrap();
        }
        assert_eq!(
            m3.raw_self_join().to_bits(),
            expect3.raw_self_join().to_bits()
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                partial_rebuilds: 1,
                full_rebuilds: 1,
                rebuild_count: 0,
                shards_refreshed: 4,
            }
        );
        assert_eq!(cache.shard_version(0), Some(1));
        assert_eq!(cache.shard_version(1), Some(2));
    }

    /// A warm cache without retraction support: every dirty query is a
    /// counted fallback rebuild (`rebuild_count`), while the first build
    /// and pure hits are not.
    #[test]
    fn fallback_rebuilds_are_counted_separately() {
        #[derive(Clone)]
        struct NoRetract(JoinSketch);
        impl Summary for NoRetract {
            fn update(&mut self, key: u64, count: i64) {
                self.0.update(key, count);
            }
            fn update_batch(&mut self, keys: &[u64]) {
                self.0.update_batch(keys);
            }
            fn merge_from(&mut self, other: &Self) -> sss_core::Result<()> {
                self.0.merge_from(&other.0)
            }
            // supports_retract() stays the default: false.
        }

        let mut rng = StdRng::seed_from_u64(21);
        let schema = JoinSchema::agms(8, &mut rng);
        let proto = NoRetract(schema.sketch());
        let mut cache = SnapshotCache::new(2);
        let shard = |keys: &[u64]| NoRetract(shard_sketch(&schema, keys));

        // Cold first build: a full rebuild, but not a *fallback*.
        cache
            .refresh(&proto, vec![(0, 1, shard(&[1])), (1, 1, shard(&[2]))])
            .unwrap();
        assert_eq!(cache.stats().full_rebuilds, 1);
        assert_eq!(cache.stats().rebuild_count, 0);

        // Pure hit: nothing dirty.
        cache.refresh(&proto, vec![]).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().rebuild_count, 0);

        // Warm cache + dirty shard + no retraction: counted fallback.
        let m = cache.refresh(&proto, vec![(0, 2, shard(&[1, 3]))]).unwrap();
        assert_eq!(cache.stats().full_rebuilds, 2);
        assert_eq!(cache.stats().rebuild_count, 1);
        // Still exact.
        let mut expect = proto.clone();
        expect.merge_from(&shard(&[1, 3])).unwrap();
        expect.merge_from(&shard(&[2])).unwrap();
        assert_eq!(
            m.0.raw_self_join().to_bits(),
            expect.0.raw_self_join().to_bits()
        );
    }

    /// The replica hub: publish is monotone in the version, frames are
    /// shared (not copied), and racing refreshers single-flight through
    /// `begin_refresh`.
    #[test]
    fn replica_hub_publishes_monotonically() {
        let hub = ReplicaHub::new();
        assert!(hub.frame().is_none());
        hub.publish(ReplicaFrame {
            version: 5,
            applied: 100,
            bytes: Arc::new(vec![1, 2, 3]),
        });
        // An older frame from a slow racer does not regress the slot.
        hub.publish(ReplicaFrame {
            version: 3,
            applied: 60,
            bytes: Arc::new(vec![9]),
        });
        let f = hub.frame().unwrap();
        assert_eq!(f.version, 5);
        assert_eq!(f.applied, 100);
        assert_eq!(*f.bytes, vec![1, 2, 3]);
        // Two readers share one buffer.
        let g = hub.frame().unwrap();
        assert!(Arc::ptr_eq(&f.bytes, &g.bytes));
        // The refresh guard is just a mutex — hold and release.
        drop(hub.begin_refresh());
        let _second = hub.begin_refresh();
    }

    /// Many rounds of random dirtying: the incremental path never drifts
    /// from a from-scratch merge, bit for bit.
    #[test]
    fn incremental_never_drifts_from_scratch() {
        let mut rng = StdRng::seed_from_u64(12);
        let schema = JoinSchema::agms(32, &mut rng);
        let proto = schema.sketch();
        const SHARDS: usize = 4;
        let mut cache = SnapshotCache::new(SHARDS);
        let mut live: Vec<Vec<u64>> = vec![Vec::new(); SHARDS];
        let mut versions = [0u64; SHARDS];

        let mut state = 99u64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for round in 0..60 {
            // Dirty a random subset of shards.
            let mut fresh = Vec::new();
            for shard in 0..SHARDS {
                if rand() % 3 == 0 || round == 0 {
                    live[shard].push(rand());
                    versions[shard] += 1;
                    fresh.push((shard, versions[shard], shard_sketch(&schema, &live[shard])));
                }
            }
            let merged = cache.refresh(&proto, fresh).unwrap();
            let mut expect = proto.clone();
            for keys in &live {
                expect.merge_from(&shard_sketch(&schema, keys)).unwrap();
            }
            assert_eq!(
                merged.raw_self_join().to_bits(),
                expect.raw_self_join().to_bits(),
                "round {round}"
            );
        }
        assert!(cache.stats().hits > 0, "some rounds dirtied nothing");
        assert!(cache.stats().partial_rebuilds > 0);
    }
}
