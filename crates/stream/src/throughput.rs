//! Wall-clock throughput instrumentation.

use std::time::{Duration, Instant};

/// A completed measurement: how many tuples were processed in how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Throughput {
    /// Tuples offered to the pipeline.
    pub tuples: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl Throughput {
    /// Measure a closure processing `tuples` tuples.
    pub fn measure<F: FnOnce()>(tuples: u64, f: F) -> Self {
        let start = Instant::now();
        f();
        Self {
            tuples,
            elapsed: start.elapsed(),
        }
    }

    /// Tuples per second (0 when nothing was processed).
    pub fn tuples_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            // Sub-resolution measurement: report via the smallest tick.
            return self.tuples as f64 / 1e-9;
        }
        self.tuples as f64 / secs
    }

    /// Average wall-clock cost per tuple, in nanoseconds (0 when nothing
    /// was processed).
    pub fn per_tuple_ns(&self) -> f64 {
        if self.tuples == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.tuples as f64
    }

    /// How many times faster this run was than `baseline` at processing
    /// the same logical stream (ratio of per-tuple costs).
    pub fn speedup_over(&self, baseline: &Throughput) -> f64 {
        let own = self.elapsed.as_secs_f64() / self.tuples.max(1) as f64;
        let base = baseline.elapsed.as_secs_f64() / baseline.tuples.max(1) as f64;
        if own <= 0.0 {
            f64::INFINITY
        } else {
            base / own
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_and_times() {
        let t = Throughput::measure(1000, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert_eq!(t.tuples, 1000);
        assert!(t.tuples_per_sec() > 0.0);
        assert!(t.per_tuple_ns() > 0.0);
        // Consistency: per-tuple cost and throughput are reciprocal.
        let product = t.per_tuple_ns() * 1e-9 * t.tuples_per_sec();
        assert!((product - 1.0).abs() < 1e-6, "product = {product}");
    }

    #[test]
    fn per_tuple_ns_handles_zero_tuples() {
        let t = Throughput {
            tuples: 0,
            elapsed: Duration::from_millis(5),
        };
        assert_eq!(t.per_tuple_ns(), 0.0);
    }

    #[test]
    fn speedup_is_ratio_of_per_tuple_costs() {
        let slow = Throughput {
            tuples: 100,
            elapsed: Duration::from_millis(100),
        };
        let fast = Throughput {
            tuples: 100,
            elapsed: Duration::from_millis(10),
        };
        assert!((fast.speedup_over(&slow) - 10.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.1).abs() < 1e-9);
        // Different stream sizes are normalized per tuple.
        let half = Throughput {
            tuples: 50,
            elapsed: Duration::from_millis(50),
        };
        assert!((half.speedup_over(&slow) - 1.0).abs() < 1e-9);
    }
}
