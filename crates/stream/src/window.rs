//! Sliding-window sketching via panes.
//!
//! A plain sketch summarizes the stream *since the beginning*; stream
//! monitoring usually wants "the last W tuples". Because sketches are
//! linear, the standard paned-window construction applies directly: split
//! the window into `P` panes, keep one sub-sketch per pane in a ring, and
//! answer queries by merging the live panes. Pane sizes cycle through
//! `⌈W/P⌉` and `⌊W/P⌋` so that any `P` consecutive panes cover *exactly*
//! `W` tuples (no silent window shrinkage when `P ∤ W`), and a full pane
//! is evicted as soon as keeping it would push the covered suffix past
//! `W`. The answer therefore covers the last `W′` tuples with
//! `W − ⌈W/P⌉ < W′ ≤ W` — a granularity (not accuracy) error of at most
//! one pane, traded against `P×` sketch memory.
//!
//! Composes with everything else in the workspace: the panes can sit
//! behind a Bernoulli shedder (scale the final estimate as usual), and the
//! merged window sketch supports joins against any sketch of the same
//! schema — e.g. "join of the last minute of F against the last minute of
//! G".

use sss_core::sketch::{JoinSchema, JoinSketch};
use sss_core::Result;
use std::collections::VecDeque;

/// A count-based sliding-window sketch; see the module docs.
#[derive(Debug, Clone)]
pub struct PanedWindowSketch {
    schema: JoinSchema,
    /// Completed panes with their tuple counts, oldest first; at most
    /// `panes` entries.
    ring: VecDeque<(JoinSketch, u64)>,
    /// Tuples across the completed panes in `ring`.
    full_count: u64,
    current: JoinSketch,
    current_count: u64,
    window: u64,
    panes: usize,
    /// Which pane of the size schedule `current` is filling; pane `i`
    /// (mod `panes`) targets `⌊W/P⌋ + 1` tuples for `i < W mod P`, else
    /// `⌊W/P⌋`, so every `panes` consecutive panes sum to exactly `window`.
    next_pane: usize,
}

impl PanedWindowSketch {
    /// A window of `window` tuples split into `panes` panes.
    ///
    /// # Panics
    ///
    /// Panics unless `panes ≥ 1` and `window ≥ panes` (each pane must hold
    /// at least one tuple).
    pub fn new(schema: &JoinSchema, window: u64, panes: usize) -> Self {
        assert!(panes >= 1, "need at least one pane");
        assert!(
            window >= panes as u64,
            "window must hold at least one tuple per pane"
        );
        Self {
            schema: schema.clone(),
            ring: VecDeque::with_capacity(panes),
            full_count: 0,
            current: schema.sketch(),
            current_count: 0,
            window,
            panes,
            next_pane: 0,
        }
    }

    /// Tuples the pane at schedule position `idx` must hold.
    fn pane_target(&self, idx: usize) -> u64 {
        let base = self.window / self.panes as u64;
        let remainder = self.window % self.panes as u64;
        base + u64::from((idx as u64) < remainder)
    }

    /// Ingest the next stream tuple.
    pub fn update(&mut self, key: u64) {
        // Evict before admitting: completed panes plus the growing current
        // pane never cover more than `window` tuples.
        while self.full_count + self.current_count + 1 > self.window {
            let (_, count) = self
                .ring
                .pop_front()
                .expect("overflow implies a completed pane to evict");
            self.full_count -= count;
        }
        self.current.update(key, 1);
        self.current_count += 1;
        if self.current_count == self.pane_target(self.next_pane) {
            let full = std::mem::replace(&mut self.current, self.schema.sketch());
            self.ring.push_back((full, self.current_count));
            self.full_count += self.current_count;
            self.current_count = 0;
            self.next_pane = (self.next_pane + 1) % self.panes;
        }
    }

    /// Tuples currently covered by the window: always `≤ window`, and
    /// within one pane of it (`> window − ⌈window/panes⌉`) once the stream
    /// has warmed up.
    pub fn covered(&self) -> u64 {
        self.full_count + self.current_count
    }

    /// The merged sketch of the covered suffix.
    pub fn window_sketch(&self) -> Result<JoinSketch> {
        let mut merged = self.current.clone();
        for (pane, _) in &self.ring {
            merged.merge(pane)?;
        }
        Ok(merged)
    }

    /// Self-join size estimate of the covered suffix.
    pub fn self_join(&self) -> Result<f64> {
        Ok(self.window_sketch()?.raw_self_join())
    }

    /// Size-of-join estimate between this window and another (same
    /// schema).
    pub fn size_of_join(&self, other: &PanedWindowSketch) -> Result<f64> {
        let a = self.window_sketch()?;
        let b = other.window_sketch()?;
        a.raw_size_of_join(&b)
    }

    /// The memory footprint in panes (completed panes plus the current
    /// one) — bounded by `panes + 1` regardless of stream length.
    pub fn pane_count(&self) -> usize {
        self.ring.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn exact_f2(keys: &[u64]) -> f64 {
        let mut m: HashMap<u64, u64> = HashMap::new();
        for &k in keys {
            *m.entry(k).or_insert(0) += 1;
        }
        m.values().map(|&c| (c * c) as f64).sum()
    }

    #[test]
    fn window_tracks_the_suffix_not_the_stream() {
        let mut rng = StdRng::seed_from_u64(1);
        let schema = JoinSchema::fagms(1, 4096, &mut rng);
        let mut w = PanedWindowSketch::new(&schema, 10_000, 10);
        // Phase 1: keys 0..100; phase 2 (much longer): keys 1000..1100.
        let mut stream: Vec<u64> = (0..30_000u64).map(|i| i % 100).collect();
        stream.extend((0..30_000u64).map(|i| 1000 + i % 100));
        for &k in &stream {
            w.update(k);
        }
        // The window covers only phase-2 tuples now.
        let covered = w.covered() as usize;
        assert!(covered <= 10_000 && covered > 9_000, "covered = {covered}");
        let truth = exact_f2(&stream[stream.len() - covered..]);
        let est = w.self_join().unwrap();
        assert!(
            (est - truth).abs() / truth < 0.1,
            "est = {est}, truth = {truth}"
        );
        // And it no longer sees phase 1: a full-stream sketch would be ~4×.
        let full_truth = exact_f2(&stream);
        assert!(est < full_truth / 2.0);
    }

    /// The documented coverage bound, exactly: never more than `window`,
    /// and never a full pane behind once warmed up.
    #[test]
    fn memory_is_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let schema = JoinSchema::agms(4, &mut rng);
        let mut w = PanedWindowSketch::new(&schema, 100, 4);
        for k in 0..100_000u64 {
            w.update(k);
            assert!(w.pane_count() <= 5, "pane count exceeded at tuple {k}");
            assert!(
                w.covered() <= 100,
                "covered {} > window at {k}",
                w.covered()
            );
            if k >= 100 {
                assert!(
                    w.covered() > 100 - 25,
                    "covered {} fell a full pane behind at {k}",
                    w.covered()
                );
            }
        }
    }

    /// A window that panes don't divide evenly must still cover the full
    /// `window` tuples, not silently `panes · ⌊window/panes⌋`.
    #[test]
    fn uneven_panes_cover_the_whole_window() {
        let mut rng = StdRng::seed_from_u64(6);
        let schema = JoinSchema::agms(4, &mut rng);
        // 10 / 3 truncates to 3 per pane; the schedule must hand the
        // remainder out so coverage still reaches 10.
        let mut w = PanedWindowSketch::new(&schema, 10, 3);
        for k in 0..10u64 {
            w.update(k);
        }
        assert_eq!(w.covered(), 10, "warm window must cover exactly `window`");
        for k in 10..10_000u64 {
            w.update(k);
            let covered = w.covered();
            assert!(covered <= 10, "covered {covered} > window at {k}");
            // One (largest) pane of slack: 10 − ⌈10/3⌉ = 6.
            assert!(covered > 6, "covered {covered} ≤ bound at {k}");
        }
    }

    #[test]
    fn warmup_covers_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let schema = JoinSchema::fagms(1, 1024, &mut rng);
        let mut w = PanedWindowSketch::new(&schema, 1_000, 10);
        let stream: Vec<u64> = (0..500u64).map(|i| i % 20).collect();
        for &k in &stream {
            w.update(k);
        }
        // Stream shorter than the window: nothing expired.
        assert_eq!(w.covered(), 500);
        let est = w.self_join().unwrap();
        let truth = exact_f2(&stream);
        assert!(
            (est - truth).abs() / truth < 0.15,
            "est = {est}, truth = {truth}"
        );
    }

    #[test]
    fn windowed_join_between_streams() {
        let mut rng = StdRng::seed_from_u64(4);
        let schema = JoinSchema::fagms(1, 4096, &mut rng);
        let mut wf = PanedWindowSketch::new(&schema, 5_000, 5);
        let mut wg = PanedWindowSketch::new(&schema, 5_000, 5);
        // Old epochs disjoint; recent epochs overlap on keys 0..50.
        for i in 0..20_000u64 {
            wf.update(10_000 + i % 50);
            wg.update(20_000 + i % 50);
        }
        for i in 0..5_000u64 {
            wf.update(i % 50);
            wg.update(i % 50);
        }
        // Recent windows: both hold keys 0..50 ×(covered/50).
        let est = wf.size_of_join(&wg).unwrap();
        let cf = wf.covered() as f64 / 50.0;
        let cg = wg.covered() as f64 / 50.0;
        let truth = 50.0 * cf * cg;
        assert!(
            (est - truth).abs() / truth < 0.15,
            "est = {est}, truth = {truth}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one tuple per pane")]
    fn degenerate_window_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let schema = JoinSchema::agms(2, &mut rng);
        let _ = PanedWindowSketch::new(&schema, 3, 10);
    }
}
