//! The BCH5 family: 5-wise independent ±1 variables from dual BCH codes.
//!
//! For a seed `(s₀, s₁, s₂)` the generator is
//!
//! ```text
//! ξ(i) = (−1)^( s₀ ⊕ ⟨s₁, i⟩ ⊕ ⟨s₂, i³⟩ )
//! ```
//!
//! where the cube `i³` is taken in GF(2⁶⁴) and `⟨·,·⟩` is the GF(2) inner
//! product. Rows of the parity-check matrix of a 2-error-correcting BCH code
//! are 5-wise linearly independent, which makes the family 5-wise independent
//! — strictly stronger than the 4-wise requirement of AGMS sketching. The
//! price is the GF(2⁶⁴) cube on every evaluation (two carry-less
//! multiplications in portable code).

use crate::family::{FourWise, SignFamily};
use crate::gf2::gf_cube;
use rand::Rng;

/// 3-wise independent ±1 family from the dual (extended) Hamming code:
/// `ξ(i) = (−1)^(s₀ ⊕ ⟨s₁, i⟩)`.
///
/// The columns `(1, i)` of the generator matrix are 3-wise linearly
/// independent over GF(2) (any two distinct columns differ; any three sum
/// to `(1, i₁⊕i₂⊕i₃) ≠ 0`), giving exact 3-wise independence from just one
/// AND and one popcount — the absolute cost floor of a ±1 generator. Like
/// every 3-wise family it fails 4-wise: any four keys XORing to zero (e.g.
/// {0, 1, 2, 3}) have a deterministic product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Bch3 {
    s0: bool,
    s1: u64,
}

impl Bch3 {
    /// Build from an explicit seed.
    pub fn from_seed(s0: bool, s1: u64) -> Self {
        Self { s0, s1 }
    }
}

impl SignFamily for Bch3 {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        let bit = (self.s0 as u64) ^ ((self.s1 & key).count_ones() as u64 & 1);
        1 - 2 * bit as i64
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            s0: rng.random::<bool>(),
            s1: rng.random::<u64>(),
        }
    }
}

/// 5-wise independent ±1 family; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Bch5 {
    s0: bool,
    s1: u64,
    s2: u64,
}

impl Bch5 {
    /// Build from an explicit seed.
    pub fn from_seed(s0: bool, s1: u64, s2: u64) -> Self {
        Self { s0, s1, s2 }
    }

    /// The parity bit `s₀ ⊕ ⟨s₁, i⟩ ⊕ ⟨s₂, i³⟩` (0 ⇒ +1, 1 ⇒ −1).
    #[inline]
    pub fn bit(&self, key: u64) -> u64 {
        let linear = (self.s1 & key).count_ones() as u64 & 1;
        let cubic = (self.s2 & gf_cube(key)).count_ones() as u64 & 1;
        (self.s0 as u64) ^ linear ^ cubic
    }
}

impl SignFamily for Bch5 {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        1 - 2 * self.bit(key) as i64
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            s0: rng.random::<bool>(),
            s1: rng.random::<u64>(),
            s2: rng.random::<u64>(),
        }
    }
}

impl FourWise for Bch5 {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// BCH3: exact 3-wise independence by seed enumeration (keys confined
    /// to 8 bits ⇒ only the low 8 seed bits and s₀ matter), and the
    /// deterministic 4-wise defect on XOR-zero quadruples.
    #[test]
    fn bch3_exact_three_wise_and_four_wise_defect() {
        let keys = [1u64, 2, 3, 7, 11, 100, 255];
        for (ai, &a) in keys.iter().enumerate() {
            for (bi, &b) in keys.iter().enumerate().skip(ai + 1) {
                for &c in keys.iter().skip(bi + 1) {
                    let mut sum = 0i64;
                    for s in 0u64..256 {
                        for s0 in [false, true] {
                            let f = Bch3::from_seed(s0, s);
                            sum += f.sign(a) * f.sign(b) * f.sign(c);
                        }
                    }
                    assert_eq!(sum, 0, "E[ξ({a})ξ({b})ξ({c})] ≠ 0");
                }
            }
        }
        // {0,1,2,3} XOR to zero: the product is ξ-independent (s₀ appears
        // 4 times, the linear parts cancel) and equals +1 always.
        for s in 0u64..256 {
            for s0 in [false, true] {
                let f = Bch3::from_seed(s0, s);
                let prod: i64 = [0u64, 1, 2, 3].iter().map(|&k| f.sign(k)).product();
                assert_eq!(prod, 1, "seed ({s0}, {s})");
            }
        }
    }

    /// Statistical 4-wise check over random seeds, including the affine
    /// subspace {0,1,2,3} on which EH3 fails deterministically.
    #[test]
    fn fourth_order_products_average_to_zero() {
        let trials = 20_000;
        let key_sets: [[u64; 4]; 3] = [
            [0, 1, 2, 3],
            [5, 99, 1234, 987_654],
            [1 << 40, 1 << 41, 3 << 40, 7],
        ];
        for keys in key_sets {
            let mut rng = StdRng::seed_from_u64(31_337);
            let mut acc = 0i64;
            for _ in 0..trials {
                let f = Bch5::random(&mut rng);
                acc += keys.iter().map(|&k| f.sign(k)).product::<i64>();
            }
            let mean = acc as f64 / trials as f64;
            assert!(mean.abs() < 0.036, "keys {keys:?}: mean = {mean}");
        }
    }

    /// Key 0 cubes to 0, so ξ(0) depends only on s₀: verify the degenerate
    /// case stays balanced across seeds.
    #[test]
    fn key_zero_depends_only_on_s0() {
        for s1 in [0u64, 5, u64::MAX] {
            for s2 in [0u64, 9, u64::MAX] {
                assert_eq!(Bch5::from_seed(false, s1, s2).sign(0), 1);
                assert_eq!(Bch5::from_seed(true, s1, s2).sign(0), -1);
            }
        }
    }

    /// *Exact* k-wise independence certificate for k ≤ 4.
    ///
    /// The parity of `∏_{k ∈ K} ξ(k)` over a key subset `K` is the linear
    /// form `|K|·s₀ ⊕ ⟨s₁, ⊕K⟩ ⊕ ⟨s₂, ⊕K³⟩` in the seed bits. Over the
    /// uniform seed distribution the product averages to exactly 0 iff that
    /// form is not identically zero, i.e. unless |K| is even *and*
    /// `⊕_{k∈K} k = 0` *and* `⊕_{k∈K} k³ = 0`. The BCH-code distance
    /// argument says no subset of size ≤ 4 (indeed ≤ 5 when 0 ∉ K) can
    /// satisfy both cancellations; verify it exhaustively over a key sample.
    #[test]
    fn exact_four_wise_independence_certificate() {
        let keys: Vec<u64> = (1u64..=40).chain([1 << 20, 1 << 40, u64::MAX]).collect();
        let n = keys.len();
        let cubes: Vec<u64> = keys.iter().map(|&k| gf_cube(k)).collect();
        // Enumerate all subsets of size 2 and 4 (odd sizes are balanced by
        // the s₀ bit regardless).
        for i in 0..n {
            for j in i + 1..n {
                assert!(
                    keys[i] ^ keys[j] != 0 || cubes[i] ^ cubes[j] != 0,
                    "pair ({}, {}) collides",
                    keys[i],
                    keys[j]
                );
                for k in j + 1..n {
                    for l in k + 1..n {
                        let x = keys[i] ^ keys[j] ^ keys[k] ^ keys[l];
                        let c = cubes[i] ^ cubes[j] ^ cubes[k] ^ cubes[l];
                        assert!(
                            x != 0 || c != 0,
                            "4-subset ({}, {}, {}, {}) defeats the family",
                            keys[i],
                            keys[j],
                            keys[k],
                            keys[l]
                        );
                    }
                }
            }
        }
    }
}
