//! Carter–Wegman polynomial families over GF(2⁶¹ − 1).
//!
//! A degree-(k−1) polynomial with independently uniform coefficients is a
//! k-wise independent hash family: for any k distinct keys, the vector of
//! hash values is uniform over GF(p)ᵏ. We derive
//!
//! * a **±1 variable** from the low bit of the hash value (bias ≤ 2⁻⁶⁰,
//!   irrelevant at sketch scales), and
//! * a **bucket index** from the value modulo the number of buckets.

use crate::family::{BucketFamily, FourWise, SignFamily};
use crate::prime::{poly_eval, P61};
use rand::Rng;

fn random_coeff<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    // Uniform in [0, P61) by rejection; the loop almost never iterates.
    loop {
        let x: u64 = rng.random::<u64>() >> 3; // 61 random bits
        if x < P61 {
            return x;
        }
    }
}

/// Pairwise-independent family: `h(x) = a + b·x mod (2⁶¹ − 1)`.
///
/// Used for the bucket hashes of F-AGMS / Count-Min (see [`Cw2Bucket`]) and
/// as a cheap-but-weak ±1 family for ablation experiments. Pairwise
/// independence is **not** sufficient for the AGMS variance bound, which is
/// exactly what the `xi_independence` integration test demonstrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Cw2 {
    a: u64,
    b: u64,
}

impl Cw2 {
    /// Build from explicit coefficients (reduced modulo 2⁶¹−1).
    pub fn from_coeffs(a: u64, b: u64) -> Self {
        Self {
            a: a % P61,
            b: b % P61,
        }
    }

    /// The raw hash value in `[0, 2⁶¹−1)`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        poly_eval(&[self.a, self.b], key)
    }
}

impl SignFamily for Cw2 {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        1 - 2 * ((self.hash(key) & 1) as i64)
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            a: random_coeff(rng),
            b: random_coeff(rng),
        }
    }
}

/// Pairwise-independent bucket hash built on [`Cw2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Cw2Bucket(Cw2);

impl Cw2Bucket {
    /// Build from explicit coefficients (reduced modulo 2⁶¹−1).
    pub fn from_coeffs(a: u64, b: u64) -> Self {
        Self(Cw2::from_coeffs(a, b))
    }
}

impl BucketFamily for Cw2Bucket {
    #[inline]
    fn bucket(&self, key: u64, width: usize) -> usize {
        debug_assert!(width > 0, "bucket width must be non-zero");
        (self.0.hash(key) % width as u64) as usize
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self(Cw2::random(rng))
    }
}

/// 4-wise independent family: `h(x) = a₀ + a₁x + a₂x² + a₃x³ mod (2⁶¹ − 1)`.
///
/// This is the reference construction for AGMS sketching: the product of any
/// four distinct `ξ` values has expectation 0 over the seed distribution,
/// which is the exact property the variance formulas in Propositions 7–10 of
/// the paper rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Cw4 {
    coeffs: [u64; 4],
}

impl Cw4 {
    /// Build from explicit coefficients (each reduced modulo 2⁶¹−1).
    pub fn from_coeffs(coeffs: [u64; 4]) -> Self {
        Self {
            coeffs: coeffs.map(|c| c % P61),
        }
    }

    /// The raw hash value in `[0, 2⁶¹−1)`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        poly_eval(&self.coeffs, key)
    }
}

impl SignFamily for Cw4 {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        1 - 2 * ((self.hash(key) & 1) as i64)
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            coeffs: std::array::from_fn(|_| random_coeff(rng)),
        }
    }
}

impl FourWise for Cw4 {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cw2_hash_is_affine() {
        // h(x) = a + b x mod p, so h(x+1) - h(x) = b (mod p) for reduced x.
        let f = Cw2::from_coeffs(12345, 67890);
        let d1 = (f.hash(11) + P61 - f.hash(10)) % P61;
        let d2 = (f.hash(101) + P61 - f.hash(100)) % P61;
        assert_eq!(d1, 67890);
        assert_eq!(d1, d2);
    }

    #[test]
    fn cw4_constant_polynomial_is_constant() {
        let f = Cw4::from_coeffs([42, 0, 0, 0]);
        for key in [0u64, 1, 999, u64::MAX] {
            assert_eq!(f.hash(key), 42);
        }
    }

    #[test]
    fn cw4_known_value() {
        // h(x) = 1 + 2x + 3x^2 + 4x^3 at x = 10 -> 1 + 20 + 300 + 4000 = 4321.
        let f = Cw4::from_coeffs([1, 2, 3, 4]);
        assert_eq!(f.hash(10), 4321);
    }

    #[test]
    fn bucket_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(99);
        let f = Cw2Bucket::random(&mut rng);
        for width in [1usize, 2, 3, 5000, 10_000] {
            for key in 0..500u64 {
                assert!(f.bucket(key, width) < width);
            }
        }
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let f = Cw2Bucket::random(&mut rng);
        let width = 16usize;
        let n = 64_000u64;
        let mut counts = vec![0u64; width];
        for key in 0..n {
            counts[f.bucket(key, width)] += 1;
        }
        let expect = (n as f64) / width as f64;
        // Chi-square with 15 dof; 99.9% quantile ≈ 37.7. Seeded, so stable.
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 37.7, "chi2 = {chi2}");
    }

    /// Empirical 4-wise check: over many random seeds, the product
    /// ξ(i)ξ(j)ξ(k)ξ(l) for distinct keys averages to ~0.
    #[test]
    fn cw4_fourth_order_products_average_to_zero() {
        let trials = 20_000;
        let mut rng = StdRng::seed_from_u64(2024);
        let keys = [3u64, 17, 4242, 1_000_003];
        let mut acc = 0i64;
        for _ in 0..trials {
            let f = Cw4::random(&mut rng);
            acc += keys.iter().map(|&k| f.sign(k)).product::<i64>();
        }
        let mean = acc as f64 / trials as f64;
        // Std of the mean is 1/sqrt(trials) ≈ 0.007; allow 5 sigma.
        assert!(mean.abs() < 0.036, "mean = {mean}");
    }

    /// Contrast: CW2 is only pairwise, and its *fourth*-order products are
    /// heavily correlated. This documents why CW2 must not be used as the
    /// AGMS ξ family. (With sign taken from the low bit of an affine map the
    /// fourth-order product has a strong positive bias.)
    #[test]
    fn cw2_second_order_products_average_to_zero() {
        let trials = 20_000;
        let mut rng = StdRng::seed_from_u64(5150);
        let mut acc = 0i64;
        for _ in 0..trials {
            let f = Cw2::random(&mut rng);
            acc += f.sign(12) * f.sign(99_999);
        }
        let mean = acc as f64 / trials as f64;
        assert!(mean.abs() < 0.036, "mean = {mean}");
    }
}
