//! Carter–Wegman polynomial families over GF(2⁶¹ − 1).
//!
//! A degree-(k−1) polynomial with independently uniform coefficients is a
//! k-wise independent hash family: for any k distinct keys, the vector of
//! hash values is uniform over GF(p)ᵏ. We derive
//!
//! * a **±1 variable** from the low bit of the hash value (bias ≤ 2⁻⁶⁰,
//!   irrelevant at sketch scales), and
//! * a **bucket index** from the value modulo the number of buckets.

use crate::family::{BucketFamily, FourWise, SignFamily};
use crate::kernels::{self, Dispatch};
use crate::prime::{poly_eval, P61};
use rand::Rng;

fn random_coeff<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    // Uniform in [0, P61) by rejection; the loop almost never iterates.
    loop {
        let x: u64 = rng.random::<u64>() >> 3; // 61 random bits
        if x < P61 {
            return x;
        }
    }
}

/// Fused F-AGMS row kernel: for every key, add `sign(key)` (the low bit of
/// the `sign_coeffs` polynomial) into `counters[hash(key) % width]` (the
/// `bucket_coeffs` polynomial), in one pass with no intermediate buffers.
///
/// Thin wrapper over [`kernels::signed_scatter`] on the runtime-dispatched
/// fast path; bit-identical to the per-key
/// `counters[bucket(k, width)] += sign(k)` loop on every path.
///
/// # Panics
///
/// Panics if `width == 0` or `counters.len() < width`.
pub fn signed_scatter(
    sign_coeffs: &[u64],
    bucket_coeffs: &[u64],
    width: usize,
    keys: &[u64],
    counters: &mut [i64],
) {
    kernels::signed_scatter(
        Dispatch::get(),
        sign_coeffs,
        bucket_coeffs,
        width,
        keys,
        counters,
    );
}

/// Count-carrying twin of [`signed_scatter`]:
/// `counters[hash(key) % width] += count·sign(key)` per `(key, count)`.
///
/// # Panics
///
/// Panics if `width == 0` or `counters.len() < width`.
pub fn signed_scatter_counts(
    sign_coeffs: &[u64],
    bucket_coeffs: &[u64],
    width: usize,
    items: &[(u64, i64)],
    counters: &mut [i64],
) {
    kernels::signed_scatter_counts(
        Dispatch::get(),
        sign_coeffs,
        bucket_coeffs,
        width,
        items,
        counters,
    );
}

/// Fused Count-Min row kernel: `counters[hash(key) % width] += 1` per key.
/// Same lane evaluation and `FixedMod` remainder as [`signed_scatter`],
/// minus the sign polynomial.
///
/// # Panics
///
/// Panics if `width == 0` or `counters.len() < width`.
pub fn bucket_scatter(bucket_coeffs: &[u64], width: usize, keys: &[u64], counters: &mut [i64]) {
    kernels::bucket_scatter(Dispatch::get(), bucket_coeffs, width, keys, counters);
}

/// Count-carrying twin of [`bucket_scatter`]:
/// `counters[hash(key) % width] += count` per `(key, count)`.
///
/// # Panics
///
/// Panics if `width == 0` or `counters.len() < width`.
pub fn bucket_scatter_counts(
    bucket_coeffs: &[u64],
    width: usize,
    items: &[(u64, i64)],
    counters: &mut [i64],
) {
    kernels::bucket_scatter_counts(Dispatch::get(), bucket_coeffs, width, items, counters);
}

/// Pairwise-independent family: `h(x) = a + b·x mod (2⁶¹ − 1)`.
///
/// Used for the bucket hashes of F-AGMS / Count-Min (see [`Cw2Bucket`]) and
/// as a cheap-but-weak ±1 family for ablation experiments. Pairwise
/// independence is **not** sufficient for the AGMS variance bound, which is
/// exactly what the `xi_independence` integration test demonstrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Cw2 {
    coeffs: [u64; 2],
}

impl Cw2 {
    /// Build from explicit coefficients (reduced modulo 2⁶¹−1).
    pub fn from_coeffs(a: u64, b: u64) -> Self {
        Self {
            coeffs: [a % P61, b % P61],
        }
    }

    /// The raw hash value in `[0, 2⁶¹−1)`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        poly_eval(&self.coeffs, key)
    }
}

impl SignFamily for Cw2 {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        1 - 2 * ((self.hash(key) & 1) as i64)
    }

    fn sign_batch(&self, keys: &[u64], out: &mut [i64]) {
        kernels::sign_batch(Dispatch::get(), &self.coeffs, keys, out);
    }

    fn sign_sum(&self, keys: &[u64]) -> i64 {
        kernels::sign_sum(Dispatch::get(), &self.coeffs, keys)
    }

    fn sign_dot(&self, items: &[(u64, i64)]) -> i64 {
        kernels::sign_dot(Dispatch::get(), &self.coeffs, items)
    }

    fn poly_coeffs(&self) -> Option<&[u64]> {
        Some(&self.coeffs)
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Drawn in ascending-degree order, matching the historical
        // `a` then `b` field order so seeded streams stay reproducible.
        let a = random_coeff(rng);
        let b = random_coeff(rng);
        Self { coeffs: [a, b] }
    }
}

/// Pairwise-independent bucket hash built on [`Cw2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Cw2Bucket(Cw2);

impl Cw2Bucket {
    /// Build from explicit coefficients (reduced modulo 2⁶¹−1).
    pub fn from_coeffs(a: u64, b: u64) -> Self {
        Self(Cw2::from_coeffs(a, b))
    }
}

impl BucketFamily for Cw2Bucket {
    #[inline]
    fn bucket(&self, key: u64, width: usize) -> usize {
        debug_assert!(width > 0, "bucket width must be non-zero");
        (self.0.hash(key) % width as u64) as usize
    }

    fn bucket_batch(&self, keys: &[u64], width: usize, out: &mut [usize]) {
        kernels::bucket_batch(Dispatch::get(), &self.0.coeffs, width, keys, out);
    }

    fn poly_coeffs(&self) -> Option<&[u64]> {
        Some(&self.0.coeffs)
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self(Cw2::random(rng))
    }
}

/// 4-wise independent family: `h(x) = a₀ + a₁x + a₂x² + a₃x³ mod (2⁶¹ − 1)`.
///
/// This is the reference construction for AGMS sketching: the product of any
/// four distinct `ξ` values has expectation 0 over the seed distribution,
/// which is the exact property the variance formulas in Propositions 7–10 of
/// the paper rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Cw4 {
    coeffs: [u64; 4],
}

impl Cw4 {
    /// Build from explicit coefficients (each reduced modulo 2⁶¹−1).
    pub fn from_coeffs(coeffs: [u64; 4]) -> Self {
        Self {
            coeffs: coeffs.map(|c| c % P61),
        }
    }

    /// The raw hash value in `[0, 2⁶¹−1)`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        poly_eval(&self.coeffs, key)
    }
}

impl SignFamily for Cw4 {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        1 - 2 * ((self.hash(key) & 1) as i64)
    }

    fn sign_batch(&self, keys: &[u64], out: &mut [i64]) {
        kernels::sign_batch(Dispatch::get(), &self.coeffs, keys, out);
    }

    fn sign_sum(&self, keys: &[u64]) -> i64 {
        kernels::sign_sum(Dispatch::get(), &self.coeffs, keys)
    }

    fn sign_dot(&self, items: &[(u64, i64)]) -> i64 {
        kernels::sign_dot(Dispatch::get(), &self.coeffs, items)
    }

    fn poly_coeffs(&self) -> Option<&[u64]> {
        Some(&self.coeffs)
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            coeffs: std::array::from_fn(|_| random_coeff(rng)),
        }
    }
}

impl FourWise for Cw4 {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cw2_hash_is_affine() {
        // h(x) = a + b x mod p, so h(x+1) - h(x) = b (mod p) for reduced x.
        let f = Cw2::from_coeffs(12345, 67890);
        let d1 = (f.hash(11) + P61 - f.hash(10)) % P61;
        let d2 = (f.hash(101) + P61 - f.hash(100)) % P61;
        assert_eq!(d1, 67890);
        assert_eq!(d1, d2);
    }

    #[test]
    fn cw4_constant_polynomial_is_constant() {
        let f = Cw4::from_coeffs([42, 0, 0, 0]);
        for key in [0u64, 1, 999, u64::MAX] {
            assert_eq!(f.hash(key), 42);
        }
    }

    #[test]
    fn cw4_known_value() {
        // h(x) = 1 + 2x + 3x^2 + 4x^3 at x = 10 -> 1 + 20 + 300 + 4000 = 4321.
        let f = Cw4::from_coeffs([1, 2, 3, 4]);
        assert_eq!(f.hash(10), 4321);
    }

    #[test]
    fn bucket_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(99);
        let f = Cw2Bucket::random(&mut rng);
        for width in [1usize, 2, 3, 5000, 10_000] {
            for key in 0..500u64 {
                assert!(f.bucket(key, width) < width);
            }
        }
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let f = Cw2Bucket::random(&mut rng);
        let width = 16usize;
        let n = 64_000u64;
        let mut counts = vec![0u64; width];
        for key in 0..n {
            counts[f.bucket(key, width)] += 1;
        }
        let expect = (n as f64) / width as f64;
        // Chi-square with 15 dof; 99.9% quantile ≈ 37.7. Seeded, so stable.
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 37.7, "chi2 = {chi2}");
    }

    /// Empirical 4-wise check: over many random seeds, the product
    /// ξ(i)ξ(j)ξ(k)ξ(l) for distinct keys averages to ~0.
    #[test]
    fn cw4_fourth_order_products_average_to_zero() {
        let trials = 20_000;
        let mut rng = StdRng::seed_from_u64(2024);
        let keys = [3u64, 17, 4242, 1_000_003];
        let mut acc = 0i64;
        for _ in 0..trials {
            let f = Cw4::random(&mut rng);
            acc += keys.iter().map(|&k| f.sign(k)).product::<i64>();
        }
        let mean = acc as f64 / trials as f64;
        // Std of the mean is 1/sqrt(trials) ≈ 0.007; allow 5 sigma.
        assert!(mean.abs() < 0.036, "mean = {mean}");
    }

    /// The fused row kernels must reproduce the per-key
    /// `counters[bucket] += sign·count` loop exactly, across lane
    /// remainders, widths, and negative counts.
    #[test]
    fn scatter_kernels_match_per_key_loops() {
        let mut rng = StdRng::seed_from_u64(71);
        let sign = Cw4::random(&mut rng);
        let bucket = Cw2Bucket::random(&mut rng);
        let sc = sign.poly_coeffs().unwrap();
        let bc = bucket.poly_coeffs().unwrap();
        let keys: Vec<u64> = (0..203u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .chain([0, u64::MAX])
            .collect();
        let items: Vec<(u64, i64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, (i as i64 % 7) - 3))
            .collect();
        for width in [1usize, 3, 300, 5000] {
            for len in [0usize, 1, 3, 4, 5, keys.len()] {
                let mut want = vec![0i64; width];
                for &k in &keys[..len] {
                    want[bucket.bucket(k, width)] += sign.sign(k);
                }
                let mut got = vec![0i64; width];
                signed_scatter(sc, bc, width, &keys[..len], &mut got);
                assert_eq!(got, want, "signed width {width} len {len}");

                let mut want = vec![0i64; width];
                for &(k, c) in &items[..len] {
                    want[bucket.bucket(k, width)] += c * sign.sign(k);
                }
                let mut got = vec![0i64; width];
                signed_scatter_counts(sc, bc, width, &items[..len], &mut got);
                assert_eq!(got, want, "signed counts width {width} len {len}");

                let mut want = vec![0i64; width];
                for &k in &keys[..len] {
                    want[bucket.bucket(k, width)] += 1;
                }
                let mut got = vec![0i64; width];
                bucket_scatter(bc, width, &keys[..len], &mut got);
                assert_eq!(got, want, "bucket width {width} len {len}");

                let mut want = vec![0i64; width];
                for &(k, c) in &items[..len] {
                    want[bucket.bucket(k, width)] += c;
                }
                let mut got = vec![0i64; width];
                bucket_scatter_counts(bc, width, &items[..len], &mut got);
                assert_eq!(got, want, "bucket counts width {width} len {len}");
            }
        }
    }

    /// Coefficient vectors beyond the lane budget take the scalar branch
    /// and must agree with direct polynomial evaluation.
    #[test]
    fn scatter_kernels_fall_back_beyond_lane_budget() {
        let sc: Vec<u64> = (1..=12u64).collect();
        let bc: Vec<u64> = (3..=14u64).collect();
        let keys: Vec<u64> = (0..37u64).map(|i| i * 997).collect();
        let width = 29usize;
        let mut want = vec![0i64; width];
        for &k in &keys {
            let s = 1 - 2 * ((poly_eval(&sc, k) & 1) as i64);
            want[(poly_eval(&bc, k) % width as u64) as usize] += s;
        }
        let mut got = vec![0i64; width];
        signed_scatter(&sc, &bc, width, &keys, &mut got);
        assert_eq!(got, want);
        let mut got = vec![0i64; width];
        bucket_scatter(&bc, width, &keys, &mut got);
        let mut want = vec![0i64; width];
        for &k in &keys {
            want[(poly_eval(&bc, k) % width as u64) as usize] += 1;
        }
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "width must be non-zero")]
    fn signed_scatter_rejects_zero_width() {
        signed_scatter(&[1, 2, 3, 4], &[1, 2], 0, &[1], &mut []);
    }

    /// Contrast: CW2 is only pairwise, and its *fourth*-order products are
    /// heavily correlated. This documents why CW2 must not be used as the
    /// AGMS ξ family. (With sign taken from the low bit of an affine map the
    /// fourth-order product has a strong positive bias.)
    #[test]
    fn cw2_second_order_products_average_to_zero() {
        let trials = 20_000;
        let mut rng = StdRng::seed_from_u64(5150);
        let mut acc = 0i64;
        for _ in 0..trials {
            let f = Cw2::random(&mut rng);
            acc += f.sign(12) * f.sign(99_999);
        }
        let mean = acc as f64 / trials as f64;
        assert!(mean.abs() < 0.036, "mean = {mean}");
    }
}
