//! The EH3 family: 3-wise independent ±1 variables from extended Hamming
//! codes.
//!
//! For a seed `(s₀, s)` with `s₀ ∈ {0,1}` and `s ∈ {0,1}⁶⁴`, the generator is
//!
//! ```text
//! ξ(i) = (−1)^( s₀ ⊕ ⟨s, i⟩ ⊕ q(i) )
//! q(i) = (i₀∧i₁) ⊕ (i₂∧i₃) ⊕ … ⊕ (i₆₂∧i₆₃)
//! ```
//!
//! where `⟨s, i⟩` is the GF(2) inner product and `q` is a fixed quadratic
//! form pairing adjacent bits. The linear part alone would give only 2-wise
//! independence with pathological correlations; the quadratic form upgrades
//! the family to exactly 3-wise independence (Rusu & Dobra, TODS 2007,
//! after Alon et al.). EH3 evaluates in a handful of cycles — two ANDs, two
//! popcounts — which is why it is the fastest practical generator for
//! sketching very fast streams.

use crate::family::SignFamily;
use crate::kernels::{self, Dispatch, EVEN_BITS};
use rand::Rng;

/// 3-wise independent ±1 family; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Eh3 {
    s0: bool,
    s: u64,
}

impl Eh3 {
    /// Build from an explicit seed.
    pub fn from_seed(s0: bool, s: u64) -> Self {
        Self { s0, s }
    }

    /// The seed `(s₀, s)` — exposed so benches and identity tests can
    /// drive the [`crate::kernels`] EH3 entry points directly.
    pub fn seeds(&self) -> (bool, u64) {
        (self.s0, self.s)
    }

    /// The bit `s₀ ⊕ ⟨s, i⟩ ⊕ q(i)` (0 ⇒ +1, 1 ⇒ −1).
    #[inline]
    pub fn bit(&self, key: u64) -> u64 {
        let linear = (self.s & key).count_ones() as u64 & 1;
        // q(i): AND adjacent bit pairs, then take the parity of the results.
        let pairs = key & (key >> 1) & EVEN_BITS;
        let quad = pairs.count_ones() as u64 & 1;
        (self.s0 as u64) ^ linear ^ quad
    }
}

impl Eh3 {
    /// The sum `Σ_{i ∈ [start, start+2ᵏ)} ξ(i)` over an **aligned dyadic
    /// block with even level k**, in O(k) time.
    ///
    /// Why this works: for an aligned block with `k` even, the free bits
    /// are `0..k`, every quadratic pair `(2j, 2j+1)` lies entirely inside
    /// or entirely outside the free region, and `⟨s, i⟩` splits into fixed
    /// and free parts. The fixed part contributes a global sign; each free
    /// pair with seed bits `(u, v) = (s₂ⱼ₊₁, s₂ⱼ)` contributes a factor
    /// `Σ_{b₁b₀} (−1)^{u·b₁ ⊕ v·b₀ ⊕ b₁∧b₀} = ±2` (−2 iff `u = v = 1`).
    fn dyadic_sum_even(&self, start: u64, k: u32) -> i64 {
        debug_assert!(k % 2 == 0 && k <= 64);
        debug_assert!(k == 64 || start % (1u64 << k) == 0, "block must be aligned");
        // Sign from the fixed high bits (the whole key with low k bits 0).
        let fixed_sign = self.sign(start);
        // Product over the k/2 free pairs.
        let mut magnitude_log2 = 0u32;
        let mut sign = fixed_sign;
        for j in 0..(k / 2) {
            let u = (self.s >> (2 * j + 1)) & 1;
            let v = (self.s >> (2 * j)) & 1;
            magnitude_log2 += 1;
            if u == 1 && v == 1 {
                sign = -sign;
            }
        }
        sign * (1i64 << magnitude_log2)
    }

    /// The range sum `Σ_{i ∈ [lo, hi)} ξ(i)` in O(log²(hi − lo)) time.
    ///
    /// This is the *range-summable* property of EH3 (Feigenbaum et al.;
    /// Rusu & Dobra, TODS 2007): it lets a sketch ingest a whole interval
    /// of keys — a range predicate, a histogram bucket boundary update —
    /// in logarithmic rather than linear time. The range is decomposed
    /// into aligned dyadic blocks; odd-level blocks split into two
    /// even-level halves.
    ///
    /// Returns 0 for empty ranges. The closed form is exact: the
    /// `range_sum_matches_brute_force` test checks every decomposition
    /// path against direct summation.
    pub fn range_sum(&self, lo: u64, hi: u64) -> i64 {
        if lo >= hi {
            return 0;
        }
        let mut total = 0i64;
        let mut a = lo;
        // Standard dyadic sweep: repeatedly take the largest aligned
        // even-level block that starts at `a` and fits in [a, hi).
        while a < hi {
            let remaining = hi - a;
            // Largest level allowed by alignment of `a` (64 if a == 0).
            let align = if a == 0 { 64 } else { a.trailing_zeros() };
            // Largest level allowed by the remaining length.
            let fit = 63 - remaining.leading_zeros();
            let mut k = align.min(fit);
            // Force even level (odd blocks are two even halves; taking the
            // even level here and looping handles the second half).
            k -= k % 2;
            total += self.dyadic_sum_even(a, k);
            a += 1u64 << k;
        }
        total
    }
}

impl SignFamily for Eh3 {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        1 - 2 * self.bit(key) as i64
    }

    fn sign_batch(&self, keys: &[u64], out: &mut [i64]) {
        kernels::eh3_sign_batch(Dispatch::get(), self.s0, self.s, keys, out);
    }

    fn sign_sum(&self, keys: &[u64]) -> i64 {
        kernels::eh3_sign_sum(Dispatch::get(), self.s0, self.s, keys)
    }

    fn sign_dot(&self, items: &[(u64, i64)]) -> i64 {
        kernels::eh3_sign_dot(Dispatch::get(), self.s0, self.s, items)
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            s0: rng.random::<bool>(),
            s: rng.random::<u64>(),
        }
    }
}

impl crate::family::RangeSummable for Eh3 {
    fn range_sum(&self, lo: u64, hi: u64) -> i64 {
        Eh3::range_sum(self, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively verify 3-wise independence on an 8-bit key domain.
    ///
    /// Keys with only the low 8 bits set are unaffected by the upper 56 seed
    /// bits, so enumerating `s ∈ 0..256`, `s₀ ∈ {0,1}` enumerates the full
    /// effective seed space. Exact 3-wise independence of ±1 variables is
    /// equivalent to `Σ_seeds ξ(a)ξ(b)ξ(c) = 0` for distinct keys a, b, c
    /// (all first and second moments vanish by the same argument).
    #[test]
    fn exact_three_wise_independence_on_small_domain() {
        let keys = [0u64, 1, 2, 3, 5, 7, 11, 100, 255];
        for (ai, &a) in keys.iter().enumerate() {
            for (bi, &b) in keys.iter().enumerate().skip(ai + 1) {
                for &c in keys.iter().skip(bi + 1) {
                    let mut sum1 = 0i64;
                    let mut sum2 = 0i64;
                    let mut sum3 = 0i64;
                    for s in 0u64..256 {
                        for s0 in [false, true] {
                            let f = Eh3::from_seed(s0, s);
                            sum1 += f.sign(a);
                            sum2 += f.sign(a) * f.sign(b);
                            sum3 += f.sign(a) * f.sign(b) * f.sign(c);
                        }
                    }
                    assert_eq!(sum1, 0, "E[ξ({a})] ≠ 0");
                    assert_eq!(sum2, 0, "E[ξ({a})ξ({b})] ≠ 0");
                    assert_eq!(sum3, 0, "E[ξ({a})ξ({b})ξ({c})] ≠ 0");
                }
            }
        }
    }

    /// EH3 is famously *not* 4-wise independent: the keys {0, 1, 2, 3} have
    /// ξ(0)ξ(1)ξ(2)ξ(3) = −1 for *every* seed (the linear parts cancel and
    /// the quadratic form contributes q(3) = 1). Document the defect.
    #[test]
    fn four_wise_defect_on_affine_subspace() {
        for s in 0u64..256 {
            for s0 in [false, true] {
                let f = Eh3::from_seed(s0, s);
                let prod: i64 = [0u64, 1, 2, 3].iter().map(|&k| f.sign(k)).product();
                assert_eq!(prod, -1, "seed ({s0}, {s})");
            }
        }
    }

    #[test]
    fn quadratic_form_matches_reference() {
        // q pairs bits (0,1), (2,3), ...: for key 0b1111 both pairs fire -> parity 0.
        let f = Eh3::from_seed(false, 0);
        assert_eq!(f.bit(0b0011), 1); // one pair
        assert_eq!(f.bit(0b1111), 0); // two pairs
        assert_eq!(f.bit(0b0101), 0); // no adjacent pair
        assert_eq!(f.bit(0), 0);
    }

    #[test]
    fn range_sum_matches_brute_force() {
        // Deterministic seed battery covering all pair-seed cases.
        let seeds: Vec<(bool, u64)> = vec![
            (false, 0),
            (true, 0),
            (false, 0b11),
            (false, 0b01),
            (true, 0b10),
            (false, 0xDEAD_BEEF_CAFE_F00D),
            (true, u64::MAX),
        ];
        let ranges: Vec<(u64, u64)> = vec![
            (0, 0),
            (5, 5),
            (0, 1),
            (0, 16),
            (1, 16),
            (3, 29),
            (0, 1024),
            (17, 1023),
            (255, 257),
            (1000, 5000),
            ((1 << 40) - 3, (1 << 40) + 100),
        ];
        for &(s0, s) in &seeds {
            let f = Eh3::from_seed(s0, s);
            for &(lo, hi) in &ranges {
                let brute: i64 = (lo..hi).map(|k| f.sign(k)).sum();
                assert_eq!(
                    f.range_sum(lo, hi),
                    brute,
                    "seed ({s0}, {s:#x}), range [{lo}, {hi})"
                );
            }
        }
    }

    #[test]
    fn dyadic_magnitude_is_power_of_two() {
        // An aligned even-level block sums to ±2^(k/2) exactly.
        let f = Eh3::from_seed(false, 0b1011);
        for k in [0u32, 2, 4, 6, 8] {
            for m in 0..4u64 {
                let start = m << k;
                let s = f.range_sum(start, start + (1 << k));
                assert_eq!(s.unsigned_abs(), 1u64 << (k / 2), "k={k} m={m}: sum {s}");
            }
        }
    }

    #[test]
    fn range_sums_are_additive() {
        let f = Eh3::from_seed(true, 0x1234_5678);
        // [a, c) = [a, b) + [b, c) for arbitrary split points.
        for (a, b, c) in [(0u64, 7, 100), (50, 64, 128), (1, 2, 3), (10, 1000, 4096)] {
            assert_eq!(f.range_sum(a, c), f.range_sum(a, b) + f.range_sum(b, c));
        }
    }

    #[test]
    fn linear_part_matches_inner_product() {
        let f = Eh3::from_seed(false, 0b1010);
        // keys without adjacent pairs isolate the linear part
        assert_eq!(f.bit(0b1000), 1);
        assert_eq!(f.bit(0b0010), 1);
        assert_eq!(f.bit(0b101000), 1); // <s,i> = 1, no adjacent bits? 0b101000: bits 3,5 -> not adjacent. s&key = 0b1000 -> parity 1
    }
}
