//! Core traits implemented by every random-variable family.

use rand::Rng;

/// A family of {+1, −1} random variables indexed by a `u64` key.
///
/// A *family* is one fixed draw of the seed: `sign(key)` is a deterministic
/// function of `key`, and the randomness lives in the seed. Limited
/// independence (see the implementors) is a property of the *distribution
/// over seeds*, which is why sketch estimators average over many
/// independently-seeded families.
pub trait SignFamily {
    /// The value ξ(key) ∈ {+1, −1}.
    fn sign(&self, key: u64) -> i64;

    /// Construct a family with a fresh random seed drawn from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self
    where
        Self: Sized;
}

/// A family of hash functions mapping a `u64` key to a bucket index.
///
/// Pairwise independence of the bucket hash is what the F-AGMS and Count-Min
/// analyses require; all implementors here provide at least that.
pub trait BucketFamily {
    /// Hash `key` into `0..width`. `width` must be non-zero.
    fn bucket(&self, key: u64, width: usize) -> usize;

    /// Construct a family with a fresh random seed drawn from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self
    where
        Self: Sized;
}

/// A sign family whose sums over key ranges are computable in
/// polylogarithmic time.
///
/// Range summability is what lets a sketch ingest an entire interval of
/// keys (a range predicate, a histogram bucket) without touching each key:
/// `S += count · Σ_{i ∈ [lo, hi)} ξᵢ`. EH3 is the classic range-summable
/// family; the polynomial families are not known to be.
pub trait RangeSummable: SignFamily {
    /// `Σ_{i ∈ [lo, hi)} ξ(i)`; 0 when the range is empty.
    fn range_sum(&self, lo: u64, hi: u64) -> i64;
}

/// Marker trait asserting (at least) 4-wise independence over seeds.
///
/// The AGMS variance formulas (Propositions 7–8 of the paper) assume
/// `E[ξᵢξⱼξₖξₗ] = 0` for distinct indices; families tagged with this trait
/// guarantee it exactly. 3-wise families such as [`crate::Eh3`] work well in
/// practice but are deliberately *not* tagged.
pub trait FourWise: SignFamily {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bch5, Cw2, Cw4, Eh3, Tabulation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_sign_range<F: SignFamily>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = F::random(&mut rng);
        for key in (0..10_000u64).chain([u64::MAX, u64::MAX - 1, 1 << 63]) {
            let s = f.sign(key);
            assert!(s == 1 || s == -1, "sign must be ±1, got {s} for key {key}");
        }
    }

    #[test]
    fn all_families_emit_plus_minus_one() {
        check_sign_range::<Cw2>(1);
        check_sign_range::<Cw4>(2);
        check_sign_range::<Eh3>(3);
        check_sign_range::<Bch5>(4);
        check_sign_range::<Tabulation>(5);
    }

    fn check_determinism<F: SignFamily>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = F::random(&mut rng);
        for key in 0..1000u64 {
            assert_eq!(f.sign(key), f.sign(key));
        }
    }

    #[test]
    fn families_are_deterministic_given_seed() {
        check_determinism::<Cw2>(11);
        check_determinism::<Cw4>(12);
        check_determinism::<Eh3>(13);
        check_determinism::<Bch5>(14);
        check_determinism::<Tabulation>(15);
    }

    fn check_seeds_differ<F: SignFamily>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = F::random(&mut rng);
        let b = F::random(&mut rng);
        let differing = (0..4096u64).filter(|&k| a.sign(k) != b.sign(k)).count();
        // Two independent draws should disagree on roughly half the keys.
        assert!(
            (1024..3072).contains(&differing),
            "families from different seeds look identical or anti-identical ({differing}/4096)"
        );
    }

    #[test]
    fn different_seeds_give_different_families() {
        check_seeds_differ::<Cw2>(21);
        check_seeds_differ::<Cw4>(22);
        check_seeds_differ::<Eh3>(23);
        check_seeds_differ::<Bch5>(24);
        check_seeds_differ::<Tabulation>(25);
    }
}
