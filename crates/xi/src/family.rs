//! Core traits implemented by every random-variable family.

use rand::Rng;

/// A family of {+1, −1} random variables indexed by a `u64` key.
///
/// A *family* is one fixed draw of the seed: `sign(key)` is a deterministic
/// function of `key`, and the randomness lives in the seed. Limited
/// independence (see the implementors) is a property of the *distribution
/// over seeds*, which is why sketch estimators average over many
/// independently-seeded families.
pub trait SignFamily {
    /// The value ξ(key) ∈ {+1, −1}.
    fn sign(&self, key: u64) -> i64;

    /// Fill `out[i] = self.sign(keys[i])` for a whole batch of keys.
    ///
    /// The default walks the keys one by one, so every family works
    /// unchanged; families with a vectorizable evaluation (the polynomial
    /// constructions) override this to amortize per-evaluation setup and
    /// run several keys' worth of arithmetic in parallel. Overrides must be
    /// bit-identical to the per-key path.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != out.len()`.
    fn sign_batch(&self, keys: &[u64], out: &mut [i64]) {
        assert_eq!(
            keys.len(),
            out.len(),
            "sign_batch needs one output slot per key"
        );
        for (o, &k) in out.iter_mut().zip(keys) {
            *o = self.sign(k);
        }
    }

    /// `Σᵢ sign(keys[i])` — the net increment a single AGMS counter
    /// receives from a batch of unit-count tuples.
    ///
    /// Folding the sum into the evaluation loop (instead of materializing
    /// per-key signs through [`SignFamily::sign_batch`]) is what makes the
    /// batched AGMS kernel profitable: the per-key output traffic
    /// disappears entirely. Overrides must return exactly what the
    /// per-key default returns.
    fn sign_sum(&self, keys: &[u64]) -> i64 {
        keys.iter().map(|&k| self.sign(k)).sum()
    }

    /// `Σᵢ counts·sign(key)` over `(key, count)` pairs — the weighted twin
    /// of [`SignFamily::sign_sum`] used by count-carrying batch updates.
    fn sign_dot(&self, items: &[(u64, i64)]) -> i64 {
        items.iter().map(|&(k, c)| c * self.sign(k)).sum()
    }

    /// The coefficient vector (lowest degree first) if this family is a
    /// Carter–Wegman polynomial over GF(2⁶¹−1), else `None`.
    ///
    /// Batched sketch kernels use this to fuse sign and bucket evaluation
    /// of a whole row into a single pass over the keys (see
    /// `sss_xi::cw::signed_scatter`); non-polynomial families take the
    /// generic buffered path instead.
    fn poly_coeffs(&self) -> Option<&[u64]> {
        None
    }

    /// Construct a family with a fresh random seed drawn from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self
    where
        Self: Sized;
}

/// A family of hash functions mapping a `u64` key to a bucket index.
///
/// Pairwise independence of the bucket hash is what the F-AGMS and Count-Min
/// analyses require; all implementors here provide at least that.
pub trait BucketFamily {
    /// Hash `key` into `0..width`. `width` must be non-zero.
    fn bucket(&self, key: u64, width: usize) -> usize;

    /// Fill `out[i] = self.bucket(keys[i], width)` for a whole batch.
    ///
    /// Same contract as [`SignFamily::sign_batch`]: the default is the
    /// per-key loop, overrides must be bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != out.len()`.
    fn bucket_batch(&self, keys: &[u64], width: usize, out: &mut [usize]) {
        assert_eq!(
            keys.len(),
            out.len(),
            "bucket_batch needs one output slot per key"
        );
        for (o, &k) in out.iter_mut().zip(keys) {
            *o = self.bucket(k, width);
        }
    }

    /// The coefficient vector (lowest degree first) if this family hashes
    /// through a Carter–Wegman polynomial over GF(2⁶¹−1) and derives the
    /// bucket as `hash % width`, else `None`. Same fusion hook as
    /// [`SignFamily::poly_coeffs`].
    fn poly_coeffs(&self) -> Option<&[u64]> {
        None
    }

    /// Construct a family with a fresh random seed drawn from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self
    where
        Self: Sized;
}

/// A sign family whose sums over key ranges are computable in
/// polylogarithmic time.
///
/// Range summability is what lets a sketch ingest an entire interval of
/// keys (a range predicate, a histogram bucket) without touching each key:
/// `S += count · Σ_{i ∈ [lo, hi)} ξᵢ`. EH3 is the classic range-summable
/// family; the polynomial families are not known to be.
pub trait RangeSummable: SignFamily {
    /// `Σ_{i ∈ [lo, hi)} ξ(i)`; 0 when the range is empty.
    fn range_sum(&self, lo: u64, hi: u64) -> i64;
}

/// Marker trait asserting (at least) 4-wise independence over seeds.
///
/// The AGMS variance formulas (Propositions 7–8 of the paper) assume
/// `E[ξᵢξⱼξₖξₗ] = 0` for distinct indices; families tagged with this trait
/// guarantee it exactly. 3-wise families such as [`crate::Eh3`] work well in
/// practice but are deliberately *not* tagged.
pub trait FourWise: SignFamily {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bch5, Cw2, Cw4, Eh3, Tabulation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_sign_range<F: SignFamily>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = F::random(&mut rng);
        for key in (0..10_000u64).chain([u64::MAX, u64::MAX - 1, 1 << 63]) {
            let s = f.sign(key);
            assert!(s == 1 || s == -1, "sign must be ±1, got {s} for key {key}");
        }
    }

    #[test]
    fn all_families_emit_plus_minus_one() {
        check_sign_range::<Cw2>(1);
        check_sign_range::<Cw4>(2);
        check_sign_range::<Eh3>(3);
        check_sign_range::<Bch5>(4);
        check_sign_range::<Tabulation>(5);
    }

    fn check_determinism<F: SignFamily>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = F::random(&mut rng);
        for key in 0..1000u64 {
            assert_eq!(f.sign(key), f.sign(key));
        }
    }

    #[test]
    fn families_are_deterministic_given_seed() {
        check_determinism::<Cw2>(11);
        check_determinism::<Cw4>(12);
        check_determinism::<Eh3>(13);
        check_determinism::<Bch5>(14);
        check_determinism::<Tabulation>(15);
    }

    fn check_seeds_differ<F: SignFamily>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = F::random(&mut rng);
        let b = F::random(&mut rng);
        let differing = (0..4096u64).filter(|&k| a.sign(k) != b.sign(k)).count();
        // Two independent draws should disagree on roughly half the keys.
        assert!(
            (1024..3072).contains(&differing),
            "families from different seeds look identical or anti-identical ({differing}/4096)"
        );
    }

    #[test]
    fn different_seeds_give_different_families() {
        check_seeds_differ::<Cw2>(21);
        check_seeds_differ::<Cw4>(22);
        check_seeds_differ::<Eh3>(23);
        check_seeds_differ::<Bch5>(24);
        check_seeds_differ::<Tabulation>(25);
    }

    fn check_sign_batch<F: SignFamily>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = F::random(&mut rng);
        let keys: Vec<u64> = (0..301u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .chain([0, u64::MAX])
            .collect();
        // Odd lengths exercise the lane remainder of overridden impls.
        for len in [0usize, 1, 3, 4, 5, 17, keys.len()] {
            let mut out = vec![0i64; len];
            f.sign_batch(&keys[..len], &mut out);
            for (i, &s) in out.iter().enumerate() {
                assert_eq!(s, f.sign(keys[i]), "len {len}, index {i}");
            }
        }
    }

    #[test]
    fn sign_batch_matches_per_key_for_all_families() {
        check_sign_batch::<Cw2>(31);
        check_sign_batch::<Cw4>(32);
        check_sign_batch::<Eh3>(33);
        check_sign_batch::<Bch5>(34);
        check_sign_batch::<Tabulation>(35);
    }

    fn check_sign_sum<F: SignFamily>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = F::random(&mut rng);
        let keys: Vec<u64> = (0..301u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .chain([0, u64::MAX])
            .collect();
        let items: Vec<(u64, i64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, (i as i64 % 7) - 3))
            .collect();
        for len in [0usize, 1, 3, 4, 5, 17, keys.len()] {
            let want_sum: i64 = keys[..len].iter().map(|&k| f.sign(k)).sum();
            assert_eq!(f.sign_sum(&keys[..len]), want_sum, "len {len}");
            let want_dot: i64 = items[..len].iter().map(|&(k, c)| c * f.sign(k)).sum();
            assert_eq!(f.sign_dot(&items[..len]), want_dot, "len {len}");
        }
    }

    #[test]
    fn sign_sum_and_dot_match_per_key_for_all_families() {
        check_sign_sum::<Cw2>(41);
        check_sign_sum::<Cw4>(42);
        check_sign_sum::<Eh3>(43);
        check_sign_sum::<Bch5>(44);
        check_sign_sum::<Tabulation>(45);
    }

    #[test]
    fn poly_coeffs_identifies_polynomial_families() {
        let mut rng = StdRng::seed_from_u64(46);
        assert_eq!(
            Cw2::random(&mut rng).poly_coeffs().map(<[u64]>::len),
            Some(2)
        );
        assert_eq!(
            Cw4::random(&mut rng).poly_coeffs().map(<[u64]>::len),
            Some(4)
        );
        assert!(Eh3::random(&mut rng).poly_coeffs().is_none());
        assert!(Bch5::random(&mut rng).poly_coeffs().is_none());
        let tab = <Tabulation as SignFamily>::random(&mut rng);
        assert!(SignFamily::poly_coeffs(&tab).is_none());
        assert!(BucketFamily::poly_coeffs(&tab).is_none());
        use crate::{BucketFamily, Cw2Bucket};
        assert_eq!(
            Cw2Bucket::random(&mut rng).poly_coeffs().map(<[u64]>::len),
            Some(2)
        );
    }

    #[test]
    fn bucket_batch_matches_per_key() {
        use crate::{BucketFamily, Cw2Bucket};
        let mut rng = StdRng::seed_from_u64(36);
        let f = Cw2Bucket::random(&mut rng);
        let keys: Vec<u64> = (0..131u64).map(|i| i * 2_654_435_761).collect();
        for width in [1usize, 2, 1000, 5000] {
            let mut out = vec![0usize; keys.len()];
            f.bucket_batch(&keys, width, &mut out);
            for (i, &b) in out.iter().enumerate() {
                assert_eq!(b, f.bucket(keys[i], width), "width {width}, index {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "one output slot per key")]
    fn sign_batch_rejects_mismatched_lengths() {
        let mut rng = StdRng::seed_from_u64(37);
        let f = Cw4::random(&mut rng);
        let mut out = [0i64; 1];
        f.sign_batch(&[1, 2], &mut out);
    }
}
