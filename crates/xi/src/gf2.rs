//! Arithmetic in the binary field GF(2⁶⁴).
//!
//! The BCH5 generator needs the cube of a key in GF(2⁶⁴). We represent field
//! elements as `u64` bit vectors over the irreducible polynomial
//! `x⁶⁴ + x⁴ + x³ + x + 1` (the standard low-weight choice) and implement
//! carry-less multiplication in portable software. This is not the hot path
//! of any sketch — BCH5 seeds are evaluated per tuple, but the cube uses only
//! two multiplications.

/// The reduction polynomial `x⁶⁴ + x⁴ + x³ + x + 1`, represented by its low
/// 64 bits `0b11011` = 0x1B.
pub const REDUCTION: u64 = 0x1B;

/// Carry-less (polynomial) multiplication of two 64-bit values, returning
/// the 128-bit product as `(high, low)`.
#[inline]
pub fn clmul(a: u64, b: u64) -> (u64, u64) {
    let mut lo = 0u64;
    let mut hi = 0u64;
    let mut a_lo = a;
    let mut a_hi = 0u64;
    let mut b = b;
    while b != 0 {
        if b & 1 == 1 {
            lo ^= a_lo;
            hi ^= a_hi;
        }
        // shift (a_hi:a_lo) left by one
        a_hi = (a_hi << 1) | (a_lo >> 63);
        a_lo <<= 1;
        b >>= 1;
    }
    (hi, lo)
}

/// Multiply two elements of GF(2⁶⁴).
#[inline]
pub fn gf_mul(a: u64, b: u64) -> u64 {
    let (hi, lo) = clmul(a, b);
    reduce(hi, lo)
}

/// Reduce a 128-bit polynomial (given as high/low words) modulo the field
/// polynomial.
#[inline]
pub fn reduce(hi: u64, lo: u64) -> u64 {
    // Fold the high word down twice: x^64 ≡ x^4 + x^3 + x + 1.
    let (h1, l1) = clmul(hi, REDUCTION);
    let (h2, l2) = clmul(h1, REDUCTION);
    debug_assert_eq!(h2, 0, "second fold cannot overflow: deg(h1) <= 4");
    lo ^ l1 ^ l2
}

/// The cube `a³` in GF(2⁶⁴).
#[inline]
pub fn gf_cube(a: u64) -> u64 {
    gf_mul(gf_mul(a, a), a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clmul_small_cases() {
        // (x+1)(x+1) = x^2 + 1 over GF(2)
        assert_eq!(clmul(0b11, 0b11), (0, 0b101));
        // x^63 * x = x^64 -> bit 0 of the high word
        assert_eq!(clmul(1 << 63, 2), (1, 0));
        assert_eq!(clmul(0, u64::MAX), (0, 0));
        assert_eq!(clmul(1, u64::MAX), (0, u64::MAX));
    }

    #[test]
    fn field_axioms_hold_on_samples() {
        let xs = [1u64, 2, 3, 0x1B, 0xdead_beef, u64::MAX, 1 << 63];
        for &a in &xs {
            assert_eq!(gf_mul(a, 1), a, "1 is the multiplicative identity");
            assert_eq!(gf_mul(a, 0), 0);
            for &b in &xs {
                assert_eq!(gf_mul(a, b), gf_mul(b, a), "commutativity");
                for &c in &xs {
                    assert_eq!(
                        gf_mul(a, gf_mul(b, c)),
                        gf_mul(gf_mul(a, b), c),
                        "associativity"
                    );
                    assert_eq!(
                        gf_mul(a, b ^ c),
                        gf_mul(a, b) ^ gf_mul(a, c),
                        "distributivity over XOR"
                    );
                }
            }
        }
    }

    #[test]
    fn x64_reduces_to_reduction_polynomial() {
        // x^63 * x = x^64 ≡ x^4 + x^3 + x + 1
        assert_eq!(gf_mul(1 << 63, 2), REDUCTION);
    }

    #[test]
    fn cube_matches_repeated_multiplication() {
        for a in [3u64, 7, 0x1234_5678, u64::MAX] {
            assert_eq!(gf_cube(a), gf_mul(a, gf_mul(a, a)));
        }
    }

    #[test]
    fn frobenius_squaring_is_linear() {
        // In characteristic 2, (a + b)^2 = a^2 + b^2.
        let pairs = [(3u64, 5u64), (0xfeed, 0xbeef), (u64::MAX, 1 << 40)];
        for &(a, b) in &pairs {
            assert_eq!(gf_mul(a ^ b, a ^ b), gf_mul(a, a) ^ gf_mul(b, b));
        }
    }
}
