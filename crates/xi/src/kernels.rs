//! Vectorized batch kernels with runtime CPU dispatch.
//!
//! Every hot per-tuple operation in this workspace — Carter–Wegman sign
//! evaluation, the fused sign+bucket row scatter, EH3 parity, tabulation
//! lookups — is a pure function of `(seed, key)`, which makes the batch
//! versions embarrassingly data-parallel. This module centralizes those
//! batch loops in one place and provides two implementations per kernel:
//!
//! * a **chunked** path: fixed-width-8 array inner loops that LLVM can
//!   autovectorize (and that provide instruction-level parallelism even
//!   where it cannot), compiled for every target; and
//! * an **AVX2** path behind the `simd` cargo feature: explicit
//!   `std::arch` intrinsics in the single audited `avx2` submodule,
//!   selected *at runtime* via `is_x86_feature_detected!` so a binary
//!   built with the feature still runs correctly on older x86-64 parts.
//!
//! The selection is memoized in a [`Dispatch`] value; callers grab it once
//! per batch (an atomic load) and thread it through the kernels.
//!
//! # Bit-identity contract
//!
//! Every path — chunked and AVX2 alike — must produce results that are
//! **bit-identical** to the scalar per-key reference (`poly_eval` low-bit
//! signs, `Eh3::bit`, `Tabulation::hash`). Sketch state is compared
//! byte-for-byte across machines and across resumed test runs, so a kernel
//! that is merely "statistically equivalent" would silently break every
//! golden test the moment dispatch picks a different path. The AVX2 code
//! achieves this by performing literally the same reduction sequence as
//! the scalar field arithmetic (two lazy folds per product, one canonical
//! fold at the end), not a rearranged one.

use crate::prime::{horner_lanes_reduced, poly_eval, FixedMod, P61};

/// Number of keys processed per inner-loop iteration by the chunked kernels.
///
/// Eight independent Horner chains fill the multiplier pipeline about as
/// well as the register file allows on x86-64 and aarch64, and eight u64
/// lanes are exactly two 256-bit vectors for the AVX2 path, so both paths
/// share one chunking granularity (and therefore one tail-handling story).
pub const CHUNK: usize = 8;

/// Bit mask selecting the even-indexed bits (bit 0, 2, 4, …) — the EH3
/// quadratic form pairs bit `2j` with bit `2j+1`.
pub(crate) const EVEN_BITS: u64 = 0x5555_5555_5555_5555;

/// Which kernel implementation a [`Dispatch`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    /// Safe fixed-width-8 loops; always available.
    Chunked,
    /// Explicit AVX2 intrinsics; only constructed after runtime detection.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Avx2(avx2::Avx2Token),
}

/// Memoized runtime CPU-feature dispatch for the batch kernels.
///
/// [`Dispatch::get`] probes the CPU once per process (the result is cached
/// in a `OnceLock`) and returns the fastest available path;
/// [`Dispatch::chunked`] forces the portable path, which benchmarks and
/// bit-identity tests use as the comparison baseline. `Dispatch` is `Copy`
/// and two machine words, so threading it through kernel calls is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    path: Path,
}

impl Dispatch {
    /// The fastest path supported by the running CPU (memoized).
    pub fn get() -> Self {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            use std::sync::OnceLock;
            static DETECTED: OnceLock<Dispatch> = OnceLock::new();
            *DETECTED.get_or_init(|| match avx2::Avx2Token::probe() {
                Some(token) => Dispatch {
                    path: Path::Avx2(token),
                },
                None => Dispatch::chunked(),
            })
        }
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        Dispatch::chunked()
    }

    /// The portable chunked path, regardless of CPU support.
    pub const fn chunked() -> Self {
        Dispatch {
            path: Path::Chunked,
        }
    }

    /// `true` when this dispatch resolved to an explicit SIMD path.
    pub fn is_accelerated(self) -> bool {
        self.path != Path::Chunked
    }

    /// Human-readable path name for benchmark and log output.
    pub fn label(self) -> &'static str {
        match self.path {
            Path::Chunked => "chunked",
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Path::Avx2(_) => "avx2",
        }
    }
}

/// Reduce up to 8 coefficients onto the stack; `None` means the degree
/// exceeds the kernels' coefficient budget and the caller should take its
/// scalar path. No polynomial family in this workspace goes past degree 3,
/// so the fallback exists for API robustness, not performance.
#[inline]
pub(crate) fn reduced_coeffs(coeffs: &[u64], buf: &mut [u64; 8]) -> Option<usize> {
    if coeffs.len() > buf.len() {
        return None;
    }
    for (r, &c) in buf.iter_mut().zip(coeffs) {
        *r = c % P61;
    }
    Some(coeffs.len())
}

/// Evaluate one polynomial (reduced coefficients) at 8 keys, canonical
/// results, on whichever path `d` resolved to.
#[inline]
fn hash8(d: Dispatch, coeffs: &[u64], keys: &[u64; CHUNK]) -> [u64; CHUNK] {
    match d.path {
        Path::Chunked => {
            let xs = keys.map(|k| k % P61);
            horner_lanes_reduced(coeffs, &xs)
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Path::Avx2(token) => avx2::horner8(token, coeffs, keys),
    }
}

/// Evaluate two polynomials at the same 8 keys, sharing the key reduction.
/// This is the inner step of the fused sign+bucket row scatter.
#[inline]
fn hash8_pair(
    d: Dispatch,
    sign_coeffs: &[u64],
    bucket_coeffs: &[u64],
    keys: &[u64; CHUNK],
) -> ([u64; CHUNK], [u64; CHUNK]) {
    match d.path {
        Path::Chunked => {
            let xs = keys.map(|k| k % P61);
            (
                horner_lanes_reduced(sign_coeffs, &xs),
                horner_lanes_reduced(bucket_coeffs, &xs),
            )
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Path::Avx2(token) => avx2::horner8_pair(token, sign_coeffs, bucket_coeffs, keys),
    }
}

// ---------------------------------------------------------------------------
// Carter–Wegman polynomial kernels
// ---------------------------------------------------------------------------

/// `Σᵢ sign(keys[i])` for a polynomial ±1 family: the net increment a
/// single AGMS counter receives from a batch of unit-count tuples. The sum
/// folds into the evaluation loop, so no per-key sign ever touches memory.
pub fn sign_sum(d: Dispatch, coeffs: &[u64], keys: &[u64]) -> i64 {
    let mut buf = [0u64; 8];
    let Some(n) = reduced_coeffs(coeffs, &mut buf) else {
        let odd: u64 = keys.iter().map(|&k| poly_eval(coeffs, k) & 1).sum();
        return keys.len() as i64 - 2 * odd as i64;
    };
    let c = &buf[..n];
    let mut odd = 0u64;
    let mut chunks = keys.chunks_exact(CHUNK);
    for kc in chunks.by_ref() {
        let ks: &[u64; CHUNK] = kc.try_into().expect("chunks_exact yields full chunks");
        let h = hash8(d, c, ks);
        for v in h {
            odd += v & 1;
        }
    }
    for &k in chunks.remainder() {
        odd += poly_eval(c, k) & 1;
    }
    // Each odd hash contributes −1, each even one +1.
    keys.len() as i64 - 2 * odd as i64
}

/// Forced-portable [`sign_sum`]: the baseline that benchmarks and identity
/// tests compare the dispatched paths against.
pub fn sign_sum_chunked(coeffs: &[u64], keys: &[u64]) -> i64 {
    sign_sum(Dispatch::chunked(), coeffs, keys)
}

/// `Σᵢ countᵢ·sign(keyᵢ)`: the weighted twin of [`sign_sum`].
pub fn sign_dot(d: Dispatch, coeffs: &[u64], items: &[(u64, i64)]) -> i64 {
    let mut buf = [0u64; 8];
    let Some(n) = reduced_coeffs(coeffs, &mut buf) else {
        return items
            .iter()
            .map(|&(k, c)| (1 - 2 * ((poly_eval(coeffs, k) & 1) as i64)) * c)
            .sum();
    };
    let c = &buf[..n];
    let mut dot = 0i64;
    let mut chunks = items.chunks_exact(CHUNK);
    for ic in chunks.by_ref() {
        let ks: [u64; CHUNK] = std::array::from_fn(|l| ic[l].0);
        let h = hash8(d, c, &ks);
        for l in 0..CHUNK {
            dot += (1 - 2 * ((h[l] & 1) as i64)) * ic[l].1;
        }
    }
    for &(k, count) in chunks.remainder() {
        dot += (1 - 2 * ((poly_eval(c, k) & 1) as i64)) * count;
    }
    dot
}

/// Forced-portable [`sign_dot`].
pub fn sign_dot_chunked(coeffs: &[u64], items: &[(u64, i64)]) -> i64 {
    sign_dot(Dispatch::chunked(), coeffs, items)
}

/// Fill `out[i]` with the ±1 sign (low hash bit) of every key.
///
/// # Panics
///
/// Panics if `keys.len() != out.len()`.
pub fn sign_batch(d: Dispatch, coeffs: &[u64], keys: &[u64], out: &mut [i64]) {
    assert_eq!(
        keys.len(),
        out.len(),
        "sign_batch needs one output slot per key"
    );
    let mut buf = [0u64; 8];
    let Some(n) = reduced_coeffs(coeffs, &mut buf) else {
        for (o, &k) in out.iter_mut().zip(keys) {
            *o = 1 - 2 * ((poly_eval(coeffs, k) & 1) as i64);
        }
        return;
    };
    let c = &buf[..n];
    let mut key_chunks = keys.chunks_exact(CHUNK);
    let mut out_chunks = out.chunks_exact_mut(CHUNK);
    for (kc, oc) in key_chunks.by_ref().zip(out_chunks.by_ref()) {
        let ks: &[u64; CHUNK] = kc.try_into().expect("chunks_exact yields full chunks");
        let h = hash8(d, c, ks);
        for (o, v) in oc.iter_mut().zip(h) {
            *o = 1 - 2 * ((v & 1) as i64);
        }
    }
    for (o, &k) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(key_chunks.remainder())
    {
        *o = 1 - 2 * ((poly_eval(c, k) & 1) as i64);
    }
}

/// Fill `out[i] = hash(keys[i]) % width` for a polynomial bucket family.
///
/// # Panics
///
/// Panics if `keys.len() != out.len()` or `width == 0`.
pub fn bucket_batch(d: Dispatch, coeffs: &[u64], width: usize, keys: &[u64], out: &mut [usize]) {
    assert_eq!(
        keys.len(),
        out.len(),
        "bucket_batch needs one output slot per key"
    );
    assert!(width > 0, "bucket width must be non-zero");
    let mut buf = [0u64; 8];
    let Some(n) = reduced_coeffs(coeffs, &mut buf) else {
        for (o, &k) in out.iter_mut().zip(keys) {
            *o = (poly_eval(coeffs, k) % width as u64) as usize;
        }
        return;
    };
    let c = &buf[..n];
    let wm = FixedMod::new(width as u64);
    let mut key_chunks = keys.chunks_exact(CHUNK);
    let mut out_chunks = out.chunks_exact_mut(CHUNK);
    for (kc, oc) in key_chunks.by_ref().zip(out_chunks.by_ref()) {
        let ks: &[u64; CHUNK] = kc.try_into().expect("chunks_exact yields full chunks");
        let h = hash8(d, c, ks);
        for (o, v) in oc.iter_mut().zip(h) {
            *o = wm.rem(v) as usize;
        }
    }
    for (o, &k) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(key_chunks.remainder())
    {
        *o = wm.rem(poly_eval(c, k)) as usize;
    }
}

// ---------------------------------------------------------------------------
// Fused sign+bucket row scatter kernels
// ---------------------------------------------------------------------------

/// Fused F-AGMS row kernel: for every key, add `sign(key)` (the low bit of
/// the `sign_coeffs` polynomial) into `counters[hash(key) % width]` (the
/// `bucket_coeffs` polynomial). One pass over the keys evaluates both
/// polynomials on shared reduced lanes and scatters immediately — no
/// intermediate sign/bucket buffers — and the per-key `% width` divide is
/// replaced by a [`FixedMod`] multiply.
///
/// Bit-identical to the per-key `counters[bucket(k, width)] += sign(k)`
/// loop: hashes are canonical, `FixedMod` is an exact remainder, and
/// integer counter increments commute.
///
/// # Panics
///
/// Panics if `width == 0` or `counters.len() < width`.
pub fn signed_scatter(
    d: Dispatch,
    sign_coeffs: &[u64],
    bucket_coeffs: &[u64],
    width: usize,
    keys: &[u64],
    counters: &mut [i64],
) {
    assert!(width > 0, "bucket width must be non-zero");
    assert!(counters.len() >= width, "counter row narrower than width");
    let mut sbuf = [0u64; 8];
    let mut bbuf = [0u64; 8];
    let (Some(sn), Some(bn)) = (
        reduced_coeffs(sign_coeffs, &mut sbuf),
        reduced_coeffs(bucket_coeffs, &mut bbuf),
    ) else {
        for &k in keys {
            let s = 1 - 2 * ((poly_eval(sign_coeffs, k) & 1) as i64);
            counters[(poly_eval(bucket_coeffs, k) % width as u64) as usize] += s;
        }
        return;
    };
    let (sc, bc) = (&sbuf[..sn], &bbuf[..bn]);
    let wm = FixedMod::new(width as u64);
    let mut chunks = keys.chunks_exact(CHUNK);
    for kc in chunks.by_ref() {
        let ks: &[u64; CHUNK] = kc.try_into().expect("chunks_exact yields full chunks");
        let (hs, hb) = hash8_pair(d, sc, bc, ks);
        for l in 0..CHUNK {
            counters[wm.rem(hb[l]) as usize] += 1 - 2 * ((hs[l] & 1) as i64);
        }
    }
    for &k in chunks.remainder() {
        let s = 1 - 2 * ((poly_eval(sc, k) & 1) as i64);
        counters[wm.rem(poly_eval(bc, k)) as usize] += s;
    }
}

/// Count-carrying twin of [`signed_scatter`]:
/// `counters[hash(key) % width] += count·sign(key)` per `(key, count)`.
///
/// # Panics
///
/// Panics if `width == 0` or `counters.len() < width`.
pub fn signed_scatter_counts(
    d: Dispatch,
    sign_coeffs: &[u64],
    bucket_coeffs: &[u64],
    width: usize,
    items: &[(u64, i64)],
    counters: &mut [i64],
) {
    assert!(width > 0, "bucket width must be non-zero");
    assert!(counters.len() >= width, "counter row narrower than width");
    let mut sbuf = [0u64; 8];
    let mut bbuf = [0u64; 8];
    let (Some(sn), Some(bn)) = (
        reduced_coeffs(sign_coeffs, &mut sbuf),
        reduced_coeffs(bucket_coeffs, &mut bbuf),
    ) else {
        for &(k, count) in items {
            let s = 1 - 2 * ((poly_eval(sign_coeffs, k) & 1) as i64);
            counters[(poly_eval(bucket_coeffs, k) % width as u64) as usize] += s * count;
        }
        return;
    };
    let (sc, bc) = (&sbuf[..sn], &bbuf[..bn]);
    let wm = FixedMod::new(width as u64);
    let mut chunks = items.chunks_exact(CHUNK);
    for ic in chunks.by_ref() {
        let ks: [u64; CHUNK] = std::array::from_fn(|l| ic[l].0);
        let (hs, hb) = hash8_pair(d, sc, bc, &ks);
        for l in 0..CHUNK {
            counters[wm.rem(hb[l]) as usize] += (1 - 2 * ((hs[l] & 1) as i64)) * ic[l].1;
        }
    }
    for &(k, count) in chunks.remainder() {
        let s = 1 - 2 * ((poly_eval(sc, k) & 1) as i64);
        counters[wm.rem(poly_eval(bc, k)) as usize] += s * count;
    }
}

/// Fused Count-Min row kernel: `counters[hash(key) % width] += 1` per key.
/// Same lane evaluation and [`FixedMod`] remainder as [`signed_scatter`],
/// minus the sign polynomial.
///
/// # Panics
///
/// Panics if `width == 0` or `counters.len() < width`.
pub fn bucket_scatter(
    d: Dispatch,
    bucket_coeffs: &[u64],
    width: usize,
    keys: &[u64],
    counters: &mut [i64],
) {
    assert!(width > 0, "bucket width must be non-zero");
    assert!(counters.len() >= width, "counter row narrower than width");
    let mut bbuf = [0u64; 8];
    let Some(bn) = reduced_coeffs(bucket_coeffs, &mut bbuf) else {
        for &k in keys {
            counters[(poly_eval(bucket_coeffs, k) % width as u64) as usize] += 1;
        }
        return;
    };
    let bc = &bbuf[..bn];
    let wm = FixedMod::new(width as u64);
    let mut chunks = keys.chunks_exact(CHUNK);
    for kc in chunks.by_ref() {
        let ks: &[u64; CHUNK] = kc.try_into().expect("chunks_exact yields full chunks");
        let hb = hash8(d, bc, ks);
        for v in hb {
            counters[wm.rem(v) as usize] += 1;
        }
    }
    for &k in chunks.remainder() {
        counters[wm.rem(poly_eval(bc, k)) as usize] += 1;
    }
}

/// Count-carrying twin of [`bucket_scatter`]:
/// `counters[hash(key) % width] += count` per `(key, count)`.
///
/// # Panics
///
/// Panics if `width == 0` or `counters.len() < width`.
pub fn bucket_scatter_counts(
    d: Dispatch,
    bucket_coeffs: &[u64],
    width: usize,
    items: &[(u64, i64)],
    counters: &mut [i64],
) {
    assert!(width > 0, "bucket width must be non-zero");
    assert!(counters.len() >= width, "counter row narrower than width");
    let mut bbuf = [0u64; 8];
    let Some(bn) = reduced_coeffs(bucket_coeffs, &mut bbuf) else {
        for &(k, count) in items {
            counters[(poly_eval(bucket_coeffs, k) % width as u64) as usize] += count;
        }
        return;
    };
    let bc = &bbuf[..bn];
    let wm = FixedMod::new(width as u64);
    let mut chunks = items.chunks_exact(CHUNK);
    for ic in chunks.by_ref() {
        let ks: [u64; CHUNK] = std::array::from_fn(|l| ic[l].0);
        let hb = hash8(d, bc, &ks);
        for l in 0..CHUNK {
            counters[wm.rem(hb[l]) as usize] += ic[l].1;
        }
    }
    for &(k, count) in chunks.remainder() {
        counters[wm.rem(poly_eval(bc, k)) as usize] += count;
    }
}

// ---------------------------------------------------------------------------
// EH3 kernels
// ---------------------------------------------------------------------------

/// The EH3 bit `⟨s, k⟩ ⊕ q(k)` (everything except the `s₀` flip) as a
/// single masked parity: `parity(a) ⊕ parity(b) = parity(a ⊕ b)`, so the
/// linear term `⟨s, k⟩ = parity(s & k)` and the quadratic form
/// `q(k) = parity(k & (k≫1) & EVEN_BITS)` fuse into one `count_ones`.
#[inline]
fn eh3_t(s: u64, k: u64) -> u64 {
    ((s & k) ^ (k & (k >> 1) & EVEN_BITS)).count_ones() as u64 & 1
}

/// `t(k)` for 8 keys on whichever path `d` resolved to.
#[inline]
fn eh3_t8(d: Dispatch, s: u64, keys: &[u64; CHUNK]) -> [u64; CHUNK] {
    match d.path {
        Path::Chunked => {
            let mut t = [0u64; CHUNK];
            for l in 0..CHUNK {
                t[l] = eh3_t(s, keys[l]);
            }
            t
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Path::Avx2(token) => avx2::eh3_t8(token, s, keys),
    }
}

/// `Σᵢ sign(keys[i])` for the EH3 seed `(s₀, s)`.
///
/// The `s₀` flip is hoisted out of the loop entirely: if `o` keys have
/// `t(k) = 1` among `n`, the number of −1 signs is `o` when `s₀ = 0` and
/// `n − o` when `s₀ = 1`.
pub fn eh3_sign_sum(d: Dispatch, s0: bool, s: u64, keys: &[u64]) -> i64 {
    let mut t_odd = 0u64;
    let mut chunks = keys.chunks_exact(CHUNK);
    for kc in chunks.by_ref() {
        let ks: &[u64; CHUNK] = kc.try_into().expect("chunks_exact yields full chunks");
        let t = eh3_t8(d, s, ks);
        for v in t {
            t_odd += v;
        }
    }
    for &k in chunks.remainder() {
        t_odd += eh3_t(s, k);
    }
    let n = keys.len() as u64;
    let minus = if s0 { n - t_odd } else { t_odd };
    n as i64 - 2 * minus as i64
}

/// Forced-portable [`eh3_sign_sum`].
pub fn eh3_sign_sum_chunked(s0: bool, s: u64, keys: &[u64]) -> i64 {
    eh3_sign_sum(Dispatch::chunked(), s0, s, keys)
}

/// `Σᵢ countᵢ·sign(keyᵢ)` for the EH3 seed `(s₀, s)`.
pub fn eh3_sign_dot(d: Dispatch, s0: bool, s: u64, items: &[(u64, i64)]) -> i64 {
    let flip = s0 as u64;
    let mut dot = 0i64;
    let mut chunks = items.chunks_exact(CHUNK);
    for ic in chunks.by_ref() {
        let ks: [u64; CHUNK] = std::array::from_fn(|l| ic[l].0);
        let t = eh3_t8(d, s, &ks);
        for l in 0..CHUNK {
            dot += (1 - 2 * ((t[l] ^ flip) as i64)) * ic[l].1;
        }
    }
    for &(k, count) in chunks.remainder() {
        dot += (1 - 2 * ((eh3_t(s, k) ^ flip) as i64)) * count;
    }
    dot
}

/// Forced-portable [`eh3_sign_dot`].
pub fn eh3_sign_dot_chunked(s0: bool, s: u64, items: &[(u64, i64)]) -> i64 {
    eh3_sign_dot(Dispatch::chunked(), s0, s, items)
}

/// Fill `out[i]` with the EH3 ±1 sign of every key.
///
/// # Panics
///
/// Panics if `keys.len() != out.len()`.
pub fn eh3_sign_batch(d: Dispatch, s0: bool, s: u64, keys: &[u64], out: &mut [i64]) {
    assert_eq!(
        keys.len(),
        out.len(),
        "sign_batch needs one output slot per key"
    );
    let flip = s0 as u64;
    let mut key_chunks = keys.chunks_exact(CHUNK);
    let mut out_chunks = out.chunks_exact_mut(CHUNK);
    for (kc, oc) in key_chunks.by_ref().zip(out_chunks.by_ref()) {
        let ks: &[u64; CHUNK] = kc.try_into().expect("chunks_exact yields full chunks");
        let t = eh3_t8(d, s, ks);
        for (o, v) in oc.iter_mut().zip(t) {
            *o = 1 - 2 * ((v ^ flip) as i64);
        }
    }
    for (o, &k) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(key_chunks.remainder())
    {
        *o = 1 - 2 * ((eh3_t(s, k) ^ flip) as i64);
    }
}

// ---------------------------------------------------------------------------
// Tabulation kernels
// ---------------------------------------------------------------------------

/// Hash 8 keys through the tabulation tables with table-major traversal:
/// the inner 8-lane loop reads one table per step, so the 2 KiB table stays
/// hot in L1 while eight independent XOR chains hide the load latency.
#[inline]
fn tab_hash8(tables: &[[u64; 256]; 8], keys: &[u64; CHUNK]) -> [u64; CHUNK] {
    let mut acc = [0u64; CHUNK];
    for (b, table) in tables.iter().enumerate() {
        for l in 0..CHUNK {
            acc[l] ^= table[((keys[l] >> (8 * b)) & 0xFF) as usize];
        }
    }
    acc
}

/// Scalar tabulation hash, byte-serial; the tail/reference evaluation.
#[inline]
fn tab_hash1(tables: &[[u64; 256]; 8], key: u64) -> u64 {
    let mut acc = 0u64;
    for (b, table) in tables.iter().enumerate() {
        acc ^= table[((key >> (8 * b)) & 0xFF) as usize];
    }
    acc
}

/// `Σᵢ sign(keys[i])` for a tabulation family (sign = low hash bit).
///
/// There is no SIMD path: without AVX2 gather (which loses to L1 loads at
/// these table sizes) the lookups are irreducibly scalar, so the chunked
/// form — which pipelines eight independent lookup chains — is the fast
/// path on every CPU.
pub fn tab_sign_sum(tables: &[[u64; 256]; 8], keys: &[u64]) -> i64 {
    let mut odd = 0u64;
    let mut chunks = keys.chunks_exact(CHUNK);
    for kc in chunks.by_ref() {
        let ks: &[u64; CHUNK] = kc.try_into().expect("chunks_exact yields full chunks");
        let h = tab_hash8(tables, ks);
        for v in h {
            odd += v & 1;
        }
    }
    for &k in chunks.remainder() {
        odd += tab_hash1(tables, k) & 1;
    }
    keys.len() as i64 - 2 * odd as i64
}

/// `Σᵢ countᵢ·sign(keyᵢ)` for a tabulation family.
pub fn tab_sign_dot(tables: &[[u64; 256]; 8], items: &[(u64, i64)]) -> i64 {
    let mut dot = 0i64;
    let mut chunks = items.chunks_exact(CHUNK);
    for ic in chunks.by_ref() {
        let ks: [u64; CHUNK] = std::array::from_fn(|l| ic[l].0);
        let h = tab_hash8(tables, &ks);
        for l in 0..CHUNK {
            dot += (1 - 2 * ((h[l] & 1) as i64)) * ic[l].1;
        }
    }
    for &(k, count) in chunks.remainder() {
        dot += (1 - 2 * ((tab_hash1(tables, k) & 1) as i64)) * count;
    }
    dot
}

/// Fill `out[i]` with the tabulation ±1 sign of every key.
///
/// # Panics
///
/// Panics if `keys.len() != out.len()`.
pub fn tab_sign_batch(tables: &[[u64; 256]; 8], keys: &[u64], out: &mut [i64]) {
    assert_eq!(
        keys.len(),
        out.len(),
        "sign_batch needs one output slot per key"
    );
    let mut key_chunks = keys.chunks_exact(CHUNK);
    let mut out_chunks = out.chunks_exact_mut(CHUNK);
    for (kc, oc) in key_chunks.by_ref().zip(out_chunks.by_ref()) {
        let ks: &[u64; CHUNK] = kc.try_into().expect("chunks_exact yields full chunks");
        let h = tab_hash8(tables, ks);
        for (o, v) in oc.iter_mut().zip(h) {
            *o = 1 - 2 * ((v & 1) as i64);
        }
    }
    for (o, &k) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(key_chunks.remainder())
    {
        *o = 1 - 2 * ((tab_hash1(tables, k) & 1) as i64);
    }
}

/// Fill `out[i] = (hash(keys[i]) >> 1) % width` — the tabulation bucket
/// derivation (bits above the sign bit, plain hardware remainder because
/// the 63-bit shifted hash exceeds [`FixedMod`]'s 2⁶¹ input bound).
///
/// # Panics
///
/// Panics if `keys.len() != out.len()` or `width == 0`.
pub fn tab_bucket_batch(tables: &[[u64; 256]; 8], width: usize, keys: &[u64], out: &mut [usize]) {
    assert_eq!(
        keys.len(),
        out.len(),
        "bucket_batch needs one output slot per key"
    );
    assert!(width > 0, "bucket width must be non-zero");
    let w = width as u64;
    let mut key_chunks = keys.chunks_exact(CHUNK);
    let mut out_chunks = out.chunks_exact_mut(CHUNK);
    for (kc, oc) in key_chunks.by_ref().zip(out_chunks.by_ref()) {
        let ks: &[u64; CHUNK] = kc.try_into().expect("chunks_exact yields full chunks");
        let h = tab_hash8(tables, ks);
        for (o, v) in oc.iter_mut().zip(h) {
            *o = ((v >> 1) % w) as usize;
        }
    }
    for (o, &k) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(key_chunks.remainder())
    {
        *o = ((tab_hash1(tables, k) >> 1) % w) as usize;
    }
}

// ---------------------------------------------------------------------------
// AVX2 path (the single audited unsafe module)
// ---------------------------------------------------------------------------

/// Explicit AVX2 implementations of the hot kernels.
///
/// This is the only module in the workspace that uses `unsafe` (scoped
/// `#[allow]` under the crate-level `#![deny(unsafe_code)]`), and the only
/// unsafety in it is (a) calling `#[target_feature(enable = "avx2")]`
/// functions and (b) unaligned vector load/store through raw pointers.
/// Reachability of (a) is gated by [`Avx2Token`], which can only be
/// constructed after `is_x86_feature_detected!("avx2")` returns true.
///
/// Bit-identity with the scalar field arithmetic is by construction: every
/// 64×64→128 product is reduced with the same two lazy folds as
/// `reduce128_partial` and canonicalized with the same two folds plus
/// conditional subtract as `reduce128`, so each lane computes literally
/// the same u64 sequence as one scalar Horner chain.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
pub(crate) mod avx2 {
    use super::CHUNK;
    use crate::prime::P61;
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_andnot_si256, _mm256_cmpgt_epi64,
        _mm256_loadu_si256, _mm256_mul_epu32, _mm256_or_si256, _mm256_set1_epi64x,
        _mm256_slli_epi64, _mm256_srli_epi64, _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// Proof token that the running CPU supports AVX2.
    ///
    /// The only constructor is [`Avx2Token::probe`], so holding a token is
    /// a compile-time-checkable witness that the `target_feature` calls
    /// below are sound on this machine.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) struct Avx2Token(());

    impl Avx2Token {
        /// `Some` iff the CPU reports AVX2 support.
        pub(crate) fn probe() -> Option<Self> {
            if std::arch::is_x86_feature_detected!("avx2") {
                Some(Self(()))
            } else {
                None
            }
        }
    }

    /// 4-lane partially-reduced modular multiply step of the Horner chain:
    /// returns a value ≡ `acc·x (mod 2⁶¹−1)` that is `< 2⁶²`, given
    /// `acc < 2⁶³` and canonical `x < 2⁶¹` — the same contract (and the
    /// same fold sequence) as the scalar `reduce128_partial(acc·x)`.
    ///
    /// AVX2 has no 64×64 multiply, so the product is assembled from 32-bit
    /// partials: with `a = a_hi·2³² + a_lo` and `x = x_hi·2³² + x_lo`,
    /// `a·x = hh·2⁶⁴ + (lh + hl)·2³² + ll`. The bounds above keep the mid
    /// sum `lh + hl < 2⁶¹ + 2⁶³` from wrapping 64 bits.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (call only while holding an [`Avx2Token`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn mul_reduce_partial(acc: __m256i, x: __m256i) -> __m256i {
        let a_hi = _mm256_srli_epi64(acc, 32);
        let x_hi = _mm256_srli_epi64(x, 32);
        // vpmuludq reads only the low 32 bits of each 64-bit lane, so the
        // low halves need no masking.
        let ll = _mm256_mul_epu32(acc, x);
        let lh = _mm256_mul_epu32(acc, x_hi);
        let hl = _mm256_mul_epu32(a_hi, x);
        let hh = _mm256_mul_epu32(a_hi, x_hi);
        let mid = _mm256_add_epi64(lh, hl);
        // lo64 = ll + (mid << 32); detect the unsigned carry by comparing
        // the sum against an addend (sign-bit flip turns vpcmpgtq into an
        // unsigned compare), then fold it into the high word.
        let lo = _mm256_add_epi64(ll, _mm256_slli_epi64(mid, 32));
        let sign = _mm256_set1_epi64x(i64::MIN);
        let carry = _mm256_srli_epi64(
            _mm256_cmpgt_epi64(_mm256_xor_si256(ll, sign), _mm256_xor_si256(lo, sign)),
            63,
        );
        let hi = _mm256_add_epi64(_mm256_add_epi64(hh, _mm256_srli_epi64(mid, 32)), carry);
        // First fold of t = hi·2⁶⁴ + lo: (t & P61) + (t >> 61), where
        // t >> 61 = (lo >> 61) | (hi << 3) exactly (hi < 2⁶⁰, and the OR
        // operands occupy disjoint bits). Result < 2⁶³ + 2⁶¹ < 2⁶⁴.
        let p61 = _mm256_set1_epi64x(P61 as i64);
        let r = _mm256_add_epi64(
            _mm256_and_si256(lo, p61),
            _mm256_or_si256(_mm256_srli_epi64(lo, 61), _mm256_slli_epi64(hi, 3)),
        );
        // Second fold brings the value under 2⁶², restoring the Horner
        // accumulator invariant.
        _mm256_add_epi64(_mm256_and_si256(r, p61), _mm256_srli_epi64(r, 61))
    }

    /// Canonicalize 4 lanes `< 2⁶³` to `[0, P61)`: the same two folds plus
    /// conditional subtract as the scalar `reduce128` tail.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (call only while holding an [`Avx2Token`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn canonicalize(v: __m256i) -> __m256i {
        let p61 = _mm256_set1_epi64x(P61 as i64);
        let f1 = _mm256_add_epi64(_mm256_and_si256(v, p61), _mm256_srli_epi64(v, 61));
        let f2 = _mm256_add_epi64(_mm256_and_si256(f1, p61), _mm256_srli_epi64(f1, 61));
        // f2 < 2⁶² so a signed compare is an unsigned compare; subtract
        // P61 from every lane where f2 >= P61.
        let lt = _mm256_cmpgt_epi64(p61, f2);
        _mm256_sub_epi64_portable(f2, _mm256_andnot_si256(lt, p61))
    }

    /// `_mm256_sub_epi64` under a name that records why it is here (the
    /// conditional-subtract tail of the canonical reduction).
    ///
    /// # Safety
    ///
    /// Requires AVX2 (call only while holding an [`Avx2Token`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn _mm256_sub_epi64_portable(a: __m256i, b: __m256i) -> __m256i {
        std::arch::x86_64::_mm256_sub_epi64(a, b)
    }

    /// Reduce 4 lanes of arbitrary u64 keys to canonical residues mod
    /// 2⁶¹−1 — the vector twin of the scalar `k % P61` key preparation.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (call only while holding an [`Avx2Token`]).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn keys_mod_p(v: __m256i) -> __m256i {
        canonicalize(v)
    }

    /// One 8-key Horner evaluation across two 4-lane registers.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `keys` must point at 8 readable u64s.
    #[target_feature(enable = "avx2")]
    unsafe fn horner8_impl(coeffs: &[u64], keys: &[u64; CHUNK]) -> [u64; CHUNK] {
        let mut out = [0u64; CHUNK];
        let Some((&last, rest)) = coeffs.split_last() else {
            return out;
        };
        // SAFETY: `keys` is a [u64; 8], so both 32-byte unaligned loads are
        // in bounds; loadu has no alignment requirement.
        let k0 = _mm256_loadu_si256(keys.as_ptr().cast());
        let k1 = _mm256_loadu_si256(keys.as_ptr().add(4).cast());
        let x0 = keys_mod_p(k0);
        let x1 = keys_mod_p(k1);
        let mut a0 = _mm256_set1_epi64x(last as i64);
        let mut a1 = a0;
        for &c in rest.iter().rev() {
            let cv = _mm256_set1_epi64x(c as i64);
            a0 = _mm256_add_epi64(mul_reduce_partial(a0, x0), cv);
            a1 = _mm256_add_epi64(mul_reduce_partial(a1, x1), cv);
        }
        // SAFETY: `out` is a [u64; 8]; both 32-byte unaligned stores are in
        // bounds.
        _mm256_storeu_si256(out.as_mut_ptr().cast(), canonicalize(a0));
        _mm256_storeu_si256(out.as_mut_ptr().add(4).cast(), canonicalize(a1));
        out
    }

    /// Two-polynomial variant sharing the reduced keys.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `keys` must point at 8 readable u64s.
    #[target_feature(enable = "avx2")]
    unsafe fn horner8_pair_impl(
        sc: &[u64],
        bc: &[u64],
        keys: &[u64; CHUNK],
    ) -> ([u64; CHUNK], [u64; CHUNK]) {
        // SAFETY: `keys` is a [u64; 8]; see `horner8_impl`.
        let k0 = _mm256_loadu_si256(keys.as_ptr().cast());
        let k1 = _mm256_loadu_si256(keys.as_ptr().add(4).cast());
        let x0 = keys_mod_p(k0);
        let x1 = keys_mod_p(k1);
        let eval = |coeffs: &[u64]| -> [u64; CHUNK] {
            let mut out = [0u64; CHUNK];
            let Some((&last, rest)) = coeffs.split_last() else {
                return out;
            };
            let mut a0 = _mm256_set1_epi64x(last as i64);
            let mut a1 = a0;
            for &c in rest.iter().rev() {
                let cv = _mm256_set1_epi64x(c as i64);
                a0 = _mm256_add_epi64(mul_reduce_partial(a0, x0), cv);
                a1 = _mm256_add_epi64(mul_reduce_partial(a1, x1), cv);
            }
            // SAFETY: `out` is a [u64; 8]; see `horner8_impl`.
            _mm256_storeu_si256(out.as_mut_ptr().cast(), canonicalize(a0));
            _mm256_storeu_si256(out.as_mut_ptr().add(4).cast(), canonicalize(a1));
            out
        };
        (eval(sc), eval(bc))
    }

    /// EH3 `t(k)` bits for 8 keys: mask, XOR-fuse the linear and quadratic
    /// parts, then a log-fold parity (baseline x86-64 has no vector
    /// popcount; parity only needs the XOR of all bits, which six
    /// shift-XOR steps deliver per lane).
    ///
    /// # Safety
    ///
    /// Requires AVX2; `keys` must point at 8 readable u64s.
    #[target_feature(enable = "avx2")]
    unsafe fn eh3_t8_impl(s: u64, keys: &[u64; CHUNK]) -> [u64; CHUNK] {
        let sv = _mm256_set1_epi64x(s as i64);
        let even = _mm256_set1_epi64x(super::EVEN_BITS as i64);
        let one = _mm256_set1_epi64x(1);
        let mut out = [0u64; CHUNK];
        for half in 0..2 {
            // SAFETY: `keys`/`out` are [u64; 8]; each half touches 4 lanes.
            let k = _mm256_loadu_si256(keys.as_ptr().add(4 * half).cast());
            let quad = _mm256_and_si256(_mm256_and_si256(k, _mm256_srli_epi64(k, 1)), even);
            let mut m = _mm256_xor_si256(_mm256_and_si256(sv, k), quad);
            // Parity via xor-fold: after folding the top half into the
            // bottom six times, bit 0 holds the XOR of all 64 bits.
            m = _mm256_xor_si256(m, _mm256_srli_epi64(m, 32));
            m = _mm256_xor_si256(m, _mm256_srli_epi64(m, 16));
            m = _mm256_xor_si256(m, _mm256_srli_epi64(m, 8));
            m = _mm256_xor_si256(m, _mm256_srli_epi64(m, 4));
            m = _mm256_xor_si256(m, _mm256_srli_epi64(m, 2));
            m = _mm256_xor_si256(m, _mm256_srli_epi64(m, 1));
            _mm256_storeu_si256(
                out.as_mut_ptr().add(4 * half).cast(),
                _mm256_and_si256(m, one),
            );
        }
        out
    }

    /// Safe-to-call wrapper: the token witnesses AVX2 support.
    #[inline]
    pub(crate) fn horner8(_token: Avx2Token, coeffs: &[u64], keys: &[u64; CHUNK]) -> [u64; CHUNK] {
        // SAFETY: an Avx2Token exists only if is_x86_feature_detected!
        // ("avx2") returned true, so the target-feature call is sound, and
        // the references satisfy the pointer contracts above.
        unsafe { horner8_impl(coeffs, keys) }
    }

    /// Safe-to-call wrapper: the token witnesses AVX2 support.
    #[inline]
    pub(crate) fn horner8_pair(
        _token: Avx2Token,
        sc: &[u64],
        bc: &[u64],
        keys: &[u64; CHUNK],
    ) -> ([u64; CHUNK], [u64; CHUNK]) {
        // SAFETY: as in `horner8`.
        unsafe { horner8_pair_impl(sc, bc, keys) }
    }

    /// Safe-to-call wrapper: the token witnesses AVX2 support.
    #[inline]
    pub(crate) fn eh3_t8(_token: Avx2Token, s: u64, keys: &[u64; CHUNK]) -> [u64; CHUNK] {
        // SAFETY: as in `horner8`.
        unsafe { eh3_t8_impl(s, keys) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::poly_eval;

    fn test_keys() -> Vec<u64> {
        (0..203u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .chain([0, 1, P61 - 1, P61, P61 + 1, u64::MAX])
            .collect()
    }

    fn test_items(keys: &[u64]) -> Vec<(u64, i64)> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| (k, (i as i64 % 9) - 4))
            .collect()
    }

    /// Every dispatchable path must agree with the scalar per-key
    /// reference on every tail length, for both CW degrees.
    #[test]
    fn cw_kernels_match_scalar_reference() {
        let coeff_sets: [&[u64]; 3] = [
            &[12345, 67890],
            &[7, 0, P61 - 1, 1 << 60],
            &[u64::MAX, P61 + 3, 1 << 62],
        ];
        let keys = test_keys();
        let items = test_items(&keys);
        let paths = [Dispatch::chunked(), Dispatch::get()];
        for coeffs in coeff_sets {
            for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, keys.len()] {
                let want_sum: i64 = keys[..len]
                    .iter()
                    .map(|&k| 1 - 2 * ((poly_eval(coeffs, k) & 1) as i64))
                    .sum();
                let want_dot: i64 = items[..len]
                    .iter()
                    .map(|&(k, c)| (1 - 2 * ((poly_eval(coeffs, k) & 1) as i64)) * c)
                    .sum();
                for d in paths {
                    assert_eq!(sign_sum(d, coeffs, &keys[..len]), want_sum, "len {len}");
                    assert_eq!(sign_dot(d, coeffs, &items[..len]), want_dot, "len {len}");
                    let mut out = vec![0i64; len];
                    sign_batch(d, coeffs, &keys[..len], &mut out);
                    for (i, &s) in out.iter().enumerate() {
                        assert_eq!(s, 1 - 2 * ((poly_eval(coeffs, keys[i]) & 1) as i64));
                    }
                }
            }
        }
    }

    #[test]
    fn scatter_kernels_match_scalar_reference() {
        let sc: &[u64] = &[3, 5, 7, 11];
        let bc: &[u64] = &[12345, 67890];
        let keys = test_keys();
        let items = test_items(&keys);
        for d in [Dispatch::chunked(), Dispatch::get()] {
            for width in [1usize, 3, 300, 5000] {
                for len in [0usize, 5, 8, 9, keys.len()] {
                    let mut want = vec![0i64; width];
                    for &k in &keys[..len] {
                        let s = 1 - 2 * ((poly_eval(sc, k) & 1) as i64);
                        want[(poly_eval(bc, k) % width as u64) as usize] += s;
                    }
                    let mut got = vec![0i64; width];
                    signed_scatter(d, sc, bc, width, &keys[..len], &mut got);
                    assert_eq!(got, want, "signed width {width} len {len}");

                    let mut want = vec![0i64; width];
                    for &(k, c) in &items[..len] {
                        let s = 1 - 2 * ((poly_eval(sc, k) & 1) as i64);
                        want[(poly_eval(bc, k) % width as u64) as usize] += s * c;
                    }
                    let mut got = vec![0i64; width];
                    signed_scatter_counts(d, sc, bc, width, &items[..len], &mut got);
                    assert_eq!(got, want, "signed counts width {width} len {len}");

                    let mut want = vec![0i64; width];
                    for &k in &keys[..len] {
                        want[(poly_eval(bc, k) % width as u64) as usize] += 1;
                    }
                    let mut got = vec![0i64; width];
                    bucket_scatter(d, bc, width, &keys[..len], &mut got);
                    assert_eq!(got, want, "bucket width {width} len {len}");

                    let mut want = vec![0i64; width];
                    for &(k, c) in &items[..len] {
                        want[(poly_eval(bc, k) % width as u64) as usize] += c;
                    }
                    let mut got = vec![0i64; width];
                    bucket_scatter_counts(d, bc, width, &items[..len], &mut got);
                    assert_eq!(got, want, "bucket counts width {width} len {len}");
                }
            }
        }
    }

    /// The fused single-popcount `t(k)` must equal the two-popcount
    /// definition `⟨s,k⟩ ⊕ q(k)` bit for bit.
    #[test]
    fn eh3_fused_parity_matches_definition() {
        let seeds = [0u64, 1, 0b1010, 0xDEAD_BEEF_CAFE_F00D, u64::MAX];
        for &s in &seeds {
            for &k in &test_keys() {
                let linear = (s & k).count_ones() as u64 & 1;
                let quad = (k & (k >> 1) & EVEN_BITS).count_ones() as u64 & 1;
                assert_eq!(eh3_t(s, k), linear ^ quad, "s={s:#x} k={k:#x}");
            }
        }
    }

    #[test]
    fn eh3_kernels_match_scalar_reference() {
        let keys = test_keys();
        let items = test_items(&keys);
        let seeds = [(false, 0u64), (true, 0b11), (false, u64::MAX), (true, 42)];
        for d in [Dispatch::chunked(), Dispatch::get()] {
            for &(s0, s) in &seeds {
                let f = crate::Eh3::from_seed(s0, s);
                use crate::SignFamily;
                for len in [0usize, 1, 7, 8, 9, 16, 17, keys.len()] {
                    let want_sum: i64 = keys[..len].iter().map(|&k| f.sign(k)).sum();
                    assert_eq!(eh3_sign_sum(d, s0, s, &keys[..len]), want_sum, "len {len}");
                    let want_dot: i64 = items[..len].iter().map(|&(k, c)| c * f.sign(k)).sum();
                    assert_eq!(eh3_sign_dot(d, s0, s, &items[..len]), want_dot, "len {len}");
                    let mut out = vec![0i64; len];
                    eh3_sign_batch(d, s0, s, &keys[..len], &mut out);
                    for (i, &v) in out.iter().enumerate() {
                        assert_eq!(v, f.sign(keys[i]), "len {len} index {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn tab_kernels_match_scalar_reference() {
        use crate::{BucketFamily, SignFamily, Tabulation};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1234);
        let t = <Tabulation as SignFamily>::random(&mut rng);
        let keys = test_keys();
        let items = test_items(&keys);
        for len in [0usize, 1, 7, 8, 9, keys.len()] {
            let want_sum: i64 = keys[..len].iter().map(|&k| t.sign(k)).sum();
            assert_eq!(tab_sign_sum(&t.tables, &keys[..len]), want_sum, "len {len}");
            let want_dot: i64 = items[..len].iter().map(|&(k, c)| c * t.sign(k)).sum();
            assert_eq!(tab_sign_dot(&t.tables, &items[..len]), want_dot);
            let mut out = vec![0i64; len];
            tab_sign_batch(&t.tables, &keys[..len], &mut out);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, t.sign(keys[i]));
            }
            for width in [1usize, 3, 5000] {
                let mut out = vec![0usize; len];
                tab_bucket_batch(&t.tables, width, &keys[..len], &mut out);
                for (i, &b) in out.iter().enumerate() {
                    assert_eq!(b, t.bucket(keys[i], width), "width {width}");
                }
            }
        }
    }

    /// Degree > 7 polynomials take the scalar fallback and must still
    /// agree with direct evaluation.
    #[test]
    fn kernels_fall_back_beyond_coefficient_budget() {
        let coeffs: Vec<u64> = (1..=12u64).collect();
        let keys: Vec<u64> = (0..37u64).map(|i| i * 997).collect();
        let want: i64 = keys
            .iter()
            .map(|&k| 1 - 2 * ((poly_eval(&coeffs, k) & 1) as i64))
            .sum();
        for d in [Dispatch::chunked(), Dispatch::get()] {
            assert_eq!(sign_sum(d, &coeffs, &keys), want);
        }
    }

    #[test]
    fn dispatch_is_memoized_and_labelled() {
        let a = Dispatch::get();
        let b = Dispatch::get();
        assert_eq!(a, b);
        assert!(["chunked", "avx2"].contains(&a.label()));
        assert_eq!(Dispatch::chunked().label(), "chunked");
        assert!(!Dispatch::chunked().is_accelerated());
    }
}
