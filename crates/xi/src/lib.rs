//! # sss-xi — pseudo-random variable families for sketch-based estimation
//!
//! AGMS-style sketches summarize a relation as `S = Σᵢ fᵢ·ξᵢ`, where `ξ` is a
//! family of {+1, −1} random variables indexed by the (huge) key domain. The
//! estimator analysis only requires *limited* independence from the family:
//!
//! * **4-wise independence** suffices for the variance bounds of the AGMS
//!   size-of-join and self-join estimators (Alon, Matias & Szegedy, STOC'96).
//! * **2-wise (pairwise) independence** suffices for the bucket hashes used
//!   by F-AGMS (Count-Sketch) and Count-Min.
//!
//! This crate provides the generator constructions studied in Rusu & Dobra,
//! *"Pseudo-random number generation for sketch-based estimations"* (TODS
//! 2007), which is the substrate used by the experimental testbed of
//! *"Sketching Sampled Data Streams"* (ICDE 2009):
//!
//! | Type | Construction | Independence |
//! |---|---|---|
//! | [`Cw2`] | linear polynomial over GF(2⁶¹−1) | 2-wise |
//! | [`Cw4`] | cubic polynomial over GF(2⁶¹−1) | 4-wise |
//! | [`Bch3`] | dual extended-Hamming parity (`s₀ ⊕ ⟨s₁, i⟩`) | 3-wise |
//! | [`Eh3`] | extended Hamming code parity + quadratic form | 3-wise, **range-summable** |
//! | [`Bch5`] | dual BCH code parity (`s₀ ⊕ s₁·i ⊕ s₂·i³` over GF(2⁶⁴)) | 5-wise |
//! | [`Tabulation`] | simple tabulation hashing | 3-wise (≈4-wise behaviour) |
//!
//! Every family is cheap to seed (a few machine words), deterministic given
//! its seed, and generates each `ξᵢ` *on demand* from the key — the defining
//! property that lets sketches summarize domains of size 2⁶⁴ in a handful of
//! counters.
//!
//! ## Example
//!
//! ```
//! use sss_xi::{Cw4, SignFamily};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let xi = Cw4::random(&mut rng);
//! let s: i64 = (0u64..1000).map(|key| xi.sign(key)).sum();
//! // A balanced family keeps the sum near zero.
//! assert!(s.abs() < 250);
//! ```

// `deny` instead of `forbid`: the one audited AVX2 module in `kernels`
// carries a scoped `#[allow(unsafe_code)]` (compiled only under the `simd`
// feature); everything else in the crate remains statically unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bch;
pub mod cw;
pub mod eh3;
pub mod family;
pub mod gf2;
pub mod kernels;
pub mod prime;
pub mod tabulation;

pub use bch::{Bch3, Bch5};
pub use cw::{
    bucket_scatter, bucket_scatter_counts, signed_scatter, signed_scatter_counts, Cw2, Cw2Bucket,
    Cw4,
};
pub use eh3::Eh3;
pub use family::{BucketFamily, FourWise, RangeSummable, SignFamily};
pub use kernels::Dispatch;
pub use tabulation::Tabulation;

/// The default 4-wise-independent sign family used throughout the workspace.
///
/// CW4 is the only construction here with a *proven* 4-wise guarantee and a
/// branch-free evaluation, which makes it the safe default; swap in [`Eh3`]
/// or [`Bch5`] when update speed matters more than the formal guarantee (see
/// the `xi_families` Criterion bench for the trade-off on your machine).
pub type DefaultSign = Cw4;

/// The default pairwise-independent bucket hash used by F-AGMS and Count-Min.
pub type DefaultBucket = Cw2Bucket;
