//! Arithmetic in the prime field GF(p) with p = 2⁶¹ − 1 (a Mersenne prime).
//!
//! Carter–Wegman polynomial hashing needs fast modular multiplication over a
//! prime larger than the key domain slice it consumes. The Mersenne prime
//! 2⁶¹ − 1 admits a branch-light reduction: for any x < 2¹²², write
//! `x = hi·2⁶¹ + lo`; then `x ≡ hi + lo (mod p)`.

/// The Mersenne prime 2⁶¹ − 1.
pub const P61: u64 = (1 << 61) - 1;

/// Reduce a 128-bit value modulo 2⁶¹ − 1.
///
/// The result is in `[0, P61)`.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    // x = hi·2^61 + lo  ⇒  x ≡ hi + lo (mod p). After the first fold the
    // value fits in 68 bits (hi < 2^67), after the second in 62 bits, so a
    // single conditional subtraction finishes the reduction.
    let mut x = (x & P61 as u128) + (x >> 61);
    x = (x & P61 as u128) + (x >> 61);
    let mut s = x as u64;
    if s >= P61 {
        s -= P61;
    }
    s
}

/// Multiply two field elements modulo 2⁶¹ − 1.
///
/// Inputs need not be reduced, but must be < 2⁶⁴; the result is in `[0, P61)`.
#[inline]
pub fn mul_mod(a: u64, b: u64) -> u64 {
    reduce128(a as u128 * b as u128)
}

/// Add two reduced field elements modulo 2⁶¹ − 1.
#[inline]
pub fn add_mod(a: u64, b: u64) -> u64 {
    let mut s = a + b; // a,b < 2^61 so no overflow
    if s >= P61 {
        s -= P61;
    }
    s
}

/// Evaluate the polynomial `c[0] + c[1]·x + … + c[d]·xᵈ` over GF(2⁶¹−1)
/// using Horner's rule.
#[inline]
pub fn poly_eval(coeffs: &[u64], x: u64) -> u64 {
    let x = x % P61;
    let mut acc = 0u64;
    for &c in coeffs.iter().rev() {
        acc = add_mod(mul_mod(acc, x), c % P61);
    }
    acc
}

/// Number of Horner chains evaluated in parallel by [`poly_eval_batch`].
///
/// Each chain is a serial multiply→reduce dependency, so a single key
/// cannot saturate the multiplier; four independent chains keep it busy
/// while staying within the register budget on x86-64 and aarch64.
pub const POLY_LANES: usize = 4;

/// Reduce a 128-bit value modulo 2⁶¹ − 1 *partially*: two folds, no final
/// conditional subtraction. The result is < 2⁶² and congruent to `x`.
///
/// This is the lazy-reduction half of the batched Horner kernel: an
/// accumulator only needs to stay small enough for the next 64×64→128
/// multiply, so the canonicalizing subtract (a compare + branch/cmov per
/// step) can be deferred to the very end of the evaluation.
#[inline]
fn reduce128_partial(x: u128) -> u64 {
    let x = (x & P61 as u128) + (x >> 61);
    ((x & P61 as u128) + (x >> 61)) as u64
}

/// Evaluate one polynomial at `LANES` points with interleaved Horner chains
/// and lazy reduction. Both `coeffs` and the evaluation points `xs` must
/// already be reduced modulo 2⁶¹−1; the results are canonical.
///
/// The accumulators start at the leading coefficient instead of zero —
/// the generic Horner loop's first `0·x` multiply is dead work that the
/// optimizer cannot remove when the coefficient count is only known at run
/// time. Invariant: each accumulator stays below 2⁶² + 2⁶¹ < 2⁶³ (partial
/// reduction < 2⁶² plus one reduced coefficient < 2⁶¹), so the next
/// `acc·x` product fits comfortably in 128 bits.
#[inline]
pub(crate) fn horner_lanes_reduced<const LANES: usize>(
    coeffs: &[u64],
    xs: &[u64; LANES],
) -> [u64; LANES] {
    let Some((&last, rest)) = coeffs.split_last() else {
        return [0u64; LANES];
    };
    let mut acc = [last; LANES];
    for &c in rest.iter().rev() {
        for lane in 0..LANES {
            acc[lane] = reduce128_partial(acc[lane] as u128 * xs[lane] as u128) + c;
        }
    }
    acc.map(|a| reduce128(a as u128))
}

/// Branchless exact remainder `h % d` for hash values `h < 2⁶¹`, using the
/// round-up magic-number method for division by an invariant integer
/// (Granlund & Montgomery): with `m = ⌈2ᵇ/d⌉` and `b = 61 + ⌈log₂ d⌉`,
/// the quotient `⌊h/d⌋` equals `(h·m) >> b` exactly for every `h < 2⁶¹`,
/// because the magic's excess `e = m·d − 2ᵇ < d` contributes an error
/// `e·h/(d·2ᵇ) < d·2⁶¹/(d·2ᵇ) ≤ 1/d`, too small to push the product over
/// the next integer. One 64×64→128 multiply and a shift replace the
/// hardware divide in the bucket-hash hot loop.
#[derive(Debug, Clone, Copy)]
pub struct FixedMod {
    magic: u64,
    shift: u32,
    d: u64,
}

impl FixedMod {
    /// Prepare the magic constants for divisor `d ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "modulus must be non-zero");
        let ceil_log2 = 64 - (d - 1).leading_zeros();
        let shift = 61 + ceil_log2;
        // m = ceil(2^shift / d) < 2^62 + 1, so it always fits in a u64.
        let magic = (1u128 << shift).div_ceil(d as u128) as u64;
        Self { magic, shift, d }
    }

    /// Exact `h % d`. Requires `h < 2⁶¹` (every canonical GF(2⁶¹−1) value
    /// qualifies).
    #[inline]
    pub fn rem(&self, h: u64) -> u64 {
        debug_assert!(h < (1 << 61), "FixedMod::rem requires h < 2^61");
        let q = ((h as u128 * self.magic as u128) >> self.shift) as u64;
        h - q * self.d
    }
}

/// Evaluate the polynomial `c[0] + c[1]·x + … + c[d]·xᵈ` at every key of a
/// batch, writing `out[i] = poly_eval(coeffs, keys[i])` bit for bit.
///
/// Compared to calling [`poly_eval`] per key this amortizes the coefficient
/// reduction (`c % P61` once per batch instead of once per key), defers the
/// canonicalizing subtraction to the end of each Horner chain, and runs
/// [`POLY_LANES`] independent chains so the serial multiply latency of one
/// key overlaps with the others.
///
/// # Panics
///
/// Panics if `keys.len() != out.len()`.
pub fn poly_eval_batch(coeffs: &[u64], keys: &[u64], out: &mut [u64]) {
    assert_eq!(
        keys.len(),
        out.len(),
        "poly_eval_batch needs one output slot per key"
    );
    // Reduce the coefficients once for the whole batch. Degrees above 7
    // never occur in this workspace (CW4 is cubic), but fall back to the
    // scalar path rather than allocate.
    let mut reduced = [0u64; 8];
    if coeffs.len() > reduced.len() {
        for (o, &k) in out.iter_mut().zip(keys) {
            *o = poly_eval(coeffs, k);
        }
        return;
    }
    for (r, &c) in reduced.iter_mut().zip(coeffs) {
        *r = c % P61;
    }
    let reduced = &reduced[..coeffs.len()];

    let mut key_chunks = keys.chunks_exact(POLY_LANES);
    let mut out_chunks = out.chunks_exact_mut(POLY_LANES);
    for (kc, oc) in key_chunks.by_ref().zip(out_chunks.by_ref()) {
        let lanes: &[u64; POLY_LANES] = kc.try_into().expect("chunks_exact yields full chunks");
        let xs = lanes.map(|k| k % P61);
        oc.copy_from_slice(&horner_lanes_reduced(reduced, &xs));
    }
    for (o, &k) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(key_chunks.remainder())
    {
        *o = poly_eval(reduced, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_matches_naive_modulo() {
        let cases: [u128; 8] = [
            0,
            1,
            P61 as u128,
            P61 as u128 + 1,
            u64::MAX as u128,
            u128::MAX,
            (P61 as u128) * (P61 as u128),
            123_456_789_012_345_678_901_234_567u128,
        ];
        for &x in &cases {
            assert_eq!(reduce128(x) as u128, x % P61 as u128, "x = {x}");
        }
    }

    #[test]
    fn mul_matches_wide_multiplication() {
        let pairs = [
            (0u64, 0u64),
            (1, P61 - 1),
            (P61 - 1, P61 - 1),
            (u64::MAX, u64::MAX),
            (0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321),
        ];
        for &(a, b) in &pairs {
            let expect = ((a as u128 * b as u128) % P61 as u128) as u64;
            assert_eq!(mul_mod(a, b), expect, "a={a} b={b}");
        }
    }

    #[test]
    fn add_wraps_at_p() {
        assert_eq!(add_mod(P61 - 1, 1), 0);
        assert_eq!(add_mod(P61 - 1, 2), 1);
        assert_eq!(add_mod(5, 7), 12);
    }

    #[test]
    fn horner_matches_direct_evaluation() {
        // c(x) = 3 + 5x + 7x^2 + 11x^3 at x = 1e9
        let coeffs = [3u64, 5, 7, 11];
        let x = 1_000_000_000u64;
        let direct = {
            let x = x as u128;
            let p = P61 as u128;
            ((3 + 5 * x % p + 7 * (x * x % p) % p + 11 * (x * x % p * x % p) % p) % p) as u64
        };
        assert_eq!(poly_eval(&coeffs, x), direct);
    }

    #[test]
    fn batch_is_bit_identical_to_scalar() {
        // Exercise every chunk-remainder split and unreduced keys.
        let coeffs = [7u64, 0, P61 - 1, 1 << 60];
        let keys: Vec<u64> = (0..23u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .chain([0, 1, P61 - 1, P61, P61 + 1, u64::MAX])
            .collect();
        for len in 0..keys.len() {
            let mut out = vec![0u64; len];
            poly_eval_batch(&coeffs, &keys[..len], &mut out);
            for (i, &o) in out.iter().enumerate() {
                assert_eq!(o, poly_eval(&coeffs, keys[i]), "len {len}, index {i}");
            }
        }
    }

    #[test]
    fn batch_handles_unreduced_coefficients() {
        let coeffs = [u64::MAX, P61 + 3, 1 << 62];
        let keys = [5u64, 1 << 61, u64::MAX];
        let mut out = [0u64; 3];
        poly_eval_batch(&coeffs, &keys, &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, poly_eval(&coeffs, keys[i]));
        }
    }

    #[test]
    fn batch_falls_back_beyond_lane_budget() {
        // Degree > 7 takes the scalar fallback; results must still match.
        let coeffs: Vec<u64> = (1..=12u64).collect();
        let keys: Vec<u64> = (0..9u64).map(|i| i * 997).collect();
        let mut out = vec![0u64; keys.len()];
        poly_eval_batch(&coeffs, &keys, &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, poly_eval(&coeffs, keys[i]));
        }
    }

    #[test]
    #[should_panic(expected = "one output slot per key")]
    fn batch_rejects_mismatched_lengths() {
        let mut out = [0u64; 2];
        poly_eval_batch(&[1, 2], &[1, 2, 3], &mut out);
    }

    #[test]
    fn fixed_mod_is_exact_across_divisors() {
        // Awkward divisors: 1, powers of two ±1, the bench widths, large.
        let divisors = [
            1u64,
            2,
            3,
            5,
            7,
            255,
            256,
            257,
            512,
            1000,
            5000,
            10_000,
            (1 << 32) - 1,
            1 << 40,
            (1 << 61) - 2,
        ];
        let hashes = [
            0u64,
            1,
            2,
            12345,
            123_456_789_012,
            P61 / 2,
            P61 - 2,
            P61 - 1,
        ];
        for &d in &divisors {
            let m = FixedMod::new(d);
            for &h in &hashes {
                assert_eq!(m.rem(h), h % d, "d = {d}, h = {h}");
            }
            // Values adjacent to multiples of d, where a magic-number
            // off-by-one would surface.
            for q in [1u64, 2, 1000] {
                if let Some(base) = d.checked_mul(q) {
                    if base < P61 {
                        assert_eq!(m.rem(base - 1), (base - 1) % d, "d = {d}");
                        assert_eq!(m.rem(base), 0, "d = {d}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "modulus must be non-zero")]
    fn fixed_mod_rejects_zero() {
        let _ = FixedMod::new(0);
    }

    #[test]
    fn poly_eval_reduces_unreduced_inputs() {
        // x >= P61 must behave as x mod P61.
        let coeffs = [17u64, 23, 29, 31];
        assert_eq!(poly_eval(&coeffs, P61 + 5), poly_eval(&coeffs, 5));
        assert_eq!(
            poly_eval(&coeffs, u64::MAX),
            poly_eval(&coeffs, u64::MAX % P61)
        );
    }
}
