//! Arithmetic in the prime field GF(p) with p = 2⁶¹ − 1 (a Mersenne prime).
//!
//! Carter–Wegman polynomial hashing needs fast modular multiplication over a
//! prime larger than the key domain slice it consumes. The Mersenne prime
//! 2⁶¹ − 1 admits a branch-light reduction: for any x < 2¹²², write
//! `x = hi·2⁶¹ + lo`; then `x ≡ hi + lo (mod p)`.

/// The Mersenne prime 2⁶¹ − 1.
pub const P61: u64 = (1 << 61) - 1;

/// Reduce a 128-bit value modulo 2⁶¹ − 1.
///
/// The result is in `[0, P61)`.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    // x = hi·2^61 + lo  ⇒  x ≡ hi + lo (mod p). After the first fold the
    // value fits in 68 bits (hi < 2^67), after the second in 62 bits, so a
    // single conditional subtraction finishes the reduction.
    let mut x = (x & P61 as u128) + (x >> 61);
    x = (x & P61 as u128) + (x >> 61);
    let mut s = x as u64;
    if s >= P61 {
        s -= P61;
    }
    s
}

/// Multiply two field elements modulo 2⁶¹ − 1.
///
/// Inputs need not be reduced, but must be < 2⁶⁴; the result is in `[0, P61)`.
#[inline]
pub fn mul_mod(a: u64, b: u64) -> u64 {
    reduce128(a as u128 * b as u128)
}

/// Add two reduced field elements modulo 2⁶¹ − 1.
#[inline]
pub fn add_mod(a: u64, b: u64) -> u64 {
    let mut s = a + b; // a,b < 2^61 so no overflow
    if s >= P61 {
        s -= P61;
    }
    s
}

/// Evaluate the polynomial `c[0] + c[1]·x + … + c[d]·xᵈ` over GF(2⁶¹−1)
/// using Horner's rule.
#[inline]
pub fn poly_eval(coeffs: &[u64], x: u64) -> u64 {
    let x = x % P61;
    let mut acc = 0u64;
    for &c in coeffs.iter().rev() {
        acc = add_mod(mul_mod(acc, x), c % P61);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_matches_naive_modulo() {
        let cases: [u128; 8] = [
            0,
            1,
            P61 as u128,
            P61 as u128 + 1,
            u64::MAX as u128,
            u128::MAX,
            (P61 as u128) * (P61 as u128),
            123_456_789_012_345_678_901_234_567u128,
        ];
        for &x in &cases {
            assert_eq!(reduce128(x) as u128, x % P61 as u128, "x = {x}");
        }
    }

    #[test]
    fn mul_matches_wide_multiplication() {
        let pairs = [
            (0u64, 0u64),
            (1, P61 - 1),
            (P61 - 1, P61 - 1),
            (u64::MAX, u64::MAX),
            (0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321),
        ];
        for &(a, b) in &pairs {
            let expect = ((a as u128 * b as u128) % P61 as u128) as u64;
            assert_eq!(mul_mod(a, b), expect, "a={a} b={b}");
        }
    }

    #[test]
    fn add_wraps_at_p() {
        assert_eq!(add_mod(P61 - 1, 1), 0);
        assert_eq!(add_mod(P61 - 1, 2), 1);
        assert_eq!(add_mod(5, 7), 12);
    }

    #[test]
    fn horner_matches_direct_evaluation() {
        // c(x) = 3 + 5x + 7x^2 + 11x^3 at x = 1e9
        let coeffs = [3u64, 5, 7, 11];
        let x = 1_000_000_000u64;
        let direct = {
            let x = x as u128;
            let p = P61 as u128;
            ((3 + 5 * x % p + 7 * (x * x % p) % p + 11 * (x * x % p * x % p) % p) % p) as u64
        };
        assert_eq!(poly_eval(&coeffs, x), direct);
    }

    #[test]
    fn poly_eval_reduces_unreduced_inputs() {
        // x >= P61 must behave as x mod P61.
        let coeffs = [17u64, 23, 29, 31];
        assert_eq!(poly_eval(&coeffs, P61 + 5), poly_eval(&coeffs, 5));
        assert_eq!(
            poly_eval(&coeffs, u64::MAX),
            poly_eval(&coeffs, u64::MAX % P61)
        );
    }
}
