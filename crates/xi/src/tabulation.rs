//! Simple tabulation hashing.
//!
//! The key is split into 8 bytes; each byte indexes a table of 256 random
//! 64-bit words, and the 8 looked-up words are XORed. Simple tabulation is
//! provably 3-wise independent, and Pǎtraşcu & Thorup showed it behaves like
//! a fully random function for many algorithms (Chernoff-style concentration,
//! linear probing, Count-Sketch/F-AGMS estimation). It trades seed size
//! (16 KiB of tables) for evaluation speed: eight L1 loads and XORs, no
//! multiplications.
//!
//! The same hash value supplies both the ±1 variable (low bit) and the
//! bucket index (remaining bits), so a tabulation-based F-AGMS row needs one
//! table evaluation per update.

use crate::family::{BucketFamily, SignFamily};
use crate::kernels;
use rand::Rng;

/// Simple tabulation hash over 8 key bytes; see the module docs.
#[derive(Debug, Clone)]
pub struct Tabulation {
    pub(crate) tables: Box<[[u64; 256]; 8]>,
}

impl Tabulation {
    /// The eight per-byte lookup tables — exposed so benches and identity
    /// tests can drive the [`crate::kernels`] tabulation entry points
    /// directly.
    pub fn tables(&self) -> &[[u64; 256]; 8] {
        &self.tables
    }

    /// The full 64-bit hash value.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        let bytes = key.to_le_bytes();
        let mut acc = 0u64;
        for (table, &byte) in self.tables.iter().zip(bytes.iter()) {
            acc ^= table[byte as usize];
        }
        acc
    }
}

impl SignFamily for Tabulation {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        1 - 2 * ((self.hash(key) & 1) as i64)
    }

    fn sign_batch(&self, keys: &[u64], out: &mut [i64]) {
        kernels::tab_sign_batch(&self.tables, keys, out);
    }

    fn sign_sum(&self, keys: &[u64]) -> i64 {
        kernels::tab_sign_sum(&self.tables, keys)
    }

    fn sign_dot(&self, items: &[(u64, i64)]) -> i64 {
        kernels::tab_sign_dot(&self.tables, items)
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut tables = Box::new([[0u64; 256]; 8]);
        for table in tables.iter_mut() {
            for slot in table.iter_mut() {
                *slot = rng.random::<u64>();
            }
        }
        Self { tables }
    }
}

// Manual serde impls: serde does not derive for `[[u64; 256]; 8]`, so the
// tables travel as one flat 2048-word sequence.
impl serde::Serialize for Tabulation {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeSeq;
        let mut seq = serializer.serialize_seq(Some(8 * 256))?;
        for table in self.tables.iter() {
            for word in table {
                seq.serialize_element(word)?;
            }
        }
        seq.end()
    }
}

impl<'de> serde::Deserialize<'de> for Tabulation {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let flat: Vec<u64> = serde::Deserialize::deserialize(deserializer)?;
        if flat.len() != 8 * 256 {
            return Err(serde::de::Error::invalid_length(
                flat.len(),
                &"exactly 2048 table words (8 tables × 256 entries)",
            ));
        }
        let mut tables = Box::new([[0u64; 256]; 8]);
        for (i, chunk) in flat.chunks_exact(256).enumerate() {
            tables[i].copy_from_slice(chunk);
        }
        Ok(Self { tables })
    }
}

impl BucketFamily for Tabulation {
    /// Bucket index from the hash bits above the sign bit, so one evaluation
    /// can serve both roles without correlating them beyond pairwise.
    #[inline]
    fn bucket(&self, key: u64, width: usize) -> usize {
        debug_assert!(width > 0, "bucket width must be non-zero");
        ((self.hash(key) >> 1) % width as u64) as usize
    }

    fn bucket_batch(&self, keys: &[u64], width: usize, out: &mut [usize]) {
        kernels::tab_bucket_batch(&self.tables, width, keys, out);
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        <Self as SignFamily>::random(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hash_is_xor_of_byte_tables() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = <Tabulation as SignFamily>::random(&mut rng);
        let key: u64 = 0x0102_0304_0506_0708;
        let bytes = key.to_le_bytes();
        let expect = (0..8).fold(0u64, |acc, i| acc ^ t.tables[i][bytes[i] as usize]);
        assert_eq!(t.hash(key), expect);
    }

    #[test]
    fn single_byte_keys_read_single_table() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = <Tabulation as SignFamily>::random(&mut rng);
        // key = 0xAB uses table[0][0xAB] ^ table[1..8][0]
        let base: u64 = (1..8).fold(t.tables[0][0xAB], |acc, i| acc ^ t.tables[i][0]);
        assert_eq!(t.hash(0xAB), base);
    }

    #[test]
    fn signs_are_balanced_over_a_window() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = <Tabulation as SignFamily>::random(&mut rng);
        let sum: i64 = (0..100_000u64).map(|k| t.sign(k)).sum();
        // std ≈ sqrt(n) ≈ 316; allow 5 sigma.
        assert!(sum.abs() < 1600, "sum = {sum}");
    }

    #[test]
    fn buckets_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = <Tabulation as SignFamily>::random(&mut rng);
        let width = 64;
        let mut seen = vec![false; width];
        for key in 0..10_000u64 {
            seen[t.bucket(key, width)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some buckets never hit");
    }
}
