//! Ablation: what the 4-wise guarantee actually buys.
//!
//! The AGMS self-join estimator `X = S²` is unbiased under *pairwise*
//! independence, but its variance formula `2(F₂² − F₄)` needs 4-wise
//! independence. EH3 is only 3-wise and has a deterministic defect on
//! affine key subspaces (`ξ₀ξ₁ξ₂ξ₃ ≡ −1`); these tests quantify the
//! consequence exactly and confirm the 4-wise families are immune — the
//! empirical counterpart of the generator study in Rusu & Dobra (TODS
//! 2007) that underlies the paper's testbed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_xi::{Bch5, Cw4, Eh3, SignFamily};

/// The adversarial workload: unit frequency on keys {0, 1, 2, 3}.
/// F₂ = 4, F₄ = 4, so the 4-wise variance of S² is 2(16 − 4) = 24.
const KEYS: [u64; 4] = [0, 1, 2, 3];
const FOUR_WISE_VARIANCE: f64 = 24.0;

/// Exact Var[S²] for EH3 on the adversarial keys, by enumerating the full
/// effective seed space (the keys only use 2 bits, but include all 8 seed
/// bits they could touch).
#[test]
fn eh3_variance_deviates_exactly() {
    let mut sum = 0f64;
    let mut sum_sq = 0f64;
    let mut count = 0f64;
    for s in 0u64..256 {
        for s0 in [false, true] {
            let f = Eh3::from_seed(s0, s);
            let sk: i64 = KEYS.iter().map(|&k| f.sign(k)).sum();
            let x = (sk * sk) as f64;
            sum += x;
            sum_sq += x * x;
            count += 1.0;
        }
    }
    let mean = sum / count;
    let var = sum_sq / count - mean * mean;
    // Unbiasedness needs only pairwise independence — it must survive.
    assert!((mean - 4.0).abs() < 1e-9, "E[S²] = {mean}");
    // With ξ₀ξ₁ξ₂ξ₃ ≡ −1, an odd number of the four signs is −1 in every
    // seed, so S = ±2 and S² ≡ 4 *deterministically*: the variance is
    // exactly 0 instead of 24. (Here the defect flatters the estimator;
    // on the mirrored workload it inflates the variance instead — the
    // point is that the 4-wise formula simply does not apply.)
    assert!(
        var.abs() < 1e-9,
        "EH3 variance on the affine subspace is exactly 0, got {var}"
    );
}

/// The same enumeration logic, Monte-Carlo for the 4-wise families: their
/// Var[S²] must match 2(F₂² − F₄) = 24 closely.
#[test]
fn four_wise_families_match_the_variance_formula() {
    fn empirical_variance<F: SignFamily>(seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 60_000;
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        for _ in 0..trials {
            let f = F::random(&mut rng);
            let s: i64 = KEYS.iter().map(|&k| f.sign(k)).sum();
            let x = (s * s) as f64;
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / trials as f64;
        sum_sq / trials as f64 - mean * mean
    }
    let cw4 = empirical_variance::<Cw4>(1);
    let bch5 = empirical_variance::<Bch5>(2);
    assert!(
        (cw4 - FOUR_WISE_VARIANCE).abs() < 1.5,
        "CW4 variance {cw4} vs theory {FOUR_WISE_VARIANCE}"
    );
    assert!(
        (bch5 - FOUR_WISE_VARIANCE).abs() < 1.5,
        "BCH5 variance {bch5} vs theory {FOUR_WISE_VARIANCE}"
    );
    // EH3, measured the same way for a like-for-like comparison, deviates.
    let eh3 = empirical_variance::<Eh3>(3);
    assert!(
        (eh3 - FOUR_WISE_VARIANCE).abs() > 4.0,
        "EH3 variance {eh3} should be visibly off {FOUR_WISE_VARIANCE}"
    );
}
