//! Serde round-trips for every family: a persisted seed must reproduce the
//! exact same ±1 assignment, which is what allows sketches built on
//! different machines (or at different times) to be joined.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_xi::{Bch5, BucketFamily, Cw2, Cw2Bucket, Cw4, Eh3, SignFamily, Tabulation};

fn roundtrip_sign<F>(seed: u64)
where
    F: SignFamily + serde::Serialize + serde::de::DeserializeOwned,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let original = F::random(&mut rng);
    let json = serde_json::to_string(&original).expect("serialize");
    let restored: F = serde_json::from_str(&json).expect("deserialize");
    for key in (0..2000u64).chain([u64::MAX, 1 << 63]) {
        assert_eq!(original.sign(key), restored.sign(key), "key {key}");
    }
}

#[test]
fn sign_families_roundtrip() {
    roundtrip_sign::<Cw2>(1);
    roundtrip_sign::<Cw4>(2);
    roundtrip_sign::<Eh3>(3);
    roundtrip_sign::<Bch5>(4);
    roundtrip_sign::<Tabulation>(5);
}

#[test]
fn bucket_families_roundtrip() {
    let mut rng = StdRng::seed_from_u64(6);
    let original = Cw2Bucket::random(&mut rng);
    let json = serde_json::to_string(&original).unwrap();
    let restored: Cw2Bucket = serde_json::from_str(&json).unwrap();
    for key in 0..2000u64 {
        assert_eq!(original.bucket(key, 5000), restored.bucket(key, 5000));
    }
    let original = <Tabulation as BucketFamily>::random(&mut rng);
    let json = serde_json::to_string(&original).unwrap();
    let restored: Tabulation = serde_json::from_str(&json).unwrap();
    for key in 0..2000u64 {
        assert_eq!(original.bucket(key, 5000), restored.bucket(key, 5000));
    }
}

#[test]
fn truncated_tabulation_payload_is_rejected() {
    let bad = serde_json::to_string(&vec![0u64; 100]).unwrap();
    let res: Result<Tabulation, _> = serde_json::from_str(&bad);
    assert!(res.is_err(), "short table payloads must not deserialize");
}
