//! Statistical acceptance tests for the ξ families.
//!
//! These tests exercise the properties the sketch estimators actually rely
//! on: per-key balance (`E[ξᵢ] = 0`), pairwise orthogonality
//! (`E[ξᵢξⱼ] = 0`), and — for the 4-wise families — fourth-order
//! orthogonality. Everything is seeded, so the assertions are deterministic.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_xi::{Bch5, BucketFamily, Cw2Bucket, Cw4, Eh3, SignFamily, Tabulation};

/// Mean of ξ(key) over `trials` independently-seeded families.
fn seed_mean<F: SignFamily>(key: u64, trials: usize, rng: &mut StdRng) -> f64 {
    let mut acc = 0i64;
    for _ in 0..trials {
        acc += F::random(rng).sign(key);
    }
    acc as f64 / trials as f64
}

fn pair_mean<F: SignFamily>(a: u64, b: u64, trials: usize, rng: &mut StdRng) -> f64 {
    let mut acc = 0i64;
    for _ in 0..trials {
        let f = F::random(rng);
        acc += f.sign(a) * f.sign(b);
    }
    acc as f64 / trials as f64
}

const TRIALS: usize = 20_000;
/// 5σ for a ±1 mean over TRIALS trials.
const TOL: f64 = 0.036;

macro_rules! balance_tests {
    ($name:ident, $ty:ty, $seed:expr) => {
        #[test]
        fn $name() {
            let mut rng = StdRng::seed_from_u64($seed);
            for key in [0u64, 1, 12345, u64::MAX] {
                let m = seed_mean::<$ty>(key, TRIALS, &mut rng);
                assert!(m.abs() < TOL, "E[ξ({key})] = {m}");
            }
            for (a, b) in [(0u64, 1u64), (7, 1 << 50), (999_999, 1_000_000)] {
                let m = pair_mean::<$ty>(a, b, TRIALS, &mut rng);
                assert!(m.abs() < TOL, "E[ξ({a})ξ({b})] = {m}");
            }
        }
    };
}

balance_tests!(cw4_is_balanced_and_pairwise_orthogonal, Cw4, 100);
balance_tests!(eh3_is_balanced_and_pairwise_orthogonal, Eh3, 101);
balance_tests!(bch5_is_balanced_and_pairwise_orthogonal, Bch5, 102);
balance_tests!(
    tabulation_is_balanced_and_pairwise_orthogonal,
    Tabulation,
    103
);

/// The AGMS self-join estimator over a single family: `X = S²` where
/// `S = Σᵢ fᵢξᵢ`. `E[X] = Σ fᵢ²` holds for any pairwise-independent family;
/// verify for every family on a fixed frequency vector.
#[test]
fn self_join_expectation_matches_for_all_families() {
    fn run<F: SignFamily>(seed: u64) -> f64 {
        let freqs: Vec<(u64, i64)> = (0u64..64)
            .map(|i| (i * 31 + 7, (i % 5 + 1) as i64))
            .collect();
        let truth: i64 = freqs.iter().map(|&(_, f)| f * f).sum();
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 40_000;
        let mut acc = 0f64;
        for _ in 0..trials {
            let xi = F::random(&mut rng);
            let s: i64 = freqs.iter().map(|&(k, f)| f * xi.sign(k)).sum();
            acc += (s * s) as f64;
        }
        acc / trials as f64 / truth as f64
    }
    for (name, ratio) in [
        ("cw4", run::<Cw4>(200)),
        ("eh3", run::<Eh3>(201)),
        ("bch5", run::<Bch5>(202)),
        ("tabulation", run::<Tabulation>(203)),
    ] {
        assert!((ratio - 1.0).abs() < 0.05, "{name}: E[S²]/F₂ = {ratio}");
    }
}

/// Bucket hashes distribute a contiguous key range uniformly: chi-square
/// against the uniform law with a generous quantile.
#[test]
fn bucket_families_are_uniform() {
    fn chi2<F: BucketFamily>(seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = F::random(&mut rng);
        let width = 32usize;
        let n = 320_000u64;
        let mut counts = vec![0u64; width];
        for key in 0..n {
            counts[f.bucket(key, width)] += 1;
        }
        let expect = n as f64 / width as f64;
        counts
            .iter()
            .map(|&c| (c as f64 - expect).powi(2) / expect)
            .sum()
    }
    // 99.99% quantile of chi-square with 31 dof ≈ 66.6.
    assert!(chi2::<Cw2Bucket>(300) < 66.6);
    assert!(chi2::<Tabulation>(301) < 66.6);
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every family returns ±1 for arbitrary keys and arbitrary seeds.
        #[test]
        fn signs_are_plus_minus_one(seed: u64, key: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            prop_assert!(Cw4::random(&mut rng).sign(key).abs() == 1);
            prop_assert!(Eh3::random(&mut rng).sign(key).abs() == 1);
            prop_assert!(Bch5::random(&mut rng).sign(key).abs() == 1);
            prop_assert!(<Tabulation as SignFamily>::random(&mut rng).sign(key).abs() == 1);
        }

        /// Bucket indexes stay inside the table for arbitrary widths.
        #[test]
        fn buckets_stay_in_range(seed: u64, key: u64, width in 1usize..100_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            prop_assert!(Cw2Bucket::random(&mut rng).bucket(key, width) < width);
            prop_assert!(<Tabulation as BucketFamily>::random(&mut rng).bucket(key, width) < width);
        }

        /// ξ evaluation is a pure function of (seed, key).
        #[test]
        fn evaluation_is_pure(seed: u64, key: u64) {
            let mut rng1 = StdRng::seed_from_u64(seed);
            let mut rng2 = StdRng::seed_from_u64(seed);
            let a = Cw4::random(&mut rng1);
            let b = Cw4::random(&mut rng2);
            prop_assert_eq!(a.sign(key), b.sign(key));
        }
    }
}
