//! Adaptive load shedding under a bursty stream: the closed control loop.
//!
//! A stream arrives in batches whose rate swings over three phases
//! (calm → 20× burst → calm). A [`RateController`] watches the rate and
//! picks the shedding probability; an [`EpochShedder`] segments the stream
//! at each rate change and keeps the overall self-join estimate unbiased
//! across the segments (Proposition 14 within an epoch, Proposition 13
//! between epochs).
//!
//! ```text
//! cargo run --release --example adaptive_shedding
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::{EpochShedder, RateGrid};
use sketch_sampled_streams::datagen::ZipfGenerator;
use sketch_sampled_streams::exact::ExactAggregator;
use sketch_sampled_streams::stream::{ControllerConfig, RateController};

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let gen = ZipfGenerator::new(20_000, 0.8);

    // Capacity: pretend the sketch path sustains 2M tuples/s.
    let mut controller = RateController::new(ControllerConfig {
        capacity_tps: 2_000_000.0,
        smoothing: 0.5,
        hysteresis: 0.15,
        min_p: 1e-3,
        grid: RateGrid::default(),
    });

    let schema = JoinSchema::fagms(1, 5000, &mut rng);
    let mut shedder = EpochShedder::new(&schema, 1.0, &mut rng).unwrap();
    let mut exact = ExactAggregator::new();

    // Three phases: calm (1M t/s), burst (20M t/s), calm again.
    let phases: [(&str, f64, usize); 3] =
        [("calm", 1e6, 10), ("burst", 2e7, 10), ("calm", 1e6, 10)];
    println!(
        "{:>8} {:>12} {:>8} {:>8} {:>12}",
        "phase", "rate t/s", "p", "epochs", "running est"
    );
    for (name, rate, batches) in phases {
        for _ in 0..batches {
            // One simulated second of traffic, scaled down 100× so the
            // example runs quickly; the controller sees the real rate.
            let batch = gen.relation((rate / 100.0) as usize, &mut rng);
            let p = controller.observe_batch(rate as u64, 1.0);
            shedder.set_probability(p, &mut rng).unwrap();
            for &k in &batch {
                shedder.observe(k);
                exact.update(k, 1);
            }
        }
        let est = shedder.self_join().unwrap();
        let truth = exact.self_join();
        println!(
            "{:>8} {:>12.0} {:>8.3} {:>8} {:>11.2}%",
            name,
            rate,
            controller.probability(),
            shedder.epoch_count(),
            100.0 * (est - truth).abs() / truth
        );
    }
    let truth = exact.self_join();
    let est = shedder.self_join().unwrap();
    println!(
        "\nfinal: sketched {} of {} tuples across {} epochs; rel. error {:.2}%",
        shedder.kept(),
        shedder.seen(),
        shedder.epoch_count(),
        100.0 * (est - truth).abs() / truth
    );
    println!(
        "Reading: the controller sheds only during the burst (p drops to\n\
         ≈0.1), and the epoch-combined estimator absorbs the rate changes\n\
         without bias — the closed loop the paper's introduction sketches."
    );
}
