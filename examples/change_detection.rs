//! Change detection over sliding windows: "did the traffic mix shift in
//! the last minute?"
//!
//! Two composable pieces from this workspace:
//!
//! * [`PanedWindowSketch`] keeps a bounded-memory sketch of the most
//!   recent W tuples;
//! * `Sketch::subtract` turns two window sketches into a sketch of their
//!   frequency *difference*, whose self-join estimate is the squared L2
//!   distance — the standard sketch-based change statistic.
//!
//! The demo streams steady traffic, snapshots the window, injects an
//! anomaly (a hot key burst), and watches the L2 distance between the
//! current window and the snapshot jump.
//!
//! ```text
//! cargo run --release --example change_detection
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::datagen::ZipfGenerator;
use sketch_sampled_streams::stream::PanedWindowSketch;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let schema = JoinSchema::fagms(3, 4096, &mut rng);
    let window = 50_000u64;
    let mut win = PanedWindowSketch::new(&schema, window, 10);
    let steady = ZipfGenerator::new(10_000, 1.0);

    // Warm up with steady traffic and take a baseline snapshot.
    for _ in 0..2 * window {
        win.update(steady.sample(&mut rng));
    }
    let baseline = win.window_sketch().unwrap();
    let baseline_f2 = baseline.raw_self_join();
    println!("baseline window F₂ ≈ {baseline_f2:.3e}");
    println!(
        "\n{:>10} {:>14} {:>16}",
        "phase", "window F₂", "L2² vs baseline"
    );

    let report = |label: &str, win: &PanedWindowSketch| {
        let mut diff = win.window_sketch().unwrap();
        diff.subtract(&baseline).unwrap();
        println!(
            "{:>10} {:>14.3e} {:>16.3e}",
            label,
            win.window_sketch().unwrap().raw_self_join(),
            diff.raw_self_join()
        );
    };

    // Phase 1: more steady traffic — distance stays small.
    for _ in 0..window {
        win.update(steady.sample(&mut rng));
    }
    report("steady", &win);

    // Phase 2: anomaly — 20% of traffic becomes a single hot key.
    for i in 0..window {
        let k = if i % 5 == 0 {
            424_242
        } else {
            steady.sample(&mut rng)
        };
        win.update(k);
    }
    report("anomaly", &win);

    // Phase 3: anomaly clears; the window forgets it.
    for _ in 0..window {
        win.update(steady.sample(&mut rng));
    }
    report("recovered", &win);

    println!(
        "\nReading: the L2² statistic sits near sketch noise under steady\n\
         traffic, jumps by orders of magnitude when 20% of the window mass\n\
         moves to one key, and returns once the window slides past the\n\
         anomaly — all in {} counters of memory.",
        4096 * 3 * 11
    );
}
