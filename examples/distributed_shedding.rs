//! Distributed load shedding: one schema, many workers, one estimate.
//!
//! Demonstrates the two composition properties production deployments rely
//! on:
//!
//! 1. **Serde persistence** — the coordinator serializes the sketch schema
//!    once; workers (separate processes in real life, simulated here)
//!    deserialize it, shed-and-sketch their partition, and return their
//!    serialized sketches.
//! 2. **Linearity + Bernoulli composition** — merged worker sketches are
//!    exactly the sketch of a p-sample of the union stream, so the usual
//!    Proposition 14 scaling applies once at the coordinator.
//!
//! Also shows the in-process shortcut (`sss_stream::parallel_shed`) that
//! does the same thing on local threads.
//!
//! ```text
//! cargo run --release --example distributed_shedding
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::{JoinSchema, JoinSketch};
use sketch_sampled_streams::core::LoadSheddingSketcher;
use sketch_sampled_streams::datagen::ZipfGenerator;
use sketch_sampled_streams::exact::ExactAggregator;
use sketch_sampled_streams::stream::parallel_shed;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let p = 0.1;
    let workers = 4;
    let per_worker = 500_000;

    // The logical stream, partitioned across workers.
    let gen = ZipfGenerator::new(50_000, 0.9);
    let partitions: Vec<Vec<u64>> = (0..workers)
        .map(|_| gen.relation(per_worker, &mut rng))
        .collect();
    let mut exact = ExactAggregator::new();
    for part in &partitions {
        for &k in part {
            exact.update(k, 1);
        }
    }
    let truth = exact.self_join();
    println!(
        "stream: {} tuples across {workers} workers; true F₂ = {truth:.4e}\n",
        workers * per_worker
    );

    // --- The wire protocol: coordinator → workers → coordinator ---------
    let schema = JoinSchema::fagms(1, 5000, &mut rng);
    let schema_wire = serde_json::to_string(&schema).expect("schema serializes");
    println!("schema payload: {} bytes of JSON", schema_wire.len());

    let mut returned: Vec<(String, u64)> = Vec::new();
    for (w, part) in partitions.iter().enumerate() {
        // Each "worker" restores the schema and sheds its partition.
        let worker_schema: JoinSchema =
            serde_json::from_str(&schema_wire).expect("schema deserializes");
        let mut shed =
            LoadSheddingSketcher::new(&worker_schema, p, &mut rng).expect("valid probability");
        for &k in part {
            shed.observe(k);
        }
        let payload = serde_json::to_string(shed.sketch()).expect("sketch serializes");
        println!(
            "worker {w}: kept {} tuples, sketch payload {} bytes",
            shed.kept(),
            payload.len()
        );
        returned.push((payload, shed.kept()));
    }

    // Coordinator: merge, then scale once for the union.
    let mut merged: JoinSketch = serde_json::from_str(&returned[0].0).expect("sketch deserializes");
    let mut kept_total = returned[0].1;
    for (payload, kept) in &returned[1..] {
        let part: JoinSketch = serde_json::from_str(payload).expect("sketch deserializes");
        merged.merge(&part).expect("same schema");
        kept_total += kept;
    }
    let est = merged.raw_self_join() / (p * p) - (1.0 - p) / (p * p) * kept_total as f64;
    println!(
        "\ncoordinator estimate: {est:.4e}  (rel. error {:.2}%)",
        100.0 * (est - truth).abs() / truth
    );

    // --- The in-process shortcut ----------------------------------------
    let flat: Vec<u64> = partitions.concat();
    let r = parallel_shed(&schema, &flat, p, workers, &mut rng).expect("valid probability");
    println!(
        "parallel_shed (threads): {:.4e}  (rel. error {:.2}%, {:.1} Mt/s)",
        r.self_join(),
        100.0 * (r.self_join() - truth).abs() / truth,
        r.throughput.tuples_per_sec() / 1e6
    );
}
