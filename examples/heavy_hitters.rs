//! Heavy hitters from a shedded stream: combining the paper's load
//! shedding with the Count-Sketch top-k tracker.
//!
//! A 10% Bernoulli sample of the stream feeds a [`Sampled`] — a
//! bounded candidate set over a Count-Sketch, O(k + sketch) memory, no
//! dictionary pass over the domain. Queries return typed [`Estimate`]s:
//! the `1/p`-corrected full-stream frequency with an error bar combining
//! the sketch point-query noise and the Bernoulli thinning noise.
//!
//! ```text
//! cargo run --release --example heavy_hitters
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::Sampled;
use sketch_sampled_streams::datagen::ZipfGenerator;
use sketch_sampled_streams::moments::FrequencyVector;
use sketch_sampled_streams::sketch::{FagmsSchema, HeavyHitters};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let domain = 100_000;
    let tuples = 2_000_000;
    let p = 0.1;
    let k = 10;

    println!("stream: {tuples} Zipf(1.2) tuples over domain {domain}; shedding at p = {p}");
    let stream = ZipfGenerator::new(domain, 1.2).relation(tuples, &mut rng);
    let truth = FrequencyVector::from_keys(stream.iter().copied(), domain);

    let schema: FagmsSchema = FagmsSchema::new(5, 4096, &mut rng);
    let mut tracker = Sampled::count_sketch(&schema, 4 * k, p, &mut rng).unwrap();
    tracker.feed_batch(&stream);
    println!(
        "sketched {} of {tuples} tuples into {} counters + {} candidates\n",
        tracker.kept(),
        tracker.summary().counters(),
        4 * k
    );

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>9}",
        "key", "estimated", "±95% clt", "true", "err"
    );
    for (key, est) in tracker.top_k(k) {
        let t = truth.get(key as usize);
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>12.0} {:>8.2}%",
            key,
            est.value,
            est.clt(0.95).unwrap().half_width(),
            t,
            100.0 * (est.value - t).abs() / t.max(1.0)
        );
    }
    println!(
        "\nReading: the Zipf head is recovered in rank order from a 10%\n\
         sample in O(k + sketch) memory — no domain scan. The error bars\n\
         stack the sketch's √(F₂/width)/p point-query noise on the\n\
         binomial thinning noise f(1−p)/p of the sample itself."
    );
}
