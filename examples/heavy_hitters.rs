//! Heavy hitters from a shedded stream: combining the paper's load
//! shedding with the Count-Sketch point query.
//!
//! A 10% Bernoulli sample of the stream is sketched; point queries (scaled
//! by 1/p) recover the top keys and their approximate frequencies without
//! ever storing the stream.
//!
//! ```text
//! cargo run --release --example heavy_hitters
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::datagen::ZipfGenerator;
use sketch_sampled_streams::moments::FrequencyVector;
use sketch_sampled_streams::sampling::BernoulliSampler;
use sketch_sampled_streams::sketch::{FagmsSchema, Sketch};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let domain = 100_000;
    let tuples = 2_000_000;
    let p = 0.1;

    println!("stream: {tuples} Zipf(1.2) tuples over domain {domain}; shedding at p = {p}");
    let stream = ZipfGenerator::new(domain, 1.2).relation(tuples, &mut rng);
    let truth = FrequencyVector::from_keys(stream.iter().copied(), domain);

    let schema: FagmsSchema = FagmsSchema::new(5, 4096, &mut rng);
    let mut sketch = schema.sketch();
    let mut sampler: BernoulliSampler = BernoulliSampler::new(p, &mut rng).unwrap();
    let mut kept = 0u64;
    for &k in &stream {
        if sampler.keep() {
            sketch.update(k, 1);
            kept += 1;
        }
    }
    println!("sketched {kept} of {tuples} tuples\n");

    // Candidates: the whole domain (a dictionary pass); scale estimates by 1/p.
    let top = sketch.top_k(0..domain as u64, 10);
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "key", "estimated", "true", "err"
    );
    for (key, est) in top {
        let scaled = est / p;
        let t = truth.get(key as usize);
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>8.2}%",
            key,
            scaled,
            t,
            100.0 * (scaled - t).abs() / t.max(1.0)
        );
    }
    println!(
        "\nReading: the Zipf head is recovered in rank order from a 10%\n\
         sample, with per-key error bounded by √(F₂/width)/p."
    );
}
