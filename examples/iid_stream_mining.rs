//! Sketching i.i.d. samples from a generative model (paper §VI-B).
//!
//! A finite population (the "model") emits a stream of with-replacement
//! samples — the data-mining setting where the stream is the only access
//! to the distribution and is too large to store. We sketch the stream and
//! estimate the *population's* second frequency moment and the correlation
//! (size of join) between two models, watching the estimate stabilize once
//! the sample reaches ~10% of the population size.
//!
//! ```text
//! cargo run --release --example iid_stream_mining
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::IidStreamSketcher;
use sketch_sampled_streams::datagen::{DiscreteAlias, ZipfGenerator};
use sketch_sampled_streams::moments::FrequencyVector;

fn main() {
    let mut rng = StdRng::seed_from_u64(1337);

    // Two generative models over a shared domain of 20k values: a Zipf(1)
    // model and a Zipf(0.5) model, each representing a population of 200k
    // tuples.
    let domain = 20_000;
    let population = 200_000u64;
    let f_weights = ZipfGenerator::new(domain, 1.0).expected_frequencies(population);
    let g_weights = ZipfGenerator::new(domain, 0.5).expected_frequencies(population);
    let f_freqs = FrequencyVector::from_counts(f_weights.clone());
    let g_freqs = FrequencyVector::from_counts(g_weights.clone());
    let truth_f2 = f_freqs.self_join();
    let truth_join = f_freqs.dot(&g_freqs);
    println!("population F₂(F) = {truth_f2:.4e}, |F ⋈ G| = {truth_join:.4e}\n");

    let f_model = DiscreteAlias::new(&f_weights);
    let g_model = DiscreteAlias::new(&g_weights);

    let schema = JoinSchema::fagms(1, 10_000, &mut rng);
    let mut f_sketch = IidStreamSketcher::new(&schema, population).unwrap();
    let mut g_sketch = IidStreamSketcher::new(&schema, population).unwrap();

    println!(
        "{:>10} {:>10} {:>12} {:>12}",
        "samples", "fraction", "F₂ rel.err", "join rel.err"
    );
    let checkpoints: Vec<u64> = [0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0]
        .iter()
        .map(|f| (f * population as f64) as u64)
        .collect();
    let mut drawn = 0u64;
    for &target in &checkpoints {
        while drawn < target {
            f_sketch.observe(f_model.sample(&mut rng));
            g_sketch.observe(g_model.sample(&mut rng));
            drawn += 1;
        }
        let f2 = f_sketch.self_join().unwrap();
        let join = f_sketch.size_of_join(&g_sketch).unwrap();
        println!(
            "{:>10} {:>10.3} {:>11.2}% {:>11.2}%",
            drawn,
            f_sketch.alpha(),
            100.0 * (f2 - truth_f2).abs() / truth_f2,
            100.0 * (join - truth_join).abs() / truth_join
        );
    }
    println!(
        "\nReading: the error stabilizes around a 0.1 sampling fraction —\n\
         streaming more than ~10% of the population size buys almost no\n\
         extra accuracy (paper Figures 5–6)."
    );
}
