//! Load shedding (paper §VI-A): how fast can the stream get before the
//! sketch falls behind, and what does shedding cost in accuracy?
//!
//! Runs the same Zipf stream through a full sketch and through Bernoulli
//! shedders at decreasing p, reporting wall-clock speed-up and estimate
//! quality side by side.
//!
//! ```text
//! cargo run --release --example load_shedding
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::datagen::ZipfGenerator;
use sketch_sampled_streams::moments::FrequencyVector;
use sketch_sampled_streams::stream::ShedderComparison;

fn main() {
    let mut rng = StdRng::seed_from_u64(41);
    let domain = 50_000;
    let tuples = 2_000_000;
    println!("generating {tuples} Zipf(1.0) tuples over domain {domain}…");
    let stream = ZipfGenerator::new(domain, 1.0).relation(tuples, &mut rng);
    let truth = FrequencyVector::from_keys(stream.iter().copied(), domain).self_join();
    println!("true F₂ = {truth:.3e}\n");

    // AGMS with 128 counters: an expensive per-tuple update, the regime
    // where shedding pays off most visibly. Swap in `fagms(1, 5000)` to see
    // the cheap-update regime (speed-up then comes from skipping RNG work).
    let cmp = ShedderComparison::new(JoinSchema::agms(128, &mut rng));

    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "p", "kept", "full Mt/s", "shed Mt/s", "speedup", "rel.err"
    );
    for p in [1.0, 0.5, 0.1, 0.01, 0.001] {
        let r = cmp.run(&stream, p, &mut rng).unwrap();
        // The shedded estimate is corrected for p; compare against truth.
        let rel = (r.shedded_estimate - truth).abs() / truth;
        println!(
            "{:>8} {:>10} {:>12.2} {:>12.2} {:>9.1}x {:>9.2}%",
            p,
            r.kept,
            r.full.tuples_per_sec() / 1e6,
            r.shedded.tuples_per_sec() / 1e6,
            r.speedup(),
            100.0 * rel
        );
    }
    println!(
        "\nReading: a 10% sample (p = 0.1) keeps the estimate within a few\n\
         percent while processing an order of magnitude fewer tuples — the\n\
         paper's \"speed-up factor of at least 10\"."
    );
}
