//! Three-way chain join `F(a) ⋈ G(a, b) ⋈ H(b)` from sketches — with the
//! middle relation load-shedded.
//!
//! A star-schema shape: `G` is a large fact table linking customers (`a`)
//! to products (`b`); `F` and `H` carry per-customer and per-product
//! weights. The chain-join size is estimated from three small sketches,
//! with the fact table Bernoulli-sampled at 10% (scaled by `1/p`, exactly
//! as in the binary case — sampling composes with multiway sketching).
//!
//! ```text
//! cargo run --release --example multiway_join
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketch_sampled_streams::sketch::multiway::{
    chain_join, chain_join_median_of_means, MultiwaySchema, Side,
};
use sketch_sampled_streams::xi::Cw4;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let customers = 5_000u64;
    let products = 800u64;
    let facts = 2_000_000usize;
    let p = 0.1; // shedding rate on the fact stream

    // Exact computation for the comparison (dense arrays — feasible only
    // because this is a demo; the sketches never need it).
    let mut f_w = vec![0i64; customers as usize];
    let mut h_w = vec![0i64; products as usize];
    for (a, w) in f_w.iter_mut().enumerate() {
        *w = (a % 5 + 1) as i64;
    }
    for (b, w) in h_w.iter_mut().enumerate() {
        *w = (b % 3 + 1) as i64;
    }

    let schema = MultiwaySchema::<Cw4>::new(4096, &mut rng);
    let mut f = schema.unary(Side::Left);
    let mut g = schema.binary();
    let mut h = schema.unary(Side::Right);
    for (a, &w) in f_w.iter().enumerate() {
        f.update(a as u64, w);
    }
    for (b, &w) in h_w.iter().enumerate() {
        h.update(b as u64, w);
    }

    println!("streaming {facts} fact rows (customer, product), shedding at p = {p}…");
    let mut truth = 0f64;
    let mut kept = 0u64;
    for _ in 0..facts {
        let a = rng.random_range(0..customers);
        let b = rng.random_range(0..products);
        truth += (f_w[a as usize] * h_w[b as usize]) as f64;
        if rng.random::<f64>() < p {
            g.update(a, b, 1);
            kept += 1;
        }
    }

    let est = chain_join(&f, &g, &h).unwrap() / p;
    let est_mm = chain_join_median_of_means(&f, &g, &h, 8).unwrap() / p;
    println!("sketched {kept} of {facts} fact rows");
    println!("true |F ⋈ G ⋈ H|      = {truth:.4e}");
    println!(
        "mean estimate          = {est:.4e}  ({:.2}% off)",
        100.0 * (est - truth).abs() / truth
    );
    println!(
        "median-of-means (8)    = {est_mm:.4e}  ({:.2}% off)",
        100.0 * (est_mm - truth).abs() / truth
    );
    println!(
        "\nReading: the three-way join is recovered from three sketches of\n\
         {} counters each, with only a 10% sample of the fact table ever\n\
         touching the sketch.",
        4096
    );
}
