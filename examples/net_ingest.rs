//! Network ingest without the CLI: embed the ingest service in-process
//! and speak its binary wire protocol from a hand-rolled client.
//!
//! The server side is two lines — [`ServerConfig`] + [`RunningServer`].
//! The client side deliberately does **not** use
//! [`IngestClient`](sketch_sampled_streams::net::IngestClient): it
//! writes the length-prefixed frames by hand against a plain
//! `TcpStream`, showing everything an embedding in another language (or
//! another process with no dependency on this crate) needs to implement:
//!
//! 1. read the server's `HELLO_OK` banner frame (a JSON envelope head:
//!    kind, format, configuration fingerprint),
//! 2. echo it back as `HELLO` and wait for the empty `HELLO_OK` ack —
//!    a mismatched client is rejected *here*, with a typed error code,
//!    before any data moves,
//! 3. stream `BATCH` frames (`u32 count` + `count × u64` keys, all
//!    little-endian), pipelined without waiting,
//! 4. end with a `SYNC` cookie and wait for `SYNC_OK`: every batch sent
//!    before the sync is now accepted into the shard rings and visible
//!    to at-all-times queries.
//!
//! A raw query-plane exchange (newline-delimited JSON on a second port)
//! closes the loop, then a shutdown command drains the rings and hands
//! the example the final merged [`MultiSummary`].
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example net_ingest
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::{DistinctQuery, JoinQuery, MultiSpec};
use sketch_sampled_streams::net::{RunningServer, ServerConfig};

// The protocol constants, restated locally the way a foreign-language
// client would hard-code them (they are stable wire contract, see
// `sss_net::protocol`).
const FRAME_HELLO: u8 = 0x01;
const FRAME_BATCH: u8 = 0x02;
const FRAME_SYNC: u8 = 0x03;
const FRAME_HELLO_OK: u8 = 0x81;
const FRAME_SYNC_OK: u8 = 0x83;

/// Write one `[u32 len][u8 type][payload]` frame (len counts the type
/// byte plus the payload).
fn write_frame(out: &mut impl Write, tag: u8, payload: &[u8]) -> std::io::Result<()> {
    out.write_all(&(1 + payload.len() as u32).to_le_bytes())?;
    out.write_all(&[tag])?;
    out.write_all(payload)
}

/// Read one frame, returning its type byte and payload.
fn read_frame(stream: &mut impl Read) -> std::io::Result<(u8, Vec<u8>)> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body)?;
    Ok((body[0], body.split_off(1)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Server: the whole embedding ------------------------------------
    let mut rng = StdRng::seed_from_u64(2009);
    let spec = MultiSpec::new(JoinSchema::fagms(3, 5000, &mut rng), &mut rng);
    let srv = RunningServer::start(ServerConfig::default(), &spec)?;
    println!("ingest plane  {}", srv.ingest_addr());
    println!("query plane   {}", srv.query_addr());

    // ---- Hand-rolled ingest client --------------------------------------
    let mut wire = TcpStream::connect(srv.ingest_addr())?;

    // 1. The server speaks first: its banner is the wire head of the
    //    summary it maintains.
    let (tag, banner) = read_frame(&mut wire)?;
    assert_eq!(tag, FRAME_HELLO_OK);
    println!("banner        {}", String::from_utf8_lossy(&banner));

    // 2. Echoing the banner *is* a correct handshake (a real foreign
    //    client would compare kind/format/fingerprint against its own
    //    expectations first). A client built for a different summary
    //    configuration is rejected right here with a typed error frame.
    write_frame(&mut wire, FRAME_HELLO, &banner)?;
    let (tag, _) = read_frame(&mut wire)?;
    assert_eq!(tag, FRAME_HELLO_OK, "handshake accepted");

    // 3. Stream batches: u32 key count, then the keys, little-endian.
    //    Frames are pipelined — no per-batch round trip.
    let mut sent = 0u64;
    for batch_index in 0..200u64 {
        let keys: Vec<u64> = (0..512).map(|i| (batch_index * 512 + i) % 1000).collect();
        let mut payload = Vec::with_capacity(4 + keys.len() * 8);
        payload.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        for key in &keys {
            payload.extend_from_slice(&key.to_le_bytes());
        }
        write_frame(&mut wire, FRAME_BATCH, &payload)?;
        sent += keys.len() as u64;
    }

    // 4. The sync barrier: once SYNC_OK comes back, every batch above
    //    is accepted into the shard rings.
    write_frame(&mut wire, FRAME_SYNC, &7u64.to_le_bytes())?;
    wire.flush()?;
    let (tag, cookie) = read_frame(&mut wire)?;
    assert_eq!(tag, FRAME_SYNC_OK);
    assert_eq!(cookie, 7u64.to_le_bytes());
    println!("synced        {sent} tuples acknowledged");

    // ---- Raw query plane ------------------------------------------------
    // Newline-delimited JSON: one request line in, one response line out.
    let mut query = TcpStream::connect(srv.query_addr())?;
    query.write_all(b"{\"cmd\":\"self_join\",\"confidence\":0.95}\n")?;
    let mut lines = BufReader::new(query.try_clone()?);
    let mut line = String::new();
    lines.read_line(&mut line)?;
    println!("self_join     {}", line.trim_end());

    line.clear();
    query.write_all(b"{\"cmd\":\"topk\",\"k\":3}\n")?;
    lines.read_line(&mut line)?;
    println!("topk          {}", line.trim_end());

    // ---- Shutdown: drain, merge, hand the summary back ------------------
    query.write_all(b"{\"cmd\":\"shutdown\"}\n")?;
    line.clear();
    lines.read_line(&mut line)?;
    let merged = srv.wait()?;
    println!(
        "merged        self_join {:.0}, distinct {:.0} (exact: {} and {})",
        merged.self_join_estimate().value,
        merged.distinct_estimate().value,
        // 200 batches of 512 keys cycling 0..1000: every key appears
        // 102 or 103 times.
        (0..1000u64)
            .map(|k| {
                let n = (0..200 * 512u64).filter(|i| i % 1000 == k).count() as u64;
                n * n
            })
            .sum::<u64>(),
        1000
    );
    Ok(())
}
