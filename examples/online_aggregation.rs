//! Online aggregation over TPC-H (paper §VI-C, Figures 7–8).
//!
//! Scans `lineitem` and `orders` in random order — every prefix is a
//! without-replacement sample — and prints the running estimates an online
//! aggregation engine would surface: the size of join
//! `lineitem ⋈ orders` and the second frequency moment of
//! `lineitem.l_orderkey`, both with their exact relative error.
//!
//! ```text
//! cargo run --release --example online_aggregation [scale]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::ScanSketcher;
use sketch_sampled_streams::datagen::TpchGenerator;
use sketch_sampled_streams::sampling::without_replacement::PrefixScan;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    let mut rng = StdRng::seed_from_u64(7);
    println!("generating mini TPC-H at scale {scale}…");
    let tables = TpchGenerator::new(scale).generate(&mut rng);
    let truth_join = tables.join_size();
    let truth_f2 = tables.lineitem_self_join();
    println!(
        "orders: {} rows, lineitem: {} rows, |L ⋈ O| = {truth_join:.0}, F₂(L) = {truth_f2:.0}\n",
        tables.orders.len(),
        tables.lineitem.len()
    );

    let schema = JoinSchema::fagms(1, 5000, &mut rng);
    let line_scan = PrefixScan::new(tables.lineitem.clone(), &mut rng);
    let order_scan = PrefixScan::new(tables.orders.clone(), &mut rng);

    let mut line = ScanSketcher::new(&schema, line_scan.len() as u64).unwrap();
    let mut orders = ScanSketcher::new(&schema, order_scan.len() as u64).unwrap();

    println!(
        "{:>9} {:>14} {:>9} {:>14} {:>9}",
        "scanned", "join est", "err", "F₂ est", "err"
    );
    let fractions = [0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut li = 0usize;
    let mut oi = 0usize;
    for &frac in &fractions {
        let l_target = (frac * line_scan.len() as f64) as usize;
        let o_target = (frac * order_scan.len() as f64) as usize;
        while li < l_target {
            line.observe(line_scan.tuples()[li]).unwrap();
            li += 1;
        }
        while oi < o_target {
            orders.observe(order_scan.tuples()[oi]).unwrap();
            oi += 1;
        }
        let join = line.size_of_join(&orders).unwrap();
        let f2 = line.self_join().unwrap();
        println!(
            "{:>8.0}% {:>14.0} {:>8.2}% {:>14.0} {:>8.2}%",
            100.0 * frac,
            join,
            100.0 * (join - truth_join).abs() / truth_join,
            f2,
            100.0 * (f2 - truth_f2).abs() / truth_f2
        );
    }
    println!(
        "\nReading: estimates are already stable near a 10% scan — the\n\
         online aggregation engine can start making decisions long before\n\
         the scan finishes (paper Figures 7–8)."
    );
}
