//! Quickstart: estimate a self-join size and a join size from a 10% sample
//! of a stream, and compare against sketching everything.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::analysis::{self, BoundKind};
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::LoadSheddingSketcher;
use sketch_sampled_streams::datagen::ZipfGenerator;
use sketch_sampled_streams::moments::FrequencyVector;

fn main() {
    let mut rng = StdRng::seed_from_u64(2009);

    // A moderately skewed stream: 1M tuples over a domain of 100k values.
    let domain = 100_000;
    let tuples = 1_000_000;
    let gen = ZipfGenerator::new(domain, 0.8);
    let stream = gen.relation(tuples, &mut rng);

    // Ground truth, for the comparison table.
    let freqs = FrequencyVector::from_keys(stream.iter().copied(), domain);
    let truth = freqs.self_join();
    println!("stream: {tuples} tuples, domain {domain}, Zipf 0.8");
    println!("true self-join size F₂ = {truth:.0}\n");

    // The paper's sketch: F-AGMS with 5000 buckets.
    let schema = JoinSchema::fagms(1, 5000, &mut rng);

    // Sketch the full stream (p = 1) and a 10% Bernoulli sample (p = 0.1).
    println!(
        "{:>6} {:>14} {:>10} {:>10}",
        "p", "estimate", "rel.err", "sketched"
    );
    for p in [1.0, 0.5, 0.1, 0.01] {
        let mut sketcher = LoadSheddingSketcher::new(&schema, p, &mut rng).unwrap();
        for &k in &stream {
            sketcher.observe(k);
        }
        let est = sketcher.self_join();
        println!(
            "{:>6} {:>14.0} {:>9.2}% {:>10}",
            p,
            est,
            100.0 * (est - truth).abs() / truth,
            sketcher.kept()
        );
    }

    // The analysis engine predicts the error before you ever run the
    // stream — the load-shedding planning question of the paper.
    println!("\nanalytical 95% confidence intervals (CLT):");
    for p in [1.0, 0.1, 0.01] {
        let m = analysis::shedding_self_join(&freqs, p, &schema).unwrap();
        let ci = analysis::confidence_interval(truth, &m, 0.95, BoundKind::Normal);
        println!(
            "  p = {:>5}: F₂ ± {:>12.0}  ({:.2}% relative)",
            p,
            ci.half_width(),
            100.0 * ci.half_width() / truth
        );
    }
    let max_shed = analysis::max_shedding_rate(&freqs, &schema, 0.05);
    println!(
        "\nmost aggressive shedding for ≤5% std error: p = {}",
        max_shed.map_or("unachievable".into(), |p| format!("{p}")),
    );
}
