//! The sharded streaming engine end to end: builder API, live queries,
//! and the bounded-queue → shedding handoff under overload.
//!
//! Act 1 runs a comfortable stream through a 4-shard engine and queries
//! the merged estimate *while ingest continues* — the merge is exact by
//! sketch linearity, so the live estimate is the same one a sequential
//! sketch would give. Act 2 rebuilds the engine with a depth-1 queue and
//! floods it: overflow batches are not dropped but Bernoulli-shedded at
//! a controller-chosen rate, and the combined estimate (shard sketches +
//! shedded overflow + cross term) stays unbiased.
//!
//! ```text
//! cargo run --release --example sharded_runtime
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::{JoinQuery, RateGrid};
use sketch_sampled_streams::datagen::ZipfGenerator;
use sketch_sampled_streams::exact::ExactAggregator;
use sketch_sampled_streams::stream::{ControllerConfig, EngineBuilder};

fn keep_small(k: u64) -> bool {
    k < 8_000
}

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let schema = JoinSchema::fagms(1, 5_000, &mut rng);
    let gen = ZipfGenerator::new(10_000, 0.7);

    // --- Act 1: plenty of headroom, live queries. -----------------------
    let mut engine = EngineBuilder::new()
        .filter("small", keep_small)
        .shards(4)
        .queue_depth(64)
        .schema(&schema)
        .build()
        .expect("schema is set, config is sane");
    let mut exact = ExactAggregator::new();
    println!("-- 4 shards, queue depth 64 (lossless backpressure) --");
    for round in 1..=5 {
        for _ in 0..10 {
            let batch = gen.relation(20_000, &mut rng);
            engine.push_batch(&batch, 1.0).expect("no shard died");
            for &k in batch.iter().filter(|&&k| keep_small(k)) {
                exact.update(k, 1);
            }
        }
        // Live query: snapshots queue behind accepted batches, so this
        // covers every tuple pushed so far without stopping ingest.
        let est = engine.merged().expect("snapshot").self_join();
        let truth = exact.self_join();
        println!(
            "round {round}: live F2 = {est:.3e}  exact = {truth:.3e}  \
             rel_err = {:+.2}%",
            100.0 * (est - truth) / truth
        );
    }

    // --- Act 2: depth-1 queue, flooded; overflow goes to the shedder. ---
    let mut engine = EngineBuilder::new()
        .filter("small", keep_small)
        .shards(1)
        .queue_depth(1)
        .schema(&schema)
        .shedding(ControllerConfig {
            capacity_tps: 5e4,
            smoothing: 0.5,
            hysteresis: 0.1,
            min_p: 0.05,
            grid: RateGrid::default(),
        })
        .build()
        .expect("schema is set, config is sane");
    let mut exact = ExactAggregator::new();
    println!("-- 1 shard, queue depth 1, flooded (overflow is shedded) --");
    for _ in 0..60 {
        let batch = gen.relation(20_000, &mut rng);
        // Claim each batch arrived in 10 ms — a flood.
        engine.push_batch(&batch, 1e-2).expect("no shard died");
        for &k in batch.iter().filter(|&&k| keep_small(k)) {
            exact.update(k, 1);
        }
    }
    let shedder = engine.shedder().expect("shedding leg is enabled");
    println!(
        "overflow: {} tuples seen by the shedder, {} kept (p now {:.3})",
        shedder.seen(),
        shedder.kept(),
        engine.controller().expect("controller").probability()
    );
    println!(
        "queue high-water: {} batch(es) — never exceeds depth + 1",
        engine.queue_high_water()
    );
    let est = engine.self_join().expect("combined estimate");
    let truth = exact.self_join();
    println!(
        "combined F2 = {est:.3e}  exact = {truth:.3e}  rel_err = {:+.2}%",
        100.0 * (est - truth) / truth
    );
}
