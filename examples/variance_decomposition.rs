//! The variance anatomy of the combined estimator (paper §V-B, Figures
//! 1–2): how much of the error comes from sampling, how much from
//! sketching, and how much from their *interaction*?
//!
//! Computes the exact three-way decomposition for a sweep of Zipf skews
//! and Bernoulli probabilities — no simulation involved, everything is the
//! closed-form analysis evaluated on expected Zipf frequency vectors.
//!
//! ```text
//! cargo run --release --example variance_decomposition
//! ```

use sketch_sampled_streams::datagen::ZipfGenerator;
use sketch_sampled_streams::moments::decompose;
use sketch_sampled_streams::moments::scheme::Bernoulli;
use sketch_sampled_streams::moments::FrequencyVector;

fn main() {
    let domain = 10_000;
    let tuples = 1_000_000u64;
    let buckets = 5000; // averaging factor n, as in the paper's setup

    println!("self-join size over Bernoulli samples — relative variance contributions");
    println!(
        "{:>5} {:>6} {:>10} {:>10} {:>12}",
        "skew", "p", "sampling", "sketch", "interaction"
    );
    for skew in [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0] {
        let freqs = FrequencyVector::from_counts(
            ZipfGenerator::new(domain, skew).expected_frequencies(tuples),
        );
        for p in [0.01, 0.1, 0.5] {
            let scheme = Bernoulli::new(p).unwrap();
            let d = decompose::bernoulli_sjs(&freqs, &scheme, buckets).unwrap();
            let [s, k, i] = d.relative();
            println!(
                "{:>5} {:>6} {:>9.1}% {:>9.1}% {:>11.1}%",
                skew,
                p,
                100.0 * s,
                100.0 * k,
                100.0 * i
            );
        }
    }

    println!("\nsize of join over Bernoulli samples (independent Zipf relations)");
    println!(
        "{:>5} {:>6} {:>10} {:>10} {:>12}",
        "skew", "p", "sampling", "sketch", "interaction"
    );
    for skew in [0.0, 0.5, 1.0, 2.0] {
        let freqs = FrequencyVector::from_counts(
            ZipfGenerator::new(domain, skew).expected_frequencies(tuples),
        );
        for p in [0.01, 0.1, 0.5] {
            let scheme = Bernoulli::new(p).unwrap();
            let d = decompose::bernoulli_sj(&freqs, &freqs, &scheme, &scheme, buckets).unwrap();
            let [s, k, i] = d.relative();
            println!(
                "{:>5} {:>6} {:>9.1}% {:>9.1}% {:>11.1}%",
                skew,
                p,
                100.0 * s,
                100.0 * k,
                100.0 * i
            );
        }
    }

    println!(
        "\nReading: at low skew the interaction term carries most of the\n\
         variance (the naive \"sum of the two variances\" analysis would be\n\
         badly wrong); at high skew the sketch term dominates — exactly the\n\
         trends of the paper's Figures 1 and 2."
    );
}
