//! `sss` — command-line join-size estimation over key files.
//!
//! Reads whitespace/newline-separated unsigned integer keys and estimates
//! the requested aggregate with an F-AGMS sketch over an (optional)
//! Bernoulli sample:
//!
//! ```text
//! sss selfjoin <file> [--p=0.1] [--depth=3] [--width=5000] [--seed=1] [--exact] [--confidence=0.95]
//! sss join <file_f> <file_g> [--p=0.1] [--q=0.1] [--depth=3] [--width=5000] [--seed=1] [--exact] [--confidence=0.95]
//! sss topk <file> [--k=10] [--p=0.1] [--capacity=4k] [--depth=5] [--width=2048] [--seed=1] [--exact] [--confidence=0.95]
//! sss distinct <file> [--p=0.1] [--precision=12] [--seed=1] [--exact] [--confidence=0.95]
//! sss quantiles <file> [--p=0.1] [--k=200] [--at=0.5] [--seed=1] [--exact]
//! sss multi <file> [--k=10] [--p=0.1] [--depth=3] [--width=5000] [--seed=1] [--exact] [--confidence=0.95]
//! ```
//!
//! `topk` reports the `k` heaviest keys from a Count-Sketch heavy-hitter
//! summary over the (optionally Bernoulli-sampled) stream, each with its
//! `1/p`-corrected full-stream frequency estimate; memory stays
//! O(capacity + depth·width) regardless of the file size.
//!
//! `distinct` estimates the number of distinct keys with a HyperLogLog
//! (`2^precision` bytes), `quantiles` reports the median/p95/p99 (or a
//! single `--at=q`) from a KLL sketch with rank-error envelopes, and
//! `multi` answers *all four* query families — self-join, distinct,
//! quantiles, top-k — from **one pass** over one Bernoulli sample via a
//! `MultiSummary`, with the per-family sampling corrections applied on
//! the way out.
//!
//! With `--exact` the true aggregate is also computed (hash map over the
//! full data) and the relative error reported — useful for calibrating a
//! sketch configuration against a data sample before deploying it on the
//! full stream.
//!
//! With `--confidence=<level>` (a probability in `(0, 1)`) the typed
//! estimate's error bars are printed as `value ± half_width` at that
//! level — the distribution-free Chebyshev interval and the tighter CLT
//! interval, both centered on the same bit-identical point estimate.

use std::io::Read;
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::{LoadSheddingSketcher, MultiSpec, Sampled};
use sketch_sampled_streams::exact::ExactAggregator;
use sketch_sampled_streams::sketch::FagmsSchema;
use sketch_sampled_streams::{Error, Result};

fn arg_value<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    let prefix = format!("--{name}=");
    args.iter()
        .find_map(|a| a.strip_prefix(&prefix))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == &format!("--{name}"))
}

fn read_keys(path: &str) -> Result<Vec<u64>> {
    let mut text = String::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|source| Error::Io {
            path: path.to_string(),
            source,
        })?;
    let mut keys = Vec::new();
    for (i, token) in text.split_whitespace().enumerate() {
        keys.push(token.parse::<u64>().map_err(|_| Error::Parse {
            path: path.to_string(),
            token_index: i + 1,
            token: token.to_string(),
        })?);
    }
    if keys.is_empty() {
        return Err(Error::NoKeys {
            path: path.to_string(),
        });
    }
    Ok(keys)
}

fn exact_self_join(keys: &[u64]) -> f64 {
    ExactAggregator::from_keys(keys.iter().copied()).self_join()
}

fn exact_join(f: &[u64], g: &[u64]) -> f64 {
    ExactAggregator::from_keys(f.iter().copied())
        .join(&ExactAggregator::from_keys(g.iter().copied()))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sss selfjoin <file> [--p=1.0] [--depth=3] [--width=5000] [--seed=1] [--exact] [--confidence=0.95]\n  sss join <file_f> <file_g> [--p=1.0] [--q=1.0] [--depth=3] [--width=5000] [--seed=1] [--exact] [--confidence=0.95]\n  sss topk <file> [--k=10] [--p=1.0] [--capacity=4k] [--depth=5] [--width=2048] [--seed=1] [--exact] [--confidence=0.95]\n  sss distinct <file> [--p=1.0] [--precision=12] [--seed=1] [--exact] [--confidence=0.95]\n  sss quantiles <file> [--p=1.0] [--k=200] [--at=0.5] [--seed=1] [--exact]\n  sss multi <file> [--k=10] [--p=1.0] [--depth=3] [--width=5000] [--seed=1] [--exact] [--confidence=0.95]"
    );
    ExitCode::from(2)
}

/// Print the typed estimate's two intervals at `level`, Chebyshev
/// (distribution-free) first, CLT (normal) second. Rendering goes
/// through `ConfidenceInterval::describe`, which says
/// `± ∞ (no error state)` for estimates with unknown variance instead
/// of printing a raw `inf`.
fn print_intervals(est: &sketch_sampled_streams::core::Estimate, level: f64) {
    println!(
        "interval   {} [chebyshev {:.0}%]",
        est.chebyshev(level)
            .expect("level validated in (0,1)")
            .describe(est.value),
        100.0 * level
    );
    println!(
        "interval   {} [clt {:.0}%]",
        est.clt(level)
            .expect("level validated in (0,1)")
            .describe(est.value),
        100.0 * level
    );
}

fn run_selfjoin(
    args: &[String],
    schema: &JoinSchema,
    p: f64,
    confidence: Option<f64>,
    rng: &mut StdRng,
) -> Result<()> {
    let path = &args[1];
    let keys = read_keys(path)?;
    let mut shed = LoadSheddingSketcher::new(schema, p, rng)?;
    for &k in &keys {
        shed.observe(k);
    }
    let est = shed.self_join();
    println!("tuples     {}", keys.len());
    println!("sketched   {}", shed.kept());
    println!("estimate   {est:.2}");
    if let Some(level) = confidence {
        print_intervals(&shed.self_join_estimate(), level);
    }
    if has_flag(args, "exact") {
        let truth = exact_self_join(&keys);
        println!("exact      {truth:.2}");
        println!(
            "rel_error  {:.4}%",
            100.0 * (est - truth).abs() / truth.max(1.0)
        );
    }
    Ok(())
}

fn run_join(
    args: &[String],
    schema: &JoinSchema,
    p: f64,
    confidence: Option<f64>,
    rng: &mut StdRng,
) -> Result<()> {
    let (pf, pg) = (&args[1], &args[2]);
    let q: f64 = arg_value(args, "q", 1.0);
    let f_keys = read_keys(pf)?;
    let g_keys = read_keys(pg)?;
    let mut fs = LoadSheddingSketcher::new(schema, p, rng)?;
    let mut gs = LoadSheddingSketcher::new(schema, q, rng)?;
    for &k in &f_keys {
        fs.observe(k);
    }
    for &k in &g_keys {
        gs.observe(k);
    }
    let est = fs.size_of_join(&gs)?;
    println!("tuples     {} ⋈ {}", f_keys.len(), g_keys.len());
    println!("sketched   {} + {}", fs.kept(), gs.kept());
    println!("estimate   {est:.2}");
    if let Some(level) = confidence {
        print_intervals(&fs.size_of_join_estimate(&gs)?, level);
    }
    if has_flag(args, "exact") {
        let truth = exact_join(&f_keys, &g_keys);
        println!("exact      {truth:.2}");
        println!(
            "rel_error  {:.4}%",
            100.0 * (est - truth).abs() / truth.max(1.0)
        );
    }
    Ok(())
}

fn run_topk(args: &[String], p: f64, seed: u64, confidence: Option<f64>) -> Result<()> {
    let path = &args[1];
    let keys = read_keys(path)?;
    let k: usize = arg_value(args, "k", 10);
    // The top-k summary has its own sketch geometry: point queries want
    // more rows (median) and fewer buckets than the join estimators.
    let depth: usize = arg_value(args, "depth", 5);
    let width: usize = arg_value(args, "width", 2048);
    let capacity: usize = arg_value(args, "capacity", (4 * k).max(64));
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = FagmsSchema::new(depth, width, &mut rng);
    let mut tracker = Sampled::count_sketch(&schema, capacity, p, &mut rng)?;
    tracker.feed_batch(&keys);
    println!("tuples     {}", keys.len());
    println!("sketched   {}", tracker.kept());
    let exact = has_flag(args, "exact").then(|| ExactAggregator::from_keys(keys.iter().copied()));
    let top = tracker.top_k(k);
    for (rank, (key, est)) in top.iter().enumerate() {
        let mut line = match confidence {
            None => format!("top{:<3}     key {key}: {:.2}", rank + 1, est.value),
            Some(level) => format!(
                "top{:<3}     key {key}: {} [clt {:.0}%]",
                rank + 1,
                est.clt(level)
                    .expect("level validated in (0,1)")
                    .describe(est.value),
                100.0 * level
            ),
        };
        if let Some(truth) = &exact {
            line.push_str(&format!(" (exact {})", truth.get(*key)));
        }
        println!("{line}");
    }
    if let Some(truth) = &exact {
        let true_top: std::collections::HashSet<u64> =
            truth.top_k(k).into_iter().map(|(key, _)| key).collect();
        let hits = top.iter().filter(|(key, _)| true_top.contains(key)).count();
        println!(
            "recall     {:.4} ({hits}/{} of the exact top-{k})",
            hits as f64 / true_top.len().max(1) as f64,
            true_top.len()
        );
    }
    Ok(())
}

fn run_distinct(args: &[String], p: f64, seed: u64, confidence: Option<f64>) -> Result<()> {
    let path = &args[1];
    let keys = read_keys(path)?;
    let precision: u8 = arg_value(args, "precision", 12);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counter = Sampled::hyperloglog(precision, p, &mut rng)?;
    counter.feed_batch(&keys);
    let est = counter.distinct_estimate();
    println!("tuples     {}", keys.len());
    println!("sketched   {}", counter.kept());
    println!("estimate   {:.2}", est.value);
    if let Some(level) = confidence {
        print_intervals(&est, level);
    }
    if has_flag(args, "exact") {
        let truth = ExactAggregator::from_keys(keys.iter().copied()).distinct() as f64;
        println!("exact      {truth:.2}");
        println!(
            "rel_error  {:.4}%",
            100.0 * (est.value - truth).abs() / truth.max(1.0)
        );
    }
    Ok(())
}

fn run_quantiles(args: &[String], p: f64, seed: u64) -> Result<()> {
    let path = &args[1];
    let keys = read_keys(path)?;
    let k: usize = arg_value(args, "k", 200);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut summary = Sampled::kll(k, p, &mut rng)?;
    summary.feed_batch(&keys);
    println!("tuples     {}", keys.len());
    println!("sketched   {}", summary.kept());
    // `--at=q` narrows the report to one quantile; the default covers the
    // operational trio.
    let ranks: Vec<f64> = match args.iter().find_map(|a| a.strip_prefix("--at=")) {
        Some(v) => vec![v.parse().unwrap_or(0.5)],
        None => vec![0.5, 0.95, 0.99],
    };
    let exact = has_flag(args, "exact").then(|| {
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted
    });
    for &q in &ranks {
        let value = summary.quantile(q)?;
        let (lo, hi) = summary.quantile_bounds(q)?;
        let mut line = format!(
            "q{q:<8}  {value:.2} ∈ [{lo:.2}, {hi:.2}] (rank ± {:.4})",
            summary.rank_error(q)
        );
        if let Some(sorted) = &exact {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            line.push_str(&format!(" (exact {})", sorted[idx]));
        }
        println!("{line}");
    }
    Ok(())
}

fn run_multi(args: &[String], p: f64, seed: u64, confidence: Option<f64>) -> Result<()> {
    let path = &args[1];
    let keys = read_keys(path)?;
    let k: usize = arg_value(args, "k", 10);
    let depth: usize = arg_value(args, "depth", 3);
    let width: usize = arg_value(args, "width", 5000);
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = MultiSpec::new(JoinSchema::fagms(depth, width, &mut rng), &mut rng);
    let mut s = spec.sampled(p, &mut rng)?;
    // The one pass: every query below is answered from this single
    // Bernoulli-sampled ingestion.
    s.feed_batch(&keys);
    println!("tuples     {}", keys.len());
    println!("sketched   {}", s.kept());
    let exact = has_flag(args, "exact").then(|| ExactAggregator::from_keys(keys.iter().copied()));
    let sj = s.self_join_estimate();
    println!("self_join  {:.2}", sj.value);
    if let Some(level) = confidence {
        print_intervals(&sj, level);
    }
    if let Some(truth) = &exact {
        println!("           (exact {:.2})", truth.self_join());
    }
    let d = s.distinct_estimate();
    println!("distinct   {:.2}", d.value);
    if let Some(truth) = &exact {
        println!("           (exact {})", truth.distinct());
    }
    for (label, q) in [("median", 0.5), ("p99", 0.99)] {
        let (lo, hi) = s.quantile_bounds(q)?;
        println!("{label:<10} {:.2} ∈ [{lo:.2}, {hi:.2}]", s.quantile(q)?);
    }
    let top = s.top_k(k);
    for (rank, (key, est)) in top.iter().enumerate() {
        let mut line = format!("top{:<3}     key {key}: {:.2}", rank + 1, est.value);
        if let Some(truth) = &exact {
            line.push_str(&format!(" (exact {})", truth.get(*key)));
        }
        println!("{line}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let depth: usize = arg_value(&args, "depth", 3);
    let width: usize = arg_value(&args, "width", 5000);
    let seed: u64 = arg_value(&args, "seed", 1);
    let p: f64 = arg_value(&args, "p", 1.0);
    // `--confidence` is optional with no default; a malformed or
    // out-of-range level is a usage error, not a silent fallback.
    let confidence = match args.iter().find_map(|a| a.strip_prefix("--confidence=")) {
        None => None,
        Some(v) => match v.parse::<f64>() {
            Ok(level) if level > 0.0 && level < 1.0 => Some(level),
            _ => {
                eprintln!("error: --confidence must be a probability strictly between 0 and 1");
                return usage();
            }
        },
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = JoinSchema::fagms(depth, width, &mut rng);

    // Errors from every layer — I/O, parsing, sampling, sketching — reach
    // this one match as a single `Error`, never as pre-formatted strings.
    let result = match cmd.as_str() {
        "selfjoin" if args.len() >= 2 => run_selfjoin(&args, &schema, p, confidence, &mut rng),
        "join" if args.len() >= 3 => run_join(&args, &schema, p, confidence, &mut rng),
        "topk" if args.len() >= 2 => run_topk(&args, p, seed, confidence),
        "distinct" if args.len() >= 2 => run_distinct(&args, p, seed, confidence),
        "quantiles" if args.len() >= 2 => run_quantiles(&args, p, seed),
        "multi" if args.len() >= 2 => run_multi(&args, p, seed, confidence),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
