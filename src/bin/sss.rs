//! `sss` — command-line join-size estimation over key files.
//!
//! Reads whitespace/newline-separated unsigned integer keys and estimates
//! the requested aggregate with an F-AGMS sketch over an (optional)
//! Bernoulli sample:
//!
//! ```text
//! sss selfjoin <file> [--p=0.1] [--depth=3] [--width=5000] [--seed=1] [--exact] [--confidence=0.95]
//! sss join <file_f> <file_g> [--p=0.1] [--q=0.1] [--depth=3] [--width=5000] [--seed=1] [--exact] [--confidence=0.95]
//! sss topk <file> [--k=10] [--p=0.1] [--capacity=4k] [--depth=5] [--width=2048] [--seed=1] [--exact] [--confidence=0.95]
//! sss distinct <file> [--p=0.1] [--precision=12] [--seed=1] [--exact] [--confidence=0.95]
//! sss quantiles <file> [--p=0.1] [--k=200] [--at=0.5] [--seed=1] [--exact]
//! sss multi <file> [--k=10] [--p=0.1] [--depth=3] [--width=5000] [--seed=1] [--exact] [--confidence=0.95]
//! sss save <file> <out.sss> [--depth=3] [--width=5000] [--seed=1]
//! sss load <snapshot.sss> [--confidence=0.95]
//! sss merge-snapshots <in1.sss> <in2.sss> [more...] [--out=merged.sss] [--confidence=0.95]
//! sss serve [--ingest=127.0.0.1:0] [--query=127.0.0.1:0] [--shards=2] [--snapshot=final.sss]
//! sss bench-client <host:port> [--connections=4] [--tuples=100000] [--check] [--shutdown]
//! ```
//!
//! `topk` reports the `k` heaviest keys from a Count-Sketch heavy-hitter
//! summary over the (optionally Bernoulli-sampled) stream, each with its
//! `1/p`-corrected full-stream frequency estimate; memory stays
//! O(capacity + depth·width) regardless of the file size.
//!
//! `distinct` estimates the number of distinct keys with a HyperLogLog
//! (`2^precision` bytes), `quantiles` reports the median/p95/p99 (or a
//! single `--at=q`) from a KLL sketch with rank-error envelopes, and
//! `multi` answers *all four* query families — self-join, distinct,
//! quantiles, top-k — from **one pass** over one Bernoulli sample via a
//! `MultiSummary`, with the per-family sampling corrections applied on
//! the way out.
//!
//! With `--exact` the true aggregate is also computed (hash map over the
//! full data) and the relative error reported — useful for calibrating a
//! sketch configuration against a data sample before deploying it on the
//! full stream.
//!
//! With `--confidence=<level>` (a probability in `(0, 1)`) the typed
//! estimate's error bars are printed as `value ± half_width` at that
//! level — the distribution-free Chebyshev interval and the tighter CLT
//! interval, both centered on the same bit-identical point estimate.
//!
//! `save` sketches a key file into a **portable snapshot**: the F-AGMS
//! join sketch's versioned wire envelope (kind + format + configuration
//! fingerprint + state). `load` reads one back and answers the self-join
//! query; `merge-snapshots` combines snapshots produced by *different
//! processes* — the fingerprint check refuses payloads built from
//! different seeds/dimensions, so only like-configured sketches merge —
//! and by sketch linearity the merged estimate is bit-identical to
//! sketching the concatenated streams in one process.
//!
//! `serve` runs the network ingest service (binary batch protocol on the
//! ingest plane, line-delimited JSON on the query plane) until a query
//! client sends `{"cmd":"shutdown"}`; `bench-client` drives it with
//! concurrent deterministic load and can verify the served self-join
//! estimate against a locally recomputed exact answer (`--check`).

use std::io::Read;
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::{JoinSchema, JoinSketch};
use sketch_sampled_streams::core::{
    wire, JoinQuery, LoadSheddingSketcher, MultiSpec, Portable, Sampled, SlimQuery,
};
use sketch_sampled_streams::exact::ExactAggregator;
use sketch_sampled_streams::net::{self, QueryClient, RunningServer, ServerConfig};
use sketch_sampled_streams::sketch::FagmsSchema;
use sketch_sampled_streams::stream::runtime::RuntimeConfig;
use sketch_sampled_streams::stream::Partition;
use sketch_sampled_streams::{Error, Result};

fn arg_value<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    let prefix = format!("--{name}=");
    args.iter()
        .find_map(|a| a.strip_prefix(&prefix))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == &format!("--{name}"))
}

fn read_keys(path: &str) -> Result<Vec<u64>> {
    let mut text = String::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|source| Error::Io {
            path: path.to_string(),
            source,
        })?;
    let mut keys = Vec::new();
    for (i, token) in text.split_whitespace().enumerate() {
        keys.push(token.parse::<u64>().map_err(|_| Error::Parse {
            path: path.to_string(),
            token_index: i + 1,
            token: token.to_string(),
        })?);
    }
    if keys.is_empty() {
        return Err(Error::NoKeys {
            path: path.to_string(),
        });
    }
    Ok(keys)
}

fn exact_self_join(keys: &[u64]) -> f64 {
    ExactAggregator::from_keys(keys.iter().copied()).self_join()
}

fn exact_join(f: &[u64], g: &[u64]) -> f64 {
    ExactAggregator::from_keys(f.iter().copied())
        .join(&ExactAggregator::from_keys(g.iter().copied()))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sss selfjoin <file> [--p=1.0] [--depth=3] [--width=5000] [--seed=1] [--exact] [--confidence=0.95]\n  sss join <file_f> <file_g> [--p=1.0] [--q=1.0] [--depth=3] [--width=5000] [--seed=1] [--exact] [--confidence=0.95]\n  sss topk <file> [--k=10] [--p=1.0] [--capacity=4k] [--depth=5] [--width=2048] [--seed=1] [--exact] [--confidence=0.95]\n  sss distinct <file> [--p=1.0] [--precision=12] [--seed=1] [--exact] [--confidence=0.95]\n  sss quantiles <file> [--p=1.0] [--k=200] [--at=0.5] [--seed=1] [--exact]\n  sss multi <file> [--k=10] [--p=1.0] [--depth=3] [--width=5000] [--seed=1] [--exact] [--confidence=0.95]\n  sss save <file> <out.sss> [--depth=3] [--width=5000] [--seed=1]\n  sss load <snapshot.sss> [--confidence=0.95]\n  sss merge-snapshots <in1.sss> <in2.sss> [more...] [--out=merged.sss] [--confidence=0.95]\n  sss serve [--ingest=127.0.0.1:0] [--query=127.0.0.1:0] [--shards=2] [--queue-depth=64] [--partition=rr|hash] [--depth=3] [--width=5000] [--seed=1] [--max-pending=0] [--snapshot=final.sss]\n  sss bench-client <host:port> [--connections=1] [--tuples=100000] [--batch=512] [--domain=10000] [--seed=7] [--query-addr=host:port] [--check] [--shutdown]"
    );
    ExitCode::from(2)
}

/// Print the typed estimate's two intervals at `level`, Chebyshev
/// (distribution-free) first, CLT (normal) second. Rendering goes
/// through `ConfidenceInterval::describe`, which says
/// `± ∞ (no error state)` for estimates with unknown variance instead
/// of printing a raw `inf`.
fn print_intervals(est: &sketch_sampled_streams::core::Estimate, level: f64) {
    println!(
        "interval   {} [chebyshev {:.0}%]",
        est.chebyshev(level)
            .expect("level validated in (0,1)")
            .describe(est.value),
        100.0 * level
    );
    println!(
        "interval   {} [clt {:.0}%]",
        est.clt(level)
            .expect("level validated in (0,1)")
            .describe(est.value),
        100.0 * level
    );
}

fn run_selfjoin(
    args: &[String],
    schema: &JoinSchema,
    p: f64,
    confidence: Option<f64>,
    rng: &mut StdRng,
) -> Result<()> {
    let path = &args[1];
    let keys = read_keys(path)?;
    let mut shed = LoadSheddingSketcher::new(schema, p, rng)?;
    for &k in &keys {
        shed.observe(k);
    }
    let est = shed.self_join();
    println!("tuples     {}", keys.len());
    println!("sketched   {}", shed.kept());
    println!("estimate   {est:.2}");
    if let Some(level) = confidence {
        print_intervals(&shed.self_join_estimate(), level);
    }
    if has_flag(args, "exact") {
        let truth = exact_self_join(&keys);
        println!("exact      {truth:.2}");
        println!(
            "rel_error  {:.4}%",
            100.0 * (est - truth).abs() / truth.max(1.0)
        );
    }
    Ok(())
}

fn run_join(
    args: &[String],
    schema: &JoinSchema,
    p: f64,
    confidence: Option<f64>,
    rng: &mut StdRng,
) -> Result<()> {
    let (pf, pg) = (&args[1], &args[2]);
    let q: f64 = arg_value(args, "q", 1.0);
    let f_keys = read_keys(pf)?;
    let g_keys = read_keys(pg)?;
    let mut fs = LoadSheddingSketcher::new(schema, p, rng)?;
    let mut gs = LoadSheddingSketcher::new(schema, q, rng)?;
    for &k in &f_keys {
        fs.observe(k);
    }
    for &k in &g_keys {
        gs.observe(k);
    }
    let est = fs.size_of_join(&gs)?;
    println!("tuples     {} ⋈ {}", f_keys.len(), g_keys.len());
    println!("sketched   {} + {}", fs.kept(), gs.kept());
    println!("estimate   {est:.2}");
    if let Some(level) = confidence {
        print_intervals(&fs.size_of_join_estimate(&gs)?, level);
    }
    if has_flag(args, "exact") {
        let truth = exact_join(&f_keys, &g_keys);
        println!("exact      {truth:.2}");
        println!(
            "rel_error  {:.4}%",
            100.0 * (est - truth).abs() / truth.max(1.0)
        );
    }
    Ok(())
}

fn run_topk(args: &[String], p: f64, seed: u64, confidence: Option<f64>) -> Result<()> {
    let path = &args[1];
    let keys = read_keys(path)?;
    let k: usize = arg_value(args, "k", 10);
    // The top-k summary has its own sketch geometry: point queries want
    // more rows (median) and fewer buckets than the join estimators.
    let depth: usize = arg_value(args, "depth", 5);
    let width: usize = arg_value(args, "width", 2048);
    let capacity: usize = arg_value(args, "capacity", (4 * k).max(64));
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = FagmsSchema::new(depth, width, &mut rng);
    let mut tracker = Sampled::count_sketch(&schema, capacity, p, &mut rng)?;
    tracker.feed_batch(&keys);
    println!("tuples     {}", keys.len());
    println!("sketched   {}", tracker.kept());
    let exact = has_flag(args, "exact").then(|| ExactAggregator::from_keys(keys.iter().copied()));
    let top = tracker.top_k(k);
    for (rank, (key, est)) in top.iter().enumerate() {
        let mut line = match confidence {
            None => format!("top{:<3}     key {key}: {:.2}", rank + 1, est.value),
            Some(level) => format!(
                "top{:<3}     key {key}: {} [clt {:.0}%]",
                rank + 1,
                est.clt(level)
                    .expect("level validated in (0,1)")
                    .describe(est.value),
                100.0 * level
            ),
        };
        if let Some(truth) = &exact {
            line.push_str(&format!(" (exact {})", truth.get(*key)));
        }
        println!("{line}");
    }
    if let Some(truth) = &exact {
        let true_top: std::collections::HashSet<u64> =
            truth.top_k(k).into_iter().map(|(key, _)| key).collect();
        let hits = top.iter().filter(|(key, _)| true_top.contains(key)).count();
        println!(
            "recall     {:.4} ({hits}/{} of the exact top-{k})",
            hits as f64 / true_top.len().max(1) as f64,
            true_top.len()
        );
    }
    Ok(())
}

fn run_distinct(args: &[String], p: f64, seed: u64, confidence: Option<f64>) -> Result<()> {
    let path = &args[1];
    let keys = read_keys(path)?;
    let precision: u8 = arg_value(args, "precision", 12);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counter = Sampled::hyperloglog(precision, p, &mut rng)?;
    counter.feed_batch(&keys);
    let est = counter.distinct_estimate();
    println!("tuples     {}", keys.len());
    println!("sketched   {}", counter.kept());
    println!("estimate   {:.2}", est.value);
    if let Some(level) = confidence {
        print_intervals(&est, level);
    }
    if has_flag(args, "exact") {
        let truth = ExactAggregator::from_keys(keys.iter().copied()).distinct() as f64;
        println!("exact      {truth:.2}");
        println!(
            "rel_error  {:.4}%",
            100.0 * (est.value - truth).abs() / truth.max(1.0)
        );
    }
    Ok(())
}

fn run_quantiles(args: &[String], p: f64, seed: u64) -> Result<()> {
    let path = &args[1];
    let keys = read_keys(path)?;
    let k: usize = arg_value(args, "k", 200);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut summary = Sampled::kll(k, p, &mut rng)?;
    summary.feed_batch(&keys);
    println!("tuples     {}", keys.len());
    println!("sketched   {}", summary.kept());
    // `--at=q` narrows the report to one quantile; the default covers the
    // operational trio.
    let ranks: Vec<f64> = match args.iter().find_map(|a| a.strip_prefix("--at=")) {
        Some(v) => vec![v.parse().unwrap_or(0.5)],
        None => vec![0.5, 0.95, 0.99],
    };
    let exact = has_flag(args, "exact").then(|| {
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted
    });
    for &q in &ranks {
        let value = summary.quantile(q)?;
        let (lo, hi) = summary.quantile_bounds(q)?;
        let mut line = format!(
            "q{q:<8}  {value:.2} ∈ [{lo:.2}, {hi:.2}] (rank ± {:.4})",
            summary.rank_error(q)
        );
        if let Some(sorted) = &exact {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            line.push_str(&format!(" (exact {})", sorted[idx]));
        }
        println!("{line}");
    }
    Ok(())
}

fn run_multi(args: &[String], p: f64, seed: u64, confidence: Option<f64>) -> Result<()> {
    let path = &args[1];
    let keys = read_keys(path)?;
    let k: usize = arg_value(args, "k", 10);
    let depth: usize = arg_value(args, "depth", 3);
    let width: usize = arg_value(args, "width", 5000);
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = MultiSpec::new(JoinSchema::fagms(depth, width, &mut rng), &mut rng);
    let mut s = spec.sampled(p, &mut rng)?;
    // The one pass: every query below is answered from this single
    // Bernoulli-sampled ingestion.
    s.feed_batch(&keys);
    println!("tuples     {}", keys.len());
    println!("sketched   {}", s.kept());
    let exact = has_flag(args, "exact").then(|| ExactAggregator::from_keys(keys.iter().copied()));
    let sj = s.self_join_estimate();
    println!("self_join  {:.2}", sj.value);
    if let Some(level) = confidence {
        print_intervals(&sj, level);
    }
    if let Some(truth) = &exact {
        println!("           (exact {:.2})", truth.self_join());
    }
    let d = s.distinct_estimate();
    println!("distinct   {:.2}", d.value);
    if let Some(truth) = &exact {
        println!("           (exact {})", truth.distinct());
    }
    for (label, q) in [("median", 0.5), ("p99", 0.99)] {
        let (lo, hi) = s.quantile_bounds(q)?;
        println!("{label:<10} {:.2} ∈ [{lo:.2}, {hi:.2}]", s.quantile(q)?);
    }
    let top = s.top_k(k);
    for (rank, (key, est)) in top.iter().enumerate() {
        let mut line = format!("top{:<3}     key {key}: {:.2}", rank + 1, est.value);
        if let Some(truth) = &exact {
            line.push_str(&format!(" (exact {})", truth.get(*key)));
        }
        println!("{line}");
    }
    Ok(())
}

fn read_snapshot(path: &str) -> Result<Vec<u8>> {
    std::fs::read(path).map_err(|source| Error::Io {
        path: path.to_string(),
        source,
    })
}

fn write_snapshot(path: &str, bytes: &[u8]) -> Result<()> {
    std::fs::write(path, bytes).map_err(|source| Error::Io {
        path: path.to_string(),
        source,
    })
}

/// `sss save <file> <out.sss>`: sketch the key file and write the
/// sketch's portable wire envelope. Processes that agree on
/// `--depth/--width/--seed` produce fingerprint-compatible snapshots
/// that `merge-snapshots` will combine.
fn run_save(args: &[String], schema: &JoinSchema) -> Result<()> {
    let (path, out) = (&args[1], &args[2]);
    let keys = read_keys(path)?;
    let mut sketch = schema.sketch();
    sketch.update_batch(&keys);
    let bytes = sketch.encode()?;
    write_snapshot(out, &bytes)?;
    println!("tuples      {}", keys.len());
    println!("kind        {}", JoinSketch::KIND);
    println!("format      {}", JoinSketch::FORMAT);
    println!("fingerprint {:#018x}", Portable::fingerprint(&sketch));
    println!("bytes       {}", bytes.len());
    println!("saved       {out}");
    Ok(())
}

/// `sss load <snapshot.sss>`: peek the envelope head, decode the
/// sketch, and answer the self-join query — plus the slim projection's
/// size, to show what a read replica of this snapshot would ship. The
/// envelope kind picks the decoder: `join` snapshots come from `save` /
/// `merge-snapshots`, `multi` snapshots from `serve --snapshot=` (and
/// answer all four query families).
fn run_load(args: &[String], confidence: Option<f64>) -> Result<()> {
    let path = &args[1];
    let bytes = read_snapshot(path)?;
    let head = wire::peek(&bytes)?;
    println!("kind        {}", head.kind);
    println!("format      {}", head.format);
    println!("fingerprint {:#018x}", head.fingerprint);
    println!("bytes       {}", bytes.len());
    if head.kind == sketch_sampled_streams::core::MultiSummary::KIND {
        use sketch_sampled_streams::core::{DistinctQuery as _, MultiSummary, TopKQuery as _};
        let summary = MultiSummary::decode(&bytes)?;
        let est = summary.self_join_estimate();
        println!("self_join   {:.2}", est.value);
        if let Some(level) = confidence {
            print_intervals(&est, level);
        }
        println!("distinct    {:.2}", summary.distinct_estimate().value);
        for (rank, (key, _)) in summary.top_k(5).iter().enumerate() {
            let est = summary.frequency_estimate(*key);
            println!("top{:<3}     key {key}: {:.2}", rank + 1, est.value);
        }
        return Ok(());
    }
    let sketch = JoinSketch::decode(&bytes)?;
    let est = sketch.self_join_estimate();
    println!("self_join   {:.2}", est.value);
    if let Some(level) = confidence {
        print_intervals(&est, level);
    }
    let slim_bytes = sketch.slim().encode()?;
    println!(
        "slim        {} bytes ({:.1}% of fat)",
        slim_bytes.len(),
        100.0 * slim_bytes.len() as f64 / bytes.len().max(1) as f64
    );
    Ok(())
}

/// `sss merge-snapshots <in1> <in2> [more...]`: combine snapshots from
/// separate processes through the fingerprint-checked wire merge and
/// answer the self-join query over the union stream. With `--out=` the
/// merged snapshot is written back out (itself a valid `load`/merge
/// input).
fn run_merge_snapshots(args: &[String], confidence: Option<f64>) -> Result<()> {
    let inputs: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
    let first = read_snapshot(inputs[0])?;
    let mut merged = JoinSketch::decode(&first)?;
    println!("loaded      {} ({} bytes)", inputs[0], first.len());
    for path in &inputs[1..] {
        let bytes = read_snapshot(path)?;
        merged.merge_encoded(&bytes)?;
        println!("merged      {path} ({} bytes)", bytes.len());
    }
    println!("fingerprint {:#018x}", Portable::fingerprint(&merged));
    let est = merged.self_join_estimate();
    println!("self_join   {:.2}", est.value);
    if let Some(level) = confidence {
        print_intervals(&est, level);
    }
    if let Some(out) = args.iter().find_map(|a| a.strip_prefix("--out=")) {
        let bytes = merged.encode()?;
        write_snapshot(out, &bytes)?;
        println!("saved       {out} ({} bytes)", bytes.len());
    }
    Ok(())
}

/// `sss serve`: run the network ingest service until a query-plane
/// `shutdown` command arrives. Binds the ingest and query planes (port 0
/// picks ephemeral ports), prints the bound addresses and the summary
/// fingerprint as machine-parseable `key value` lines, then blocks on
/// the ingest loop. On shutdown the shard rings drain, the final merged
/// summary is (optionally) snapshotted, and its headline estimates are
/// printed.
fn run_serve(args: &[String]) -> Result<()> {
    let depth: usize = arg_value(args, "depth", 3);
    let width: usize = arg_value(args, "width", 5000);
    let seed: u64 = arg_value(args, "seed", 1);
    let shards: usize = arg_value(args, "shards", 2);
    let queue_depth: usize = arg_value(args, "queue-depth", 64);
    let max_pending: u64 = arg_value(args, "max-pending", 0);
    let partition = match args
        .iter()
        .find_map(|a| a.strip_prefix("--partition="))
        .unwrap_or("rr")
    {
        "hash" => Partition::Hash,
        _ => Partition::RoundRobin,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = MultiSpec::new(JoinSchema::fagms(depth, width, &mut rng), &mut rng);
    let fingerprint = Portable::fingerprint(&spec.summary()?);

    let config = ServerConfig {
        ingest_addr: arg_value(args, "ingest", "127.0.0.1:0".to_string()),
        query_addr: arg_value(args, "query", "127.0.0.1:0".to_string()),
        runtime: RuntimeConfig {
            shards,
            queue_depth,
            partition,
        },
        max_pending,
        snapshot_path: args
            .iter()
            .find_map(|a| a.strip_prefix("--snapshot="))
            .map(std::path::PathBuf::from),
    };
    let snapshot = config.snapshot_path.clone();
    let srv = RunningServer::start(config, &spec)?;
    // Machine-parseable banner: scripts (and the CI smoke test) scrape
    // the ephemeral ports from these lines, so flush before blocking.
    println!("ingest      {}", srv.ingest_addr());
    println!("query       {}", srv.query_addr());
    println!("fingerprint {fingerprint:#018x}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    let stats = srv.stats();
    let merged = srv.wait()?;
    println!("tuples      {}", stats.tuples_ingested());
    println!("batches     {}", stats.batches_ingested());
    let pool = stats.pool_stats();
    println!(
        "pool        {} allocations, {} reuses",
        pool.allocations, pool.reuses
    );
    println!("self_join   {:.2}", merged.self_join_estimate().value);
    use sketch_sampled_streams::core::DistinctQuery as _;
    println!("distinct    {:.2}", merged.distinct_estimate().value);
    if let Some(path) = snapshot {
        println!("snapshot    {}", path.display());
    }
    Ok(())
}

/// `sss bench-client`: drive a running ingest plane with `--connections`
/// concurrent clients, each sending its deterministic `synth_key` stream
/// in batched pipelined writes ending with a `SYNC` barrier. With
/// `--check` the exact self-join of the generated keys is recomputed
/// locally and the server's estimate must cover it within its Chebyshev
/// interval (a failed check is a typed error and a nonzero exit). With
/// `--shutdown` the server is asked to drain and exit afterwards.
fn run_bench_client(args: &[String]) -> Result<()> {
    let addr = &args[1];
    let cfg = net::LoadConfig {
        connections: arg_value(args, "connections", 1),
        tuples_per_connection: arg_value(args, "tuples", 100_000),
        batch: arg_value(args, "batch", 512),
        domain: arg_value(args, "domain", 10_000),
        seed: arg_value(args, "seed", 7),
    };
    let report = net::run_load(addr.as_str(), &cfg)?;
    println!("connections {}", cfg.connections);
    println!("tuples      {}", report.tuples);
    println!("elapsed     {:.3}s", report.elapsed.as_secs_f64());
    println!("tuples/s    {:.0}", report.tuples_per_sec);
    for (i, tps) in report.per_connection_tps.iter().enumerate() {
        println!("conn{i:<3}     {tps:.0} tuples/s");
    }

    let query_addr = args.iter().find_map(|a| a.strip_prefix("--query-addr="));
    if has_flag(args, "check") {
        let Some(query_addr) = query_addr else {
            eprintln!("error: --check needs --query-addr=<host:port>");
            return Err(Error::CheckFailed {
                what: "bench-client",
                estimate: f64::NAN,
                half_width: f64::NAN,
                exact: f64::NAN,
            });
        };
        // The oracle regenerates the exact tuple streams the load
        // generator sent (synth_key is deterministic in seed /
        // connection / index) and the server's answer must cover the
        // exact self-join within its own stated error bars.
        let mut exact = ExactAggregator::new();
        for conn in 0..cfg.connections as u64 {
            for index in 0..cfg.tuples_per_connection {
                exact.update(net::synth_key(cfg.seed, conn, index, cfg.domain), 1);
            }
        }
        let truth = exact.self_join();
        let mut queries = QueryClient::connect(query_addr)?;
        let line = queries.request("{\"cmd\":\"self_join\",\"confidence\":0.99}")?;
        let estimate = net::protocol::response_f64(&line, "value");
        let half_width = net::protocol::response_f64(&line, "half_width_chebyshev");
        let (Some(estimate), Some(half_width)) = (estimate, half_width) else {
            return Err(Error::CheckFailed {
                what: "self_join response",
                estimate: f64::NAN,
                half_width: f64::NAN,
                exact: truth,
            });
        };
        println!("check       estimate {estimate:.2} ± {half_width:.2}, exact {truth:.2}");
        if (estimate - truth).abs() > half_width {
            return Err(Error::CheckFailed {
                what: "self_join",
                estimate,
                half_width,
                exact: truth,
            });
        }
        println!("check       ok (within chebyshev 99%)");
    }
    if has_flag(args, "shutdown") {
        let Some(query_addr) = query_addr else {
            eprintln!("error: --shutdown needs --query-addr=<host:port>");
            return Err(Error::CheckFailed {
                what: "bench-client",
                estimate: f64::NAN,
                half_width: f64::NAN,
                exact: f64::NAN,
            });
        };
        let mut queries = QueryClient::connect(query_addr)?;
        queries.shutdown()?;
        println!("shutdown    requested");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let depth: usize = arg_value(&args, "depth", 3);
    let width: usize = arg_value(&args, "width", 5000);
    let seed: u64 = arg_value(&args, "seed", 1);
    let p: f64 = arg_value(&args, "p", 1.0);
    // `--confidence` is optional with no default; a malformed or
    // out-of-range level is a usage error, not a silent fallback.
    let confidence = match args.iter().find_map(|a| a.strip_prefix("--confidence=")) {
        None => None,
        Some(v) => match v.parse::<f64>() {
            Ok(level) if level > 0.0 && level < 1.0 => Some(level),
            _ => {
                eprintln!("error: --confidence must be a probability strictly between 0 and 1");
                return usage();
            }
        },
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = JoinSchema::fagms(depth, width, &mut rng);

    // Errors from every layer — I/O, parsing, sampling, sketching — reach
    // this one match as a single `Error`, never as pre-formatted strings.
    let result = match cmd.as_str() {
        "selfjoin" if args.len() >= 2 => run_selfjoin(&args, &schema, p, confidence, &mut rng),
        "join" if args.len() >= 3 => run_join(&args, &schema, p, confidence, &mut rng),
        "topk" if args.len() >= 2 => run_topk(&args, p, seed, confidence),
        "distinct" if args.len() >= 2 => run_distinct(&args, p, seed, confidence),
        "quantiles" if args.len() >= 2 => run_quantiles(&args, p, seed),
        "multi" if args.len() >= 2 => run_multi(&args, p, seed, confidence),
        "save" if args.len() >= 3 && !args[2].starts_with("--") => run_save(&args, &schema),
        "load" if args.len() >= 2 => run_load(&args, confidence),
        "merge-snapshots" if args[1..].iter().filter(|a| !a.starts_with("--")).count() >= 2 => {
            run_merge_snapshots(&args, confidence)
        }
        "serve" => run_serve(&args),
        "bench-client" if args.len() >= 2 && !args[1].starts_with("--") => run_bench_client(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
