//! The workspace-level error type.
//!
//! Completes the error hierarchy from the bottom up: `sss_xi` /
//! `sss_sampling` / `sss_sketch` errors convert into [`sss_core::Error`],
//! core errors into [`sss_stream::StreamError`], and both into this
//! facade [`Error`] — plus the I/O and parsing failures an application
//! (like the `sss` CLI) meets at the edge. Nothing is stringified along
//! the way; the original error stays reachable through
//! [`std::error::Error::source`].

use std::fmt;

/// Any failure an application built on the workspace can hit.
#[derive(Debug)]
pub enum Error {
    /// An estimator-layer failure (invalid probability, schema
    /// mismatch, …).
    Core(sss_core::Error),
    /// A streaming-runtime failure (dead shard, bad configuration, …).
    Stream(sss_stream::StreamError),
    /// A network ingest/query-plane failure (transport, protocol
    /// violation, handshake rejection, …).
    Net(sss_net::NetError),
    /// An acceptance check failed: an estimate's typed interval
    /// excluded the exact answer.
    CheckFailed {
        /// What was being checked.
        what: &'static str,
        /// The estimate under test.
        estimate: f64,
        /// The interval half-width the estimate promised.
        half_width: f64,
        /// The exact value the interval was required to cover.
        exact: f64,
    },
    /// An input file could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// An input token was not an unsigned integer key.
    Parse {
        /// The offending path.
        path: String,
        /// 1-based token index within the file.
        token_index: usize,
        /// The offending token.
        token: String,
    },
    /// An input file contained no keys at all.
    NoKeys {
        /// The offending path.
        path: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "{e}"),
            Error::Stream(e) => write!(f, "{e}"),
            Error::Net(e) => write!(f, "{e}"),
            Error::CheckFailed {
                what,
                estimate,
                half_width,
                exact,
            } => write!(
                f,
                "{what} check failed: {estimate:.2} ± {half_width:.2} excludes exact {exact:.2}"
            ),
            Error::Io { path, source } => write!(f, "cannot read {path}: {source}"),
            Error::Parse {
                path,
                token_index,
                token,
            } => write!(f, "{path}: token {token_index} ({token:?}) is not a u64"),
            Error::NoKeys { path } => write!(f, "{path}: no keys found"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Stream(e) => Some(e),
            Error::Net(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<sss_core::Error> for Error {
    fn from(e: sss_core::Error) -> Self {
        Error::Core(e)
    }
}

impl From<sss_stream::StreamError> for Error {
    fn from(e: sss_stream::StreamError) -> Self {
        Error::Stream(e)
    }
}

impl From<sss_net::NetError> for Error {
    fn from(e: sss_net::NetError) -> Self {
        Error::Net(e)
    }
}

impl From<sss_sketch::Error> for Error {
    fn from(e: sss_sketch::Error) -> Self {
        Error::Core(e.into())
    }
}

impl From<sss_sampling::Error> for Error {
    fn from(e: sss_sampling::Error) -> Self {
        Error::Core(e.into())
    }
}

/// Workspace-level result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_converts_without_stringifying() {
        let from_sampling: Error = sss_sampling::Error::InvalidProbability(-1.0).into();
        assert!(matches!(from_sampling, Error::Core(_)));
        let from_stream: Error = sss_stream::StreamError::ShardDisconnected { shard: 2 }.into();
        assert!(matches!(from_stream, Error::Stream(_)));
        // The source chain bottoms out at the originating error.
        let mut cur: &dyn std::error::Error = &from_stream;
        let mut leaf = cur.to_string();
        while let Some(next) = cur.source() {
            cur = next;
            leaf = cur.to_string();
        }
        assert!(leaf.contains('2'), "leaf error lost its payload: {leaf}");
    }
}
