//! # sketch-sampled-streams
//!
//! Facade crate for the *Sketching Sampled Data Streams* workspace
//! (Rusu & Dobra, ICDE 2009). Re-exports the public API of every subsystem
//! so applications can depend on a single crate:
//!
//! * [`xi`] — limited-independence ±1 families and bucket hashes.
//! * [`sampling`] — Bernoulli / with-replacement / without-replacement
//!   sampling and sampling-only estimators.
//! * [`sketch`] — AGMS, F-AGMS, Count-Min and multiway-join sketches.
//! * [`moments`] — exact expectation/variance formulas, the
//!   sampling/sketch/interaction variance decomposition, planning and
//!   tail bounds.
//! * [`core`] — the combined sketch-over-samples estimators and the
//!   application drivers (load shedding — coin-flip, hash-coordinated and
//!   epoch-based, i.i.d. streams, online aggregation).
//! * [`exact`] — exact streaming aggregates used as ground truth.
//! * [`datagen`] — Zipf, self-similar, correlated-pair and mini-TPC-H
//!   workload generators.
//! * [`stream`] — streaming pipeline substrate: adaptive controllers,
//!   DSMS operator chains, parallel sketching, sliding windows.
//! * [`net`] — the network ingest service: a non-blocking event-loop
//!   TCP front-end decoding length-prefixed batches straight into the
//!   sharded runtime's pooled buffers, plus a line-delimited JSON query
//!   plane served from slim read replicas.
//!
//! See `examples/quickstart.rs` for a five-minute tour.
//!
//! ```
//! use rand::SeedableRng;
//! use sketch_sampled_streams::core::sketch::JoinSchema;
//! use sketch_sampled_streams::core::LoadSheddingSketcher;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let schema = JoinSchema::fagms(1, 5000, &mut rng);
//! let mut sketcher = LoadSheddingSketcher::new(&schema, 0.1, &mut rng).unwrap();
//! for i in 0..100_000u64 {
//!     sketcher.observe(i % 500); // sketch a 10% sample of the stream
//! }
//! let f2 = sketcher.self_join(); // unbiased estimate of the FULL stream's F₂
//! assert!((f2 - 2e7).abs() / 2e7 < 0.1);
//! ```

pub mod error;

pub use error::{Error, Result};
pub use sss_core as core;
pub use sss_datagen as datagen;
pub use sss_exact as exact;
pub use sss_moments as moments;
pub use sss_net as net;
pub use sss_sampling as sampling;
pub use sss_sketch as sketch;
pub use sss_stream as stream;
pub use sss_xi as xi;
