//! Static assertions over the redesigned `Summary` hierarchy — the
//! API-surface contract of the one-pass multi-summary engine and of the
//! two-stage slim-query read path.
//!
//! These tests mostly "run" at compile time: each `fn bound<T: Trait>()`
//! instantiation proves a trait bound holds, so a refactor that silently
//! drops a capability (say, `HyperLogLog: DistinctQuery`) breaks the
//! build here rather than in downstream code. The runtime bodies pin the
//! parts of the contract the type system cannot see: default-method
//! honesty (`supports_retract`, `retract_from`), and that the removed
//! pre-redesign shims stay removed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::{JoinSchema, JoinSketch};
use sketch_sampled_streams::core::{
    DistinctQuery, JoinQuery, MultiSpec, MultiSummary, Portable, QuantileQuery, Sampled,
    SampledMultiSummary, SlimJoin, SlimMultiSummary, SlimQuery, SlimTopK, Summary, TopKQuery,
};
use sketch_sampled_streams::sketch::{CountSketchTopK, HyperLogLog, KllSketch, MisraGries};
use sketch_sampled_streams::stream::{EngineBuilder, ReadReplica, ShardedRuntime, StreamEngine};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// The bound probes. Instantiating `summary::<T>()` is a compile-time
// proof that `T: Summary`; ditto for each capability.
fn summary<T: Summary>() {}
fn join_query<T: JoinQuery>() {}
fn topk_query<T: TopKQuery>() {}
fn distinct_query<T: DistinctQuery>() {}
fn quantile_query<T: QuantileQuery>() {}
fn portable<T: Portable>() {}
fn slim_query<T: SlimQuery>() {}
fn clone_send_static<T: Clone + Send + 'static>() {}

/// Every backend satisfies the base ingestion contract, and `Sampled<S>`
/// preserves it (the sampling lens must ride the sharded runtime exactly
/// like the summary it wraps).
#[test]
fn every_backend_is_a_summary() {
    summary::<JoinSketch>();
    summary::<MisraGries>();
    summary::<CountSketchTopK>();
    summary::<HyperLogLog>();
    summary::<KllSketch>();
    summary::<MultiSummary>();
    summary::<Sampled<JoinSketch>>();
    summary::<Sampled<CountSketchTopK>>();
    summary::<Sampled<HyperLogLog>>();
    summary::<Sampled<KllSketch>>();
    summary::<SampledMultiSummary>();
}

/// Each capability trait is held by exactly the backends that can answer
/// it — and by `MultiSummary`, which holds all four at once (that is the
/// tentpole: one pass, every query family).
#[test]
fn capabilities_land_on_the_right_backends() {
    join_query::<JoinSketch>();
    join_query::<sketch_sampled_streams::sketch::AgmsSketch>();
    join_query::<sketch_sampled_streams::sketch::FagmsSketch>();
    join_query::<sketch_sampled_streams::sketch::CountMinSketch>();
    join_query::<MultiSummary>();

    topk_query::<MisraGries>();
    topk_query::<CountSketchTopK>();
    topk_query::<MultiSummary>();

    distinct_query::<HyperLogLog>();
    distinct_query::<MultiSummary>();

    quantile_query::<KllSketch>();
    quantile_query::<MultiSummary>();
}

/// The capability traits are *standalone* — deliberately not subtraits
/// of `Summary` — so read-only slim replicas can answer queries without
/// carrying the ingestion contract. The compile-time proof: `SlimJoin`,
/// `SlimTopK` and `SlimMultiSummary` hold capabilities although none of
/// them is a `Summary` (they have no `update`, and slim lane aggregates
/// cannot merge: `(a+b)² ≠ a² + b²`). `Summary` itself still requires
/// `Clone + Send + 'static` — the properties the sharded runtime's
/// worker threads and snapshot cache rely on.
#[test]
fn capabilities_are_standalone_and_slim_replicas_hold_them() {
    // Capabilities without `Summary`: these instantiations would not
    // compile if the supertrait bound came back.
    join_query::<SlimJoin>();
    topk_query::<SlimTopK>();
    join_query::<SlimMultiSummary>();
    topk_query::<SlimMultiSummary>();
    distinct_query::<SlimMultiSummary>();
    quantile_query::<SlimMultiSummary>();

    // Slim replicas still cross threads and the wire.
    clone_send_static::<SlimJoin>();
    portable::<SlimJoin>();
    portable::<SlimTopK>();
    portable::<SlimMultiSummary>();

    // The ingestion contract keeps its runtime-facing supertraits.
    fn summary_is_clone_send_static<T: Summary>() {
        clone_send_static::<T>();
    }
    summary_is_clone_send_static::<MultiSummary>();
}

/// Every fat update-side summary projects to a slim read replica, and
/// every summary (fat or slim) has a versioned portable wire form.
#[test]
fn fat_summaries_are_portable_and_project_slim() {
    slim_query::<JoinSketch>();
    slim_query::<MisraGries>();
    slim_query::<CountSketchTopK>();
    slim_query::<HyperLogLog>();
    slim_query::<KllSketch>();
    slim_query::<MultiSummary>();

    portable::<JoinSketch>();
    portable::<MisraGries>();
    portable::<CountSketchTopK>();
    portable::<HyperLogLog>();
    portable::<KllSketch>();
    portable::<MultiSummary>();
}

/// The streaming layer is generic over the hierarchy: the runtime accepts
/// any `Summary`, the engine builder/engine pair carries the summary type
/// through, the join-specific query surface demands `Summary + JoinQuery`,
/// and the slim read path demands `Summary + SlimQuery`.
#[test]
fn streaming_layer_is_generic_over_the_hierarchy() {
    // Pure type-level instantiations — never constructed.
    fn runtime_accepts<E: Summary>() {
        let _ = std::marker::PhantomData::<ShardedRuntime<E>>;
    }
    fn engine_accepts<E: Summary>() {
        let _ = std::marker::PhantomData::<EngineBuilder<E>>;
        let _ = std::marker::PhantomData::<StreamEngine<E>>;
    }
    fn replica_accepts<E: Summary + SlimQuery>() {
        let _ = std::marker::PhantomData::<ReadReplica<E>>;
    }
    runtime_accepts::<HyperLogLog>();
    runtime_accepts::<KllSketch>();
    runtime_accepts::<SampledMultiSummary>();
    engine_accepts::<JoinSketch>();
    engine_accepts::<SampledMultiSummary>();
    replica_accepts::<JoinSketch>();
    replica_accepts::<MultiSummary>();
}

/// The pre-redesign `StreamSummary`/`JoinEstimator` shims are **gone**,
/// not deprecated: `sss_core::summary` carries `compile_fail` doctests
/// proving that `core::StreamSummary` and `core::JoinEstimator` no
/// longer resolve (the assertion lives there because a missing name can
/// only be proven at compile time). What survives is the `SampledTopK`
/// type alias — same type as `Sampled`, behind a deprecation warning —
/// which this body pins at runtime.
#[test]
#[allow(deprecated)]
fn removed_shims_stay_removed() {
    // The alias is the same type, not a lookalike: a value built through
    // the new name is assignable to the old one.
    let mut r = rng(1);
    let sampled: sketch_sampled_streams::core::SampledTopK<MisraGries> =
        Sampled::misra_gries(8, 0.5, &mut r).unwrap();
    assert_eq!(sampled.probability(), 0.5);
}

/// Default-method honesty: a summary that does not override retraction
/// reports `supports_retract() == false` and errors on `retract_from`,
/// while the linear join sketch overrides both. The snapshot cache keys
/// its delta-rebuild path off exactly this pair.
#[test]
fn retraction_contract_defaults_are_honest() {
    let mut r = rng(2);
    let mut hll = HyperLogLog::new(10, &mut r).unwrap();
    let hll2 = hll.clone();
    assert!(!hll.supports_retract());
    assert!(matches!(
        hll.retract_from(&hll2),
        Err(sketch_sampled_streams::core::Error::RetractUnsupported)
    ));

    let mut kll = KllSketch::new(64, &mut r).unwrap();
    let kll2 = kll.clone();
    assert!(!kll.supports_retract());
    assert!(kll.retract_from(&kll2).is_err());

    let spec = MultiSpec::new(JoinSchema::fagms(3, 256, &mut r), &mut r);
    let mut multi = spec.summary().unwrap();
    let multi2 = multi.clone();
    assert!(!multi.supports_retract());
    assert!(multi.retract_from(&multi2).is_err());

    // The linear sketch is the positive control: retraction is exact.
    let schema = JoinSchema::fagms(3, 256, &mut r);
    let mut sk = schema.sketch();
    assert!(sk.supports_retract());
    let mut other = schema.sketch();
    other.update_batch(&[1, 2, 3]);
    sk.merge_from(&other).unwrap();
    sk.retract_from(&other).unwrap();
    let fresh = schema.sketch();
    assert_eq!(sk.self_join().to_bits(), fresh.self_join().to_bits());
}

/// `Estimate`-returning capability queries agree with their scalar
/// counterparts — the typed surface is a superset, not a fork.
#[test]
fn typed_queries_wrap_the_scalar_ones() {
    let mut r = rng(3);
    let spec = MultiSpec::new(JoinSchema::fagms(3, 512, &mut r), &mut r);
    let mut multi = spec.summary().unwrap();
    let keys: Vec<u64> = (0..500u64).map(|i| i % 40).collect();
    multi.update_batch(&keys);

    assert_eq!(multi.self_join_estimate().value, multi.self_join());
    assert_eq!(multi.distinct_estimate().value, multi.distinct());
    assert_eq!(multi.frequency_estimate(7).value, multi.frequency(7));
    let median = multi.quantile(0.5).unwrap();
    let rank_of_median = multi.rank(median as u64);
    assert!((0.0..=1.0).contains(&rank_of_median));
    assert_eq!(multi.stream_len(), keys.len() as u64);
}

/// The slim projection answers the fat summary's query bit-for-bit at
/// projection time: the two-stage read path trades staleness (bounded,
/// and priced into the variance) for bytes, never accuracy at the
/// instant of projection.
#[test]
fn slim_projection_is_bit_identical_at_projection_time() {
    let mut r = rng(4);
    let schema = JoinSchema::fagms(5, 512, &mut r);
    let mut fat = schema.sketch();
    let keys: Vec<u64> = (0..20_000u64).map(|i| (i * 2654435761) % 700).collect();
    fat.update_batch(&keys);
    let slim = fat.slim();
    let fat_est = fat.self_join_estimate();
    let slim_est = slim.self_join_estimate();
    assert_eq!(slim_est.value.to_bits(), fat_est.value.to_bits());
    assert_eq!(slim_est.variance.to_bits(), fat_est.variance.to_bits());
    // And it is the cheaper wire object by construction.
    let fat_bytes = fat.encode().unwrap().len();
    let slim_bytes = slim.encode().unwrap().len();
    assert!(
        slim_bytes * 5 < fat_bytes,
        "slim {slim_bytes} bytes vs fat {fat_bytes} bytes"
    );
}
