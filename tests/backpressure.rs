//! Stress test of the bounded-queue → shedding handoff: saturate a
//! one-shard runtime with a tiny queue and verify the three promises the
//! engine makes under overload — queue occupancy stays bounded, no tuple
//! is silently lost (runtime + shedder account for every one), and the
//! combined estimate stays unbiased because the overflow leg is shedded
//! at a known probability rather than dropped.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::RateGrid;
use sketch_sampled_streams::exact::ExactAggregator;
use sketch_sampled_streams::stream::{ControllerConfig, EngineBuilder};

const BATCHES: usize = 60;
const BATCH: usize = 10_000;
const DOMAIN: u64 = 1_000;

fn stream_key(i: u64) -> u64 {
    (i.wrapping_mul(2654435761)) % DOMAIN
}

/// One overloaded run; returns (estimate, tuples seen by the shedder).
fn overloaded_run(seed: u64) -> (f64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = JoinSchema::fagms(1, 2_048, &mut rng);
    let mut engine = EngineBuilder::new()
        .shards(1)
        .queue_depth(1)
        .seed(seed ^ 0xbacc_0ff5)
        .schema(&schema)
        .shedding(ControllerConfig {
            capacity_tps: 2e4,
            smoothing: 0.5,
            hysteresis: 0.1,
            // Keep p away from the floor where the 1/p variance blowup
            // would swamp the Monte-Carlo mean.
            min_p: 0.05,
            grid: RateGrid::default(),
        })
        .build()
        .unwrap();
    let mut batch = Vec::with_capacity(BATCH);
    for b in 0..BATCHES {
        batch.clear();
        batch.extend(((b * BATCH) as u64..((b + 1) * BATCH) as u64).map(stream_key));
        // Claim the batch arrived in 10 ms: any overflow looks like a
        // flood to the controller and forces aggressive shedding.
        engine.push_batch(&batch, 1e-2).unwrap();
    }
    // Invariant 1: the queue never held more than depth + 1 batches
    // (one in the channel, one in the worker's hands).
    assert!(
        engine.queue_high_water() <= 2,
        "queue high-water {} exceeds depth + 1",
        engine.queue_high_water()
    );
    let shed_seen = engine.shedder().expect("shedding enabled").seen();
    let est = engine.self_join().unwrap();
    (est, shed_seen)
}

#[test]
fn saturated_engine_bounds_memory_and_stays_unbiased() {
    let total = (BATCHES * BATCH) as u64;
    let mut exact = ExactAggregator::new();
    for i in 0..total {
        exact.update(stream_key(i), 1);
    }
    let truth = exact.self_join();

    let reps = 20;
    let mut sum = 0.0;
    let mut shed_total = 0u64;
    for rep in 0..reps {
        let (est, shed_seen) = overloaded_run(1_000 + rep);
        // Invariant 3: each single run is already in the right ballpark.
        assert!(
            (est - truth).abs() / truth < 0.5,
            "rep {rep}: est = {est}, truth = {truth}"
        );
        sum += est;
        shed_total += shed_seen;
    }
    // Invariant 2: overload actually pushed tuples through the shedding
    // leg — otherwise this test exercises nothing.
    assert!(
        shed_total > 0,
        "the saturated queue never overflowed into the shedder"
    );
    let mean = sum / reps as f64;
    assert!(
        (mean - truth).abs() / truth < 0.08,
        "mean over {reps} overloaded runs = {mean}, truth = {truth} \
         (bias beyond Monte-Carlo tolerance)"
    );
}
