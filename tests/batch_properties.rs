//! Property-based tests of the batched update kernels: `update_batch` /
//! `update_batch_counts` must be bit-identical to the sequential per-key
//! path for every sketch backend and ξ family combination, and the
//! skip-sampled `feed_batch` must reproduce `observe` exactly.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::LoadSheddingSketcher;
use sketch_sampled_streams::sketch::{AgmsSchema, CountMinSchema, FagmsSchema, Sketch};
use sketch_sampled_streams::xi::{Cw2, Cw2Bucket, Cw4, Eh3, Tabulation};

fn stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 1..400)
}

/// Signed multiplicities, including negatives (turnstile deletions) and
/// zeros, paired with arbitrary keys.
fn counted_stream() -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((any::<u64>(), -50i64..50), 1..400)
}

/// Feed `keys` through the scalar path into one sketch and through
/// `update_batch` (split into two arbitrary chunks) into another; the
/// counters must agree exactly.
fn check_unit_batch<S: Sketch>(scalar: &mut S, batched: &mut S, keys: &[u64], split: usize) {
    for &k in keys {
        scalar.update(k, 1);
    }
    let split = split.min(keys.len());
    batched.update_batch(&keys[..split]);
    batched.update_batch(&keys[split..]);
}

fn check_counted_batch<S: Sketch>(
    scalar: &mut S,
    batched: &mut S,
    items: &[(u64, i64)],
    split: usize,
) {
    for &(k, c) in items {
        scalar.update(k, c);
    }
    let split = split.min(items.len());
    batched.update_batch_counts(&items[..split]);
    batched.update_batch_counts(&items[split..]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AGMS: the family-major `sign_sum` kernel is bit-identical to the
    /// per-key loop for both a polynomial (CW4) and a non-polynomial
    /// (EH3) sign family.
    #[test]
    fn agms_update_batch_matches_scalar(keys in stream(), split in 0usize..400, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);

        let schema = AgmsSchema::<Cw4>::new(16, &mut rng);
        let (mut scalar, mut batched) = (schema.sketch(), schema.sketch());
        check_unit_batch(&mut scalar, &mut batched, &keys, split);
        prop_assert_eq!(scalar.raw_counters(), batched.raw_counters());

        let schema = AgmsSchema::<Eh3>::new(16, &mut rng);
        let (mut scalar, mut batched) = (schema.sketch(), schema.sketch());
        check_unit_batch(&mut scalar, &mut batched, &keys, split);
        prop_assert_eq!(scalar.raw_counters(), batched.raw_counters());
    }

    /// AGMS with signed counts: `sign_dot` handles negative and zero
    /// multiplicities exactly.
    #[test]
    fn agms_update_batch_counts_matches_scalar(items in counted_stream(), split in 0usize..400, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = AgmsSchema::<Cw2>::new(16, &mut rng);
        let (mut scalar, mut batched) = (schema.sketch(), schema.sketch());
        check_counted_batch(&mut scalar, &mut batched, &items, split);
        prop_assert_eq!(scalar.raw_counters(), batched.raw_counters());
    }

    /// F-AGMS: the fused `signed_scatter` row kernel (CW sign + CW bucket)
    /// and the buffered fallback (non-polynomial sign) are both
    /// bit-identical to the scalar path.
    #[test]
    fn fagms_update_batch_matches_scalar(keys in stream(), split in 0usize..400, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);

        // Polynomial sign × polynomial bucket → fused scatter kernel.
        let schema = FagmsSchema::<Cw4, Cw2Bucket>::new(3, 64, &mut rng);
        let (mut scalar, mut batched) = (schema.sketch(), schema.sketch());
        check_unit_batch(&mut scalar, &mut batched, &keys, split);
        for r in 0..schema.depth() {
            prop_assert_eq!(scalar.row(r), batched.row(r));
        }

        // Pairwise polynomial sign: a different coefficient degree.
        let schema = FagmsSchema::<Cw2, Cw2Bucket>::new(3, 64, &mut rng);
        let (mut scalar, mut batched) = (schema.sketch(), schema.sketch());
        check_unit_batch(&mut scalar, &mut batched, &keys, split);
        for r in 0..schema.depth() {
            prop_assert_eq!(scalar.row(r), batched.row(r));
        }

        // Non-polynomial sign family → generic buffered fallback.
        let schema = FagmsSchema::<Eh3, Cw2Bucket>::new(3, 64, &mut rng);
        let (mut scalar, mut batched) = (schema.sketch(), schema.sketch());
        check_unit_batch(&mut scalar, &mut batched, &keys, split);
        for r in 0..schema.depth() {
            prop_assert_eq!(scalar.row(r), batched.row(r));
        }
    }

    /// F-AGMS with signed counts through the fused counts kernel.
    #[test]
    fn fagms_update_batch_counts_matches_scalar(items in counted_stream(), split in 0usize..400, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = FagmsSchema::<Cw4, Cw2Bucket>::new(4, 32, &mut rng);
        let (mut scalar, mut batched) = (schema.sketch(), schema.sketch());
        check_counted_batch(&mut scalar, &mut batched, &items, split);
        for r in 0..schema.depth() {
            prop_assert_eq!(scalar.row(r), batched.row(r));
        }
    }

    /// Count-Min: the `bucket_scatter` kernel (CW bucket) and the
    /// buffered fallback (tabulation bucket) match the scalar path,
    /// including negative counts.
    #[test]
    fn countmin_update_batch_matches_scalar(
        keys in stream(),
        items in counted_stream(),
        split in 0usize..400,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);

        let schema = CountMinSchema::<Cw2Bucket>::new(3, 64, &mut rng);
        let (mut scalar, mut batched) = (schema.sketch(), schema.sketch());
        check_unit_batch(&mut scalar, &mut batched, &keys, split);
        for r in 0..schema.depth() {
            prop_assert_eq!(scalar.row(r), batched.row(r));
        }

        let schema = CountMinSchema::<Cw2Bucket>::new(3, 64, &mut rng);
        let (mut scalar, mut batched) = (schema.sketch(), schema.sketch());
        check_counted_batch(&mut scalar, &mut batched, &items, split);
        for r in 0..schema.depth() {
            prop_assert_eq!(scalar.row(r), batched.row(r));
        }

        // Non-polynomial bucket family → generic buffered fallback.
        let schema = CountMinSchema::<Tabulation>::new(3, 64, &mut rng);
        let (mut scalar, mut batched) = (schema.sketch(), schema.sketch());
        check_unit_batch(&mut scalar, &mut batched, &keys, split);
        for r in 0..schema.depth() {
            prop_assert_eq!(scalar.row(r), batched.row(r));
        }
    }

    /// Skip-sampled batching: `feed_batch` over arbitrary chunkings of the
    /// stream keeps the same sample, the same counters and therefore the
    /// same estimator value as per-tuple `observe` with an identically
    /// seeded sketcher.
    #[test]
    fn feed_batch_matches_observe(keys in stream(), chunk in 1usize..97, p in 0.01f64..1.0, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = JoinSchema::fagms(2, 32, &mut rng);

        let mut rng_a = StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut scalar = LoadSheddingSketcher::new(&schema, p, &mut rng_a).unwrap();
        let mut batched = LoadSheddingSketcher::new(&schema, p, &mut rng_b).unwrap();

        let mut kept = 0u64;
        for &k in &keys {
            kept += scalar.observe(k) as u64;
        }
        let mut kept_batched = 0u64;
        for chunk in keys.chunks(chunk) {
            kept_batched += batched.feed_batch(chunk);
        }

        prop_assert_eq!(kept, kept_batched);
        prop_assert_eq!(scalar.seen(), batched.seen());
        prop_assert_eq!(scalar.kept(), batched.kept());
        prop_assert_eq!(scalar.self_join(), batched.self_join());
    }
}
