//! End-to-end tests of the `sss` command-line tool.

use std::io::Write;
use std::process::Command;

fn write_keys(path: &std::path::Path, keys: impl IntoIterator<Item = u64>) {
    let mut f = std::fs::File::create(path).unwrap();
    for k in keys {
        writeln!(f, "{k}").unwrap();
    }
}

fn sss() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sss"))
}

#[test]
fn selfjoin_with_exact_reports_error() {
    let dir = std::env::temp_dir().join("sss-cli-test-selfjoin");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("keys.txt");
    write_keys(&file, (0..60_000u64).map(|i| i % 300));
    let out = sss()
        .args([
            "selfjoin",
            file.to_str().unwrap(),
            "--p=0.5",
            "--exact",
            "--seed=7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tuples     60000"), "stdout: {stdout}");
    assert!(
        stdout.contains("exact      12000000.00"),
        "stdout: {stdout}"
    );
    // The reported relative error should be small at p = 0.5 / 5000 buckets.
    let err_line = stdout.lines().find(|l| l.starts_with("rel_error")).unwrap();
    let pct: f64 = err_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .trim_end_matches('%')
        .parse()
        .unwrap();
    assert!(pct < 10.0, "reported error {pct}%");
}

#[test]
fn join_command_runs() {
    let dir = std::env::temp_dir().join("sss-cli-test-join");
    std::fs::create_dir_all(&dir).unwrap();
    let f = dir.join("f.txt");
    let g = dir.join("g.txt");
    write_keys(&f, (0..20_000u64).map(|i| i % 200));
    write_keys(&g, (0..30_000u64).map(|i| i % 300));
    let out = sss()
        .args(["join", f.to_str().unwrap(), g.to_str().unwrap(), "--exact"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Exact join: 200 overlapping keys × 100 × 100 = 2,000,000.
    assert!(stdout.contains("exact      2000000.00"), "stdout: {stdout}");
}

#[test]
fn confidence_flag_prints_both_intervals() {
    let dir = std::env::temp_dir().join("sss-cli-test-confidence");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("keys.txt");
    write_keys(&file, (0..60_000u64).map(|i| i % 300));
    let out = sss()
        .args([
            "selfjoin",
            file.to_str().unwrap(),
            "--p=0.5",
            "--seed=7",
            "--confidence=0.95",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The point estimate is unchanged by the flag, and each bound gets an
    // interval line centered on it.
    let est_line = stdout.lines().find(|l| l.starts_with("estimate")).unwrap();
    let est = est_line.split_whitespace().nth(1).unwrap();
    let intervals: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("interval"))
        .collect();
    assert_eq!(intervals.len(), 2, "stdout: {stdout}");
    assert!(intervals[0].contains("[chebyshev 95%]"), "stdout: {stdout}");
    assert!(intervals[1].contains("[clt 95%]"), "stdout: {stdout}");
    for line in &intervals {
        assert!(line.contains(est), "interval not centered: {line}");
        assert!(line.contains('±'), "no half-width: {line}");
    }

    // A Chebyshev interval is never tighter than the CLT interval at the
    // same level.
    let half = |line: &str| -> f64 {
        line.split('±')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(half(intervals[0]) >= half(intervals[1]), "stdout: {stdout}");

    // Out-of-range and malformed levels are usage errors.
    for bad in ["--confidence=1.5", "--confidence=0", "--confidence=maybe"] {
        let out = sss()
            .args(["selfjoin", file.to_str().unwrap(), bad])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{bad} should be a usage error");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--confidence"),
            "{bad}: stderr should explain the flag"
        );
    }
}

#[test]
fn bad_usage_and_bad_files_fail_cleanly() {
    let out = sss().output().unwrap();
    assert_eq!(out.status.code(), Some(2), "no args → usage");
    let out = sss().args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown command → usage");
    let out = sss()
        .args(["selfjoin", "/definitely/not/a/file"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "missing file → failure");
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // Non-numeric content is rejected with a location.
    let dir = std::env::temp_dir().join("sss-cli-test-bad");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("bad.txt");
    std::fs::write(&file, "1 2 three 4").unwrap();
    let out = sss()
        .args(["selfjoin", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("three"));
}

#[test]
fn topk_reports_heavy_keys_with_recall() {
    let dir = std::env::temp_dir().join("sss-cli-test-topk");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("keys.txt");
    // Key k (0..10) appears 2^(9-k)·50 times: a sharply skewed stream.
    write_keys(
        &file,
        (0..10u64).flat_map(|k| std::iter::repeat(k).take((1usize << (9 - k)) * 50)),
    );
    let out = sss()
        .args([
            "topk",
            file.to_str().unwrap(),
            "--k=3",
            "--p=0.5",
            "--seed=7",
            "--exact",
            "--confidence=0.95",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The heaviest key leads the ranking with its exact count beside it.
    let top1 = stdout.lines().find(|l| l.starts_with("top1")).unwrap();
    assert!(top1.contains("key 0:"), "stdout: {stdout}");
    assert!(stdout.contains("(exact 25600)"), "stdout: {stdout}");
    assert!(stdout.contains("[clt 95%]"), "stdout: {stdout}");
    // On a 2× separated spectrum the sampled top-3 is exact.
    assert!(
        stdout.contains("recall     1.0000 (3/3 of the exact top-3)"),
        "stdout: {stdout}"
    );
}

#[test]
fn distinct_estimates_cardinality() {
    let dir = std::env::temp_dir().join("sss-cli-test-distinct");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("keys.txt");
    // 5000 distinct keys, four occurrences each.
    write_keys(&file, (0..20_000u64).map(|i| i % 5000));
    let out = sss()
        .args([
            "distinct",
            file.to_str().unwrap(),
            "--exact",
            "--confidence=0.95",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exact      5000.00"), "stdout: {stdout}");
    assert!(stdout.contains("[chebyshev 95%]"), "stdout: {stdout}");
    let err_line = stdout.lines().find(|l| l.starts_with("rel_error")).unwrap();
    let pct: f64 = err_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .trim_end_matches('%')
        .parse()
        .unwrap();
    // Precision 12 → ±1.6% standard error; 10% is many sigmas out.
    assert!(pct < 10.0, "reported error {pct}%");
}

#[test]
fn quantiles_report_rank_envelopes() {
    let dir = std::env::temp_dir().join("sss-cli-test-quantiles");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("keys.txt");
    write_keys(&file, 0..100_000u64);
    let out = sss()
        .args(["quantiles", file.to_str().unwrap(), "--exact", "--seed=5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // One line per default quantile, each with an envelope and the truth.
    for q in ["q0.5", "q0.95", "q0.99"] {
        let line = stdout.lines().find(|l| l.starts_with(q)).unwrap();
        assert!(line.contains('∈') && line.contains("(exact "), "{line}");
    }
    // The median of 0..100_000 is ~50_000; rank error 2.296/200^0.9433
    // ≈ 1.6% → the estimate must land within a few thousand.
    let median: f64 = stdout
        .lines()
        .find(|l| l.starts_with("q0.5"))
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!((median - 50_000.0).abs() < 5_000.0, "median {median}");
    // `--at=` narrows the report to the one requested rank.
    let out = sss()
        .args(["quantiles", file.to_str().unwrap(), "--at=0.25"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("q0.25"), "stdout: {stdout}");
    assert!(!stdout.contains("q0.95"), "stdout: {stdout}");
}

#[test]
fn multi_answers_all_families_in_one_pass() {
    let dir = std::env::temp_dir().join("sss-cli-test-multi");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("keys.txt");
    // 1000 background keys × 20, plus key 7 another 20_000 times.
    write_keys(
        &file,
        (0..20_000u64)
            .map(|i| i % 1000)
            .chain(std::iter::repeat(7).take(20_000)),
    );
    let out = sss()
        .args([
            "multi",
            file.to_str().unwrap(),
            "--p=0.5",
            "--k=1",
            "--seed=3",
            "--exact",
            "--confidence=0.95",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Roughly half the stream was sketched, yet every family answers.
    for prefix in ["self_join", "distinct", "median", "p99", "top1"] {
        assert!(
            stdout.lines().any(|l| l.starts_with(prefix)),
            "missing {prefix}: {stdout}"
        );
    }
    assert!(stdout.contains("[chebyshev 95%]"), "stdout: {stdout}");
    let top1 = stdout.lines().find(|l| l.starts_with("top1")).unwrap();
    assert!(top1.contains("key 7:"), "stdout: {stdout}");
    assert!(top1.contains("(exact 20020)"), "stdout: {stdout}");
}

#[test]
fn topk_rejects_p_zero_loudly() {
    let dir = std::env::temp_dir().join("sss-cli-test-topk-p0");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("keys.txt");
    write_keys(&file, 0..100u64);
    // p = 0 must be a loud runtime failure (nothing could ever be
    // sampled), not a silent all-zero answer.
    let out = sss()
        .args(["topk", file.to_str().unwrap(), "--p=0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "p = 0 → runtime failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("probability") && stderr.contains('0'),
        "stderr should name the bad probability: {stderr}"
    );
    // The join paths reject it identically.
    let out = sss()
        .args(["selfjoin", file.to_str().unwrap(), "--p=0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}
