//! Cross-crate integration tests: generators → drivers → estimates →
//! analytical validation, exercising the public facade exactly as a
//! downstream user would.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::analysis::{self, BoundKind};
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::{IidStreamSketcher, LoadSheddingSketcher, ScanSketcher};
use sketch_sampled_streams::datagen::{TpchGenerator, ZipfGenerator};
use sketch_sampled_streams::moments::FrequencyVector;
use sketch_sampled_streams::sampling::without_replacement::PrefixScan;
use sketch_sampled_streams::stream::{OnlineAggregation, ShedderComparison};

#[test]
fn zipf_stream_shedding_keeps_accuracy_at_10_percent() {
    let mut rng = StdRng::seed_from_u64(1);
    let domain = 20_000;
    let stream = ZipfGenerator::new(domain, 1.0).relation(400_000, &mut rng);
    let truth = FrequencyVector::from_keys(stream.iter().copied(), domain).self_join();

    let schema = JoinSchema::fagms(1, 5000, &mut rng);
    let mut full = LoadSheddingSketcher::new(&schema, 1.0, &mut rng).unwrap();
    let mut shed = LoadSheddingSketcher::new(&schema, 0.1, &mut rng).unwrap();
    for &k in &stream {
        full.observe(k);
        shed.observe(k);
    }
    let full_err = (full.self_join() - truth).abs() / truth;
    let shed_err = (shed.self_join() - truth).abs() / truth;
    assert!(full_err < 0.05, "full-stream error {full_err}");
    assert!(shed_err < 0.12, "10%-sample error {shed_err}");
    assert!(shed.kept() < 50_000, "≈10% of the stream should be kept");
}

#[test]
fn predicted_confidence_interval_covers_realized_estimates() {
    let mut rng = StdRng::seed_from_u64(2);
    let domain = 5_000;
    let stream = ZipfGenerator::new(domain, 0.5).relation(100_000, &mut rng);
    let freqs = FrequencyVector::from_keys(stream.iter().copied(), domain);
    let truth = freqs.self_join();

    let schema = JoinSchema::fagms(1, 2000, &mut rng);
    let p = 0.2;
    let moments = analysis::shedding_self_join(&freqs, p, &schema).unwrap();
    let ci = analysis::confidence_interval(truth, &moments, 0.99, BoundKind::Normal);

    // 30 independent runs: nearly all must land inside the 99% interval.
    let mut inside = 0;
    let runs = 30;
    for _ in 0..runs {
        let schema = JoinSchema::fagms(1, 2000, &mut rng);
        let mut shed = LoadSheddingSketcher::new(&schema, p, &mut rng).unwrap();
        for &k in &stream {
            shed.observe(k);
        }
        if ci.contains(shed.self_join()) {
            inside += 1;
        }
    }
    assert!(
        inside >= runs - 3,
        "only {inside}/{runs} runs inside the 99% CI"
    );
}

#[test]
fn tpch_online_aggregation_trajectory_converges() {
    let mut rng = StdRng::seed_from_u64(3);
    let tables = TpchGenerator::new(0.003).generate(&mut rng);
    let truth = tables.lineitem_self_join();

    let schema = JoinSchema::fagms(1, 4000, &mut rng);
    let scan = PrefixScan::new(tables.lineitem.clone(), &mut rng);
    let mut oa = OnlineAggregation::new(&schema, scan.len() as u64, &[0.1, 0.5, 1.0]).unwrap();
    oa.run(scan.tuples().iter().copied()).unwrap();
    let snaps = oa.snapshots();
    assert_eq!(snaps.len(), 3);
    let err10 = (snaps[0].estimate - truth).abs() / truth;
    let err100 = (snaps[2].estimate - truth).abs() / truth;
    assert!(err10 < 0.25, "10% scan error {err10}");
    assert!(err100 < 0.08, "full scan error {err100}");
}

#[test]
fn tpch_join_estimate_from_partial_scans() {
    let mut rng = StdRng::seed_from_u64(4);
    let tables = TpchGenerator::new(0.003).generate(&mut rng);
    let truth = tables.join_size();

    let schema = JoinSchema::fagms(1, 4000, &mut rng);
    let l_scan = PrefixScan::new(tables.lineitem.clone(), &mut rng);
    let o_scan = PrefixScan::new(tables.orders.clone(), &mut rng);
    let mut l = ScanSketcher::new(&schema, l_scan.len() as u64).unwrap();
    let mut o = ScanSketcher::new(&schema, o_scan.len() as u64).unwrap();
    for &k in l_scan.prefix(l_scan.len() / 5).unwrap() {
        l.observe(k).unwrap();
    }
    for &k in o_scan.prefix(o_scan.len() / 5).unwrap() {
        o.observe(k).unwrap();
    }
    let est = l.size_of_join(&o).unwrap();
    assert!(
        (est - truth).abs() / truth < 0.25,
        "20% scans: est {est} vs truth {truth}"
    );
}

#[test]
fn iid_stream_estimates_its_generative_model() {
    let mut rng = StdRng::seed_from_u64(5);
    let domain = 2_000;
    let population = 50_000u64;
    let weights = ZipfGenerator::new(domain, 1.0).expected_frequencies(population);
    let freqs = FrequencyVector::from_counts(weights.clone());
    let model = sketch_sampled_streams::datagen::DiscreteAlias::new(&weights);
    let truth = freqs.self_join();

    let schema = JoinSchema::fagms(1, 4000, &mut rng);
    let mut sketcher = IidStreamSketcher::new(&schema, population).unwrap();
    for _ in 0..(population / 10) {
        sketcher.observe(model.sample(&mut rng));
    }
    let est = sketcher.self_join().unwrap();
    assert!(
        (est - truth).abs() / truth < 0.15,
        "10% i.i.d. stream: {est} vs {truth}"
    );
}

#[test]
fn shedder_comparison_reports_consistent_estimates() {
    let mut rng = StdRng::seed_from_u64(6);
    let stream = ZipfGenerator::new(10_000, 0.8).relation(300_000, &mut rng);
    let cmp = ShedderComparison::new(JoinSchema::fagms(1, 5000, &mut rng));
    let report = cmp.run(&stream, 0.1, &mut rng).unwrap();
    assert!(
        report.estimate_gap() < 0.15,
        "gap {}",
        report.estimate_gap()
    );
    assert!(report.kept < 40_000);
}

/// The paper's three regimes agree with each other on the same data: at a
/// 10% sample each scheme's estimate lands near the truth.
#[test]
fn three_regimes_agree_on_one_relation() {
    let mut rng = StdRng::seed_from_u64(7);
    let domain = 5_000;
    let rel = ZipfGenerator::new(domain, 0.7).relation(100_000, &mut rng);
    let truth = FrequencyVector::from_keys(rel.iter().copied(), domain).self_join();
    let schema = JoinSchema::fagms(1, 5000, &mut rng);

    // Bernoulli 10%.
    let mut shed = LoadSheddingSketcher::new(&schema, 0.1, &mut rng).unwrap();
    for &k in &rel {
        shed.observe(k);
    }
    // WR 10%.
    let mut iid = IidStreamSketcher::new(&schema, rel.len() as u64).unwrap();
    for _ in 0..rel.len() / 10 {
        iid.observe(rel[rand::Rng::random_range(&mut rng, 0..rel.len())]);
    }
    // WOR 10%.
    let scan = PrefixScan::new(rel.clone(), &mut rng);
    let mut wor = ScanSketcher::new(&schema, rel.len() as u64).unwrap();
    for &k in scan.prefix(rel.len() / 10).unwrap() {
        wor.observe(k).unwrap();
    }
    for (name, est) in [
        ("bernoulli", shed.self_join()),
        ("wr", iid.self_join().unwrap()),
        ("wor", wor.self_join().unwrap()),
    ] {
        let rel_err = (est - truth).abs() / truth;
        assert!(rel_err < 0.2, "{name}: error {rel_err}");
    }
}
