//! Property and end-to-end tests for bounded-memory epoch shedding: the
//! compacted [`EpochShedder`] against the uncompacted
//! [`ReferenceEpochShedder`] oracle, the cached query path against the
//! cache-free recomputation, Monte-Carlo unbiasedness under grid-snapped
//! rates, and the bounded-epoch guarantee under a thrashing controller.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::{EpochShedder, RateGrid, ReferenceEpochShedder};
use sketch_sampled_streams::exact::ExactAggregator;
use sketch_sampled_streams::stream::{ControllerConfig, RateController};

/// Dyadic rates: with i64 counters every term of the epoch decomposition
/// (raw/p², (1−p)/p²·kept, 2·cross/(p·q)) is exactly representable in f64,
/// so *any* grouping of the terms — compacted or not, cached or not — must
/// agree bit for bit, not just approximately.
fn dyadic_schedule() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0usize..4, 2..8)
        .prop_map(|picks| picks.iter().map(|&i| [1.0, 0.5, 0.25, 0.125][i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same-p compaction is *exact*: an identically seeded uncompacted
    /// reference (one epoch per rate change) and the compacted shedder
    /// (one epoch per distinct rate) produce bit-identical estimates at
    /// every query point of a randomized dyadic rate schedule — with the
    /// compacted side fed through `feed_batch` at randomized batch
    /// boundaries and the reference fed tuple by tuple.
    #[test]
    fn compacted_equals_reference_bitwise(
        ps in dyadic_schedule(),
        chunk in 1usize..700,
        seed: u64,
    ) {
        let mut r = StdRng::seed_from_u64(seed);
        let schema = JoinSchema::agms(8, &mut r);
        let mut seed_a = StdRng::seed_from_u64(seed ^ 0x9e37);
        let mut seed_b = StdRng::seed_from_u64(seed ^ 0x9e37);
        let mut compact = EpochShedder::new(&schema, ps[0], &mut seed_a).unwrap();
        let mut reference = ReferenceEpochShedder::new(&schema, ps[0], &mut seed_b).unwrap();
        let mut distinct: Vec<f64> = Vec::new();
        for (round, &p) in ps.iter().enumerate() {
            compact.set_probability(p, &mut seed_a).unwrap();
            reference.set_probability(p, &mut seed_b).unwrap();
            if !distinct.contains(&p) {
                distinct.push(p);
            }
            let keys: Vec<u64> = (0..1500u64).map(|i| (i * 7 + round as u64) % 64).collect();
            for batch in keys.chunks(chunk) {
                compact.feed_batch(batch);
            }
            for &k in &keys {
                reference.observe(k);
            }
            prop_assert_eq!(compact.kept(), reference.kept(), "round {}", round);
            prop_assert_eq!(compact.seen(), reference.seen(), "round {}", round);
            // Mid-stream query: cached == uncached == reference, bitwise.
            let cached = compact.self_join().unwrap();
            prop_assert_eq!(cached, compact.self_join_uncached().unwrap(), "round {}", round);
            prop_assert_eq!(cached, reference.self_join().unwrap(), "round {}", round);
        }
        prop_assert_eq!(compact.epoch_count(), distinct.len());
        prop_assert!(reference.epoch_count() >= compact.epoch_count());
    }
}

/// Grid-snapped rates keep the estimator unbiased: the snap changes *which*
/// p is used, never the correctness of the correction applied for it.
#[test]
fn quantized_rates_stay_unbiased() {
    let mut r = StdRng::seed_from_u64(41);
    let grid = RateGrid::default();
    let min_p = 0.01;
    // Relation: 40 keys, key k appears k+1 times. F₂ = Σ (k+1)².
    let truth: f64 = (1..=40u64).map(|f| (f * f) as f64).sum();
    let reps = 500;
    let mut acc = 0.0;
    for rep in 0..reps {
        let schema = JoinSchema::agms(16, &mut r);
        // Three epochs at grid points snapped from off-grid requests.
        let raw = [0.83, 0.31 + (rep % 7) as f64 * 0.05, 0.47];
        let mut shed = EpochShedder::new(&schema, grid.snap(raw[0], min_p), &mut r).unwrap();
        for &want in &raw {
            shed.set_probability(grid.snap(want, min_p), &mut r)
                .unwrap();
            for k in 0..40u64 {
                for _ in 0..=k {
                    shed.observe(k);
                }
            }
        }
        acc += shed.self_join().unwrap();
    }
    let mean = acc / reps as f64;
    // Each key ends with 3(k+1) copies: truth scales by 9.
    let truth = 9.0 * truth;
    assert!(
        (mean - truth).abs() / truth < 0.08,
        "mean = {mean}, truth = {truth}"
    );
}

/// The acceptance property of the tentpole: after ~1000 adaptive rate
/// changes the compacted shedder holds at most `distinct_rate_bound()`
/// epochs while the uncompacted reference has accumulated one per change.
#[test]
fn thousand_rate_changes_stay_within_the_grid_bound() {
    let mut r = StdRng::seed_from_u64(42);
    let schema = JoinSchema::agms(4, &mut r);
    let mut controller = RateController::new(ControllerConfig {
        capacity_tps: 1e4,
        smoothing: 0.5,
        hysteresis: 0.1,
        min_p: 1e-3,
        grid: RateGrid::default(),
    });
    let bound = controller.distinct_rate_bound();
    let mut seed_a = StdRng::seed_from_u64(43);
    let mut seed_b = StdRng::seed_from_u64(43);
    let mut compact = EpochShedder::new(&schema, 1.0, &mut seed_a).unwrap();
    let mut reference = ReferenceEpochShedder::new(&schema, 1.0, &mut seed_b).unwrap();
    for i in 0..1000u64 {
        // Thrash the controller: the arrival rate alternates 100×, far
        // outside the hysteresis band, so p moves on every batch.
        let rate = if i % 2 == 0 { 10_000 } else { 1_000_000 };
        let p = controller.observe_batch(rate, 1.0);
        compact.set_probability(p, &mut seed_a).unwrap();
        reference.set_probability(p, &mut seed_b).unwrap();
        for k in 0..20u64 {
            compact.observe(k);
            reference.observe(k);
        }
    }
    assert!(
        reference.epoch_count() > 500,
        "the thrash must actually change rates (reference has {} epochs)",
        reference.epoch_count()
    );
    assert!(
        compact.epoch_count() <= bound,
        "compacted epochs {} exceed the grid bound {bound}",
        compact.epoch_count()
    );
    // In fact the alternation settles on a handful of grid points.
    assert!(
        compact.epoch_count() <= 8,
        "compacted epochs {} for a two-level thrash",
        compact.epoch_count()
    );
    // And the two still estimate the same stream (same kept sample).
    assert_eq!(compact.kept(), reference.kept());
    assert_eq!(compact.seen(), reference.seen());
}

/// Windowed sanity for the cached path under churn: queries interleaved
/// with epoch switches and batches must track the exact aggregate.
#[test]
fn cached_queries_track_truth_under_churn() {
    let mut r = StdRng::seed_from_u64(44);
    let schema = JoinSchema::fagms(1, 4096, &mut r);
    let grid = RateGrid::default();
    let mut shed = EpochShedder::new(&schema, 1.0, &mut r).unwrap();
    let mut exact = ExactAggregator::new();
    for round in 0..30u64 {
        let p = grid.snap(1.0 / (1.0 + (round % 5) as f64), 0.05);
        shed.set_probability(p, &mut r).unwrap();
        let batch: Vec<u64> = (0..20_000u64).map(|i| (i * 13 + round) % 1000).collect();
        shed.feed_batch(&batch);
        for &k in &batch {
            exact.update(k, 1);
        }
        let est = shed.self_join().unwrap();
        let truth = exact.self_join();
        assert!(
            (est - truth).abs() / truth < 0.15,
            "round {round}: est = {est}, truth = {truth}"
        );
    }
    assert!(shed.epoch_count() <= 5, "five distinct snapped rates");
}
