//! Monte-Carlo coverage of the typed `Estimate` intervals (the acceptance
//! test of the error-bar refactor).
//!
//! For each backend we rebuild the estimator `R` times with fresh random
//! seeds over a fixed skewed stream, ask for a nominal 95% interval, and
//! count how often it covers the exact answer. A correctly calibrated
//! CLT interval covers ≈ 95% of the time; sampling noise over `R` runs
//! puts a 3σ band of `3·√(0.95·0.05/R)` around that, so we assert
//! coverage ≥ nominal − 3σ. The distribution-free Chebyshev interval is
//! strictly conservative and must cover at least as often as the CLT one.
//!
//! The *empirical* variances driving those intervals are cross-validated
//! against the exact `sss-moments` formulas: averaged over the runs they
//! must agree with (or conservatively exceed) the closed forms.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::{LoadSheddingSketcher, Sampled};
use sketch_sampled_streams::exact::ExactAggregator;
use sketch_sampled_streams::moments::engine::{sampling_sjs, sketch_sample_sjs, sketch_sjs};
use sketch_sampled_streams::moments::scheme::Bernoulli;
use sketch_sampled_streams::moments::FrequencyVector;
use sketch_sampled_streams::sampling::bernoulli_self_join_variance;
use sketch_sampled_streams::sketch::{AgmsSchema, Estimate, FagmsSchema, Sketch};

/// Monte-Carlo runs per backend. 3σ of a 95%-coverage indicator over 300
/// runs is ≈ 3.8 points, so the acceptance floor is ≈ 91.2%.
const RUNS: usize = 300;
const LEVEL: f64 = 0.95;

fn floor() -> f64 {
    LEVEL - 3.0 * (LEVEL * (1.0 - LEVEL) / RUNS as f64).sqrt()
}

/// A mildly Zipfian frequency vector: skewed enough to be interesting,
/// concentrated enough that the basic sketch estimators are not heavily
/// skewed (their noise is dominated by symmetric ± cross terms).
fn frequencies() -> Vec<u32> {
    (0..200u32).map(|k| 1 + 200 / (k + 1)).collect()
}

fn exact_self_join(counts: &[u32]) -> f64 {
    counts.iter().map(|&c| (c as f64) * (c as f64)).sum()
}

/// Aggregate the per-run results of one backend.
struct Tally {
    clt_hits: usize,
    chebyshev_hits: usize,
    mean_variance: f64,
}

fn tally(estimates: &[Estimate], truth: f64) -> Tally {
    let clt_hits = estimates
        .iter()
        .filter(|e| e.clt(LEVEL).unwrap().contains(truth))
        .count();
    let chebyshev_hits = estimates
        .iter()
        .filter(|e| e.chebyshev(LEVEL).unwrap().contains(truth))
        .count();
    let mean_variance = estimates.iter().map(|e| e.variance).sum::<f64>() / estimates.len() as f64;
    Tally {
        clt_hits,
        chebyshev_hits,
        mean_variance,
    }
}

fn assert_covers(name: &str, t: &Tally, exact_variance: f64, ratio_low: f64, ratio_high: f64) {
    let clt = t.clt_hits as f64 / RUNS as f64;
    let cheb = t.chebyshev_hits as f64 / RUNS as f64;
    assert!(
        clt >= floor(),
        "{name}: CLT coverage {clt:.3} below floor {:.3}",
        floor()
    );
    assert!(
        cheb >= clt,
        "{name}: Chebyshev coverage {cheb:.3} below CLT coverage {clt:.3}"
    );
    let ratio = t.mean_variance / exact_variance;
    assert!(
        ratio > ratio_low && ratio < ratio_high,
        "{name}: mean empirical variance is {ratio:.2}× the exact sss-moments \
         variance (expected within ({ratio_low}, {ratio_high}))"
    );
}

/// AGMS: mean of 128 independent basic lanes; empirical variance must
/// track Proposition 8 exactly (in expectation).
#[test]
fn agms_intervals_cover_at_nominal_rate() {
    let counts = frequencies();
    let truth = exact_self_join(&counts);
    let exact = sketch_sjs(&FrequencyVector::from_counts(counts.clone()), 128);
    assert_eq!(exact.mean, truth);
    let estimates: Vec<Estimate> = (0..RUNS)
        .map(|run| {
            let mut rng = StdRng::seed_from_u64(1000 + run as u64);
            let schema: AgmsSchema = AgmsSchema::new(128, &mut rng);
            let mut sk = schema.sketch();
            for (k, &c) in counts.iter().enumerate() {
                sk.update(k as u64, c as i64);
            }
            sk.self_join_estimate()
        })
        .collect();
    let t = tally(&estimates, truth);
    // The sample variance of the lanes is an unbiased estimator of the
    // per-lane variance, so the run-averaged ratio should hug 1.
    assert_covers("agms", &t, exact.variance, 0.5, 2.0);
}

/// F-AGMS: median of 11 rows of width 512. The reported variance uses the
/// conservative π/(2·depth) median factor, so it may exceed the per-row
/// mean-equivalent bound but must stay in its vicinity.
#[test]
fn fagms_intervals_cover_at_nominal_rate() {
    let counts = frequencies();
    let truth = exact_self_join(&counts);
    // Each row averages `width` bucketed products; Prop 8 with n = width
    // bounds the per-row variance, and the median of `depth` rows has
    // variance ≈ π/(2·depth) of that.
    let per_row = sketch_sjs(&FrequencyVector::from_counts(counts.clone()), 512);
    let median_ref = per_row.variance * std::f64::consts::PI / (2.0 * 11.0);
    let estimates: Vec<Estimate> = (0..RUNS)
        .map(|run| {
            let mut rng = StdRng::seed_from_u64(2000 + run as u64);
            let schema: FagmsSchema = FagmsSchema::new(11, 512, &mut rng);
            let mut sk = schema.sketch();
            for (k, &c) in counts.iter().enumerate() {
                sk.update(k as u64, c as i64);
            }
            sk.self_join_estimate()
        })
        .collect();
    let t = tally(&estimates, truth);
    // Bucketing collisions add variance the n = width reference ignores,
    // and the median factor is conservative: allow a wider band upward.
    assert_covers("fagms", &t, median_ref, 0.5, 4.0);
}

/// Bernoulli shedder at p = 0.3 over an AGMS sketch: the empirical lane
/// spread plus the sampling plug-in must cover, and on average must be at
/// least the exact Proposition-12-style combined variance (the plug-in is
/// deliberately conservative: F₃ ≤ F₂^{3/2} and shared-sample covariance
/// absorbed upward).
#[test]
fn bernoulli_shedder_intervals_cover_at_nominal_rate() {
    let counts = frequencies();
    let truth = exact_self_join(&counts);
    let p = 0.3;
    let scheme = Bernoulli::new(p).unwrap();
    let exact =
        sketch_sample_sjs(&scheme, &FrequencyVector::from_counts(counts.clone()), 128).unwrap();
    assert!((exact.mean - truth).abs() < 1e-6, "unbiasedness sanity");
    // The replayable tuple stream: key k repeated counts[k] times.
    let stream: Vec<u64> = counts
        .iter()
        .enumerate()
        .flat_map(|(k, &c)| std::iter::repeat(k as u64).take(c as usize))
        .collect();
    let estimates: Vec<Estimate> = (0..RUNS)
        .map(|run| {
            let mut rng = StdRng::seed_from_u64(3000 + run as u64);
            let schema = JoinSchema::agms(128, &mut rng);
            let mut shed = LoadSheddingSketcher::new(&schema, p, &mut rng).unwrap();
            shed.feed_batch(&stream);
            shed.self_join_estimate()
        })
        .collect();
    let t = tally(&estimates, truth);
    assert_covers("bernoulli-shedder", &t, exact.variance, 0.6, 5.0);
}

/// F₀ under Bernoulli sampling: `Sampled<HyperLogLog>` at p = 0.3 against
/// the exact distinct count from `sss-exact`. Two frequency regimes:
///
/// * **High frequency** (every key appears 20×): almost every key survives
///   the sample, the homogeneous plug-in correction is near-exact, and the
///   interval is driven by HyperLogLog's `1.04/√m` error — coverage must
///   sit at the nominal rate.
/// * **Low frequency** (every key appears 3×): the correction is large and
///   its magnitude is priced into the variance as model error, making the
///   interval deliberately conservative — coverage must not drop below the
///   floor (and in practice exceeds nominal).
///
/// Both streams are exactly homogeneous, the one histogram the plug-in
/// models without error, so any coverage miss here indicts the variance
/// accounting rather than the (documented, unavoidable) model bias.
#[test]
fn sampled_distinct_intervals_cover_at_nominal_rate() {
    let p = 0.3;
    for (name, copies, seed_base) in [("f0-high-freq", 20u64, 4000u64), ("f0-low-freq", 3, 5000)] {
        let distinct_keys = 2_000u64;
        let stream: Vec<u64> = (0..distinct_keys)
            .flat_map(|k| std::iter::repeat(k).take(copies as usize))
            .collect();
        let mut exact = ExactAggregator::new();
        for &k in &stream {
            exact.update(k, 1);
        }
        let truth = exact.distinct() as f64;
        assert_eq!(truth, distinct_keys as f64, "exact ground truth sanity");

        let estimates: Vec<Estimate> = (0..RUNS)
            .map(|run| {
                let mut rng = StdRng::seed_from_u64(seed_base + run as u64);
                let mut sampled = Sampled::hyperloglog(12, p, &mut rng).unwrap();
                sampled.feed_batch(&stream);
                sampled.distinct_estimate()
            })
            .collect();
        let clt = estimates
            .iter()
            .filter(|e| e.clt(LEVEL).unwrap().contains(truth))
            .count() as f64
            / RUNS as f64;
        let cheb = estimates
            .iter()
            .filter(|e| e.chebyshev(LEVEL).unwrap().contains(truth))
            .count() as f64
            / RUNS as f64;
        assert!(
            clt >= floor(),
            "{name}: CLT coverage {clt:.3} below floor {:.3}",
            floor()
        );
        assert!(
            cheb >= clt,
            "{name}: Chebyshev coverage {cheb:.3} below CLT coverage {clt:.3}"
        );
        // The point estimate must be honest about where it stands. In the
        // high-frequency regime the plug-in is near-exact, so the mean
        // must land within 10% of the truth. In the low-frequency regime
        // the homogeneous model is *biased* (f̄ = N/D′ overstates the mean
        // frequency because D′ < D, understating the correction) — the
        // contract is that the model-error term in the variance covers
        // that bias, i.e. the truth sits within one reported σ.
        let mean_value = estimates.iter().map(|e| e.value).sum::<f64>() / RUNS as f64;
        let mean_sd = estimates.iter().map(|e| e.variance.sqrt()).sum::<f64>() / RUNS as f64;
        if copies >= 20 {
            assert!(
                (mean_value - truth).abs() / truth < 0.10,
                "{name}: mean corrected F₀ {mean_value:.0} more than 10% from {truth}"
            );
        } else {
            assert!(
                (mean_value - truth).abs() <= mean_sd,
                "{name}: residual bias |{mean_value:.0} − {truth}| exceeds the \
                 reported σ {mean_sd:.0} — the model-error pricing is dishonest"
            );
        }
    }
}

/// The closed-form sampling variance used by the plug-ins agrees with the
/// exact `sss-moments` machinery for the sampling-only estimator.
#[test]
fn closed_form_sampling_variance_matches_moments_engine() {
    let counts = frequencies();
    let f = FrequencyVector::from_counts(counts.clone());
    for p in [0.1, 0.3, 0.5, 0.8] {
        let scheme = Bernoulli::new(p).unwrap();
        let exact = sampling_sjs(&scheme, &f).unwrap();
        let f1: f64 = counts.iter().map(|&c| c as f64).sum();
        let f2: f64 = counts.iter().map(|&c| (c as f64).powi(2)).sum();
        let f3: f64 = counts.iter().map(|&c| (c as f64).powi(3)).sum();
        let closed = bernoulli_self_join_variance(p, f1, f2, f3);
        assert!(
            (closed - exact.variance).abs() <= 1e-9 * exact.variance.abs().max(1.0),
            "p = {p}: closed form {closed} vs engine {}",
            exact.variance
        );
    }
}
