//! Property tests for the typed [`Estimate`] query path: every public
//! query surface must report an `Estimate` whose **value is bit-identical**
//! to the legacy scalar query, whose intervals are centered on that value,
//! and whose Chebyshev interval is never tighter than the CLT interval at
//! the same confidence level.
//!
//! [`Estimate`]: sketch_sampled_streams::core::Estimate

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::{EpochShedder, JoinQuery, LoadSheddingSketcher};
use sketch_sampled_streams::sketch::{AgmsSchema, CountMinSchema, Estimate, FagmsSchema};
use sketch_sampled_streams::stream::{parallel_shed, EngineBuilder, RuntimeConfig, ShardedRuntime};

/// Shared coherence checks: finite-value intervals centered on the point
/// estimate, Chebyshev at least as wide as CLT.
fn assert_coherent(e: &Estimate) {
    assert!(e.value.is_finite());
    for level in [0.5, 0.9, 0.99] {
        let cheb = e.chebyshev(level).unwrap();
        let clt = e.clt(level).unwrap();
        assert!(cheb.contains(e.value));
        assert!(clt.contains(e.value));
        assert!(
            cheb.half_width() >= clt.half_width(),
            "chebyshev {} < clt {} at level {level}",
            cheb.half_width(),
            clt.half_width()
        );
    }
}

/// A small but non-degenerate key stream: `len` keys over `domain` values.
fn keys(len: usize, domain: u64) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0..domain, 1..len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Typed sketch estimates (AGMS mean, F-AGMS median, Count-Min min)
    /// carry the scalar values bit for bit.
    #[test]
    fn sketch_estimates_are_bit_identical(
        seed in 0u64..1000,
        f in keys(400, 64),
        g in keys(400, 64),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let agms: AgmsSchema = AgmsSchema::new(16, &mut rng);
        let fagms: FagmsSchema = FagmsSchema::new(3, 32, &mut rng);
        let cm: CountMinSchema = CountMinSchema::new(3, 32, &mut rng);

        let (mut af, mut ag) = (agms.sketch(), agms.sketch());
        let (mut ff, mut fg) = (fagms.sketch(), fagms.sketch());
        let (mut cf, mut cg) = (cm.sketch(), cm.sketch());
        for &k in &f {
            sketch_sampled_streams::sketch::Sketch::update(&mut af, k, 1);
            sketch_sampled_streams::sketch::Sketch::update(&mut ff, k, 1);
            sketch_sampled_streams::sketch::Sketch::update(&mut cf, k, 1);
        }
        for &k in &g {
            sketch_sampled_streams::sketch::Sketch::update(&mut ag, k, 1);
            sketch_sampled_streams::sketch::Sketch::update(&mut fg, k, 1);
            sketch_sampled_streams::sketch::Sketch::update(&mut cg, k, 1);
        }

        // Inherent methods.
        prop_assert_eq!(af.self_join_estimate().value.to_bits(), af.self_join().to_bits());
        prop_assert_eq!(ff.self_join_estimate().value.to_bits(), ff.self_join().to_bits());
        prop_assert_eq!(cf.self_join_estimate().value.to_bits(), cf.self_join().to_bits());
        prop_assert_eq!(
            af.size_of_join_estimate(&ag).unwrap().value.to_bits(),
            af.size_of_join(&ag).unwrap().to_bits()
        );
        prop_assert_eq!(
            ff.size_of_join_estimate(&fg).unwrap().value.to_bits(),
            ff.size_of_join(&fg).unwrap().to_bits()
        );
        prop_assert_eq!(
            cf.size_of_join_estimate(&cg).unwrap().value.to_bits(),
            cf.size_of_join(&cg).unwrap().to_bits()
        );

        // Trait methods agree with the inherent ones.
        prop_assert_eq!(
            JoinQuery::self_join_estimate(&af).value.to_bits(),
            JoinQuery::self_join(&af).to_bits()
        );
        prop_assert_eq!(
            JoinQuery::self_join_estimate(&cf).value.to_bits(),
            JoinQuery::self_join(&cf).to_bits()
        );

        assert_coherent(&af.self_join_estimate());
        assert_coherent(&ff.self_join_estimate());
        assert_coherent(&af.size_of_join_estimate(&ag).unwrap());
    }

    /// Shedding drivers: `LoadSheddingSketcher` and `EpochShedder` (with
    /// rate changes mid-stream) report bit-identical typed values.
    #[test]
    fn shedder_estimates_are_bit_identical(
        seed in 0u64..1000,
        stream in keys(600, 50),
        p in 0.2f64..1.0,
        fagms in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = if fagms {
            JoinSchema::fagms(2, 64, &mut rng)
        } else {
            JoinSchema::agms(24, &mut rng)
        };

        let mut shed = LoadSheddingSketcher::new(&schema, p, &mut rng).unwrap();
        let mut other = LoadSheddingSketcher::new(&schema, 1.0, &mut rng).unwrap();
        for &k in &stream {
            shed.observe(k);
            other.observe(k);
        }
        let e = shed.self_join_estimate();
        prop_assert_eq!(e.value.to_bits(), shed.self_join().to_bits());
        assert_coherent(&e);
        let ej = shed.size_of_join_estimate(&other).unwrap();
        prop_assert_eq!(ej.value.to_bits(), shed.size_of_join(&other).unwrap().to_bits());
        assert_coherent(&ej);

        // Epoch shedder with a mid-stream rate change.
        let mut epochs = EpochShedder::new(&schema, p, &mut rng).unwrap();
        let mut epochs2 = EpochShedder::new(&schema, 1.0, &mut rng).unwrap();
        let half = stream.len() / 2;
        epochs.feed_batch(&stream[..half]);
        epochs.set_probability((p * 0.7).max(0.05), &mut rng).unwrap();
        epochs.feed_batch(&stream[half..]);
        epochs2.feed_batch(&stream);
        let ee = epochs.self_join_estimate().unwrap();
        prop_assert_eq!(ee.value.to_bits(), epochs.self_join().unwrap().to_bits());
        assert_coherent(&ee);
        let ej = epochs.size_of_join_estimate(&epochs2).unwrap();
        prop_assert_eq!(ej.value.to_bits(), epochs.size_of_join(&epochs2).unwrap().to_bits());
        assert_coherent(&ej);
        let es = epochs
            .size_of_join_sketch_estimate(other.sketch(), 1.0)
            .unwrap();
        prop_assert_eq!(
            es.value.to_bits(),
            epochs.size_of_join_sketch(other.sketch(), 1.0).unwrap().to_bits()
        );
    }

    /// The stream layer: sharded runtime and the full engine (with and
    /// without an overflow-shedding leg) report bit-identical typed
    /// values, and `parallel_shed` matches its scalar correction.
    #[test]
    fn stream_layer_estimates_are_bit_identical(
        seed in 0u64..1000,
        stream in keys(800, 80),
        shards in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = JoinSchema::fagms(2, 128, &mut rng);

        // Sharded runtime: estimate answered on the combined sketch.
        let config = RuntimeConfig { shards, ..Default::default() };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let mut rt2 = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        for chunk in stream.chunks(97) {
            rt.push(chunk).unwrap();
            rt2.push(chunk).unwrap();
        }
        let mut seq = schema.sketch();
        seq.update_batch(&stream);
        let e = rt.self_join_estimate().unwrap();
        prop_assert_eq!(e.value.to_bits(), seq.raw_self_join().to_bits());
        assert_coherent(&e);
        let ej = rt.size_of_join_estimate(&rt2).unwrap();
        prop_assert_eq!(ej.value.to_bits(), seq.raw_self_join().to_bits());

        // Engine without shedding: typed value = scalar value.
        let mut engine = EngineBuilder::new()
            .shards(shards)
            .schema(&schema)
            .build()
            .unwrap();
        engine.push_batch(&stream, 1.0).unwrap();
        let e = engine.self_join_estimate().unwrap();
        prop_assert_eq!(e.value.to_bits(), engine.self_join().unwrap().to_bits());

        // Engine with a saturated shedding leg.
        let mut overloaded = EngineBuilder::new()
            .shards(1)
            .queue_depth(1)
            .seed(seed)
            .schema(&schema)
            .shedding(Default::default())
            .build()
            .unwrap();
        for chunk in stream.chunks(61) {
            overloaded.push_batch(chunk, 1e-6).unwrap();
        }
        let e = overloaded.self_join_estimate().unwrap();
        prop_assert_eq!(e.value.to_bits(), overloaded.self_join().unwrap().to_bits());
        assert_coherent(&e);
        let ej = overloaded.size_of_join_estimate(&engine).unwrap();
        prop_assert_eq!(
            ej.value.to_bits(),
            overloaded.size_of_join(&engine).unwrap().to_bits()
        );

        // One-shot parallel shedding.
        let r = parallel_shed(&schema, &stream, 0.5, shards, &mut rng).unwrap();
        prop_assert_eq!(r.self_join_estimate().value.to_bits(), r.self_join().to_bits());
    }
}
