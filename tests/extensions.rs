//! Integration tests for the engineering extensions: the pieces beyond the
//! paper's core estimators, exercised together through the public facade.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::{CoordinatedShedder, EpochShedder, RateGrid};
use sketch_sampled_streams::datagen::ZipfGenerator;
use sketch_sampled_streams::exact::ExactAggregator;
use sketch_sampled_streams::moments::planning;
use sketch_sampled_streams::moments::scheme::Bernoulli;
use sketch_sampled_streams::moments::FrequencyVector;
use sketch_sampled_streams::sketch::multiway::{chain_join, MultiwaySchema, Side};
use sketch_sampled_streams::stream::{ControllerConfig, EngineBuilder, RateController};
use sketch_sampled_streams::xi::Eh3;

/// Coordinated shedding on a turnstile stream agrees with the exact
/// aggregator on the surviving data.
#[test]
fn coordinated_shedding_tracks_the_net_stream() {
    let mut rng = StdRng::seed_from_u64(1);
    let schema = JoinSchema::fagms(1, 4096, &mut rng);
    let mut shed = CoordinatedShedder::new(&schema, 0.3, &mut rng).unwrap();
    let mut exact = ExactAggregator::new();
    let gen = ZipfGenerator::new(2_000, 0.8);
    let inserts: Vec<u64> = gen.relation(200_000, &mut rng);
    for (id, &k) in inserts.iter().enumerate() {
        shed.observe(id as u64, k, 1);
        exact.update(k, 1);
    }
    // Delete a third of the tuples (same ids).
    for (id, &k) in inserts.iter().enumerate().filter(|(i, _)| i % 3 == 0) {
        shed.observe(id as u64, k, -1);
        exact.update(k, -1);
    }
    let truth = exact.self_join();
    let est = shed.self_join();
    assert!(
        (est - truth).abs() / truth < 0.1,
        "est = {est}, truth = {truth}"
    );
}

/// The DSMS engine end to end: filter → map → sharded runtime with an
/// overflow shedder, with the estimate validated against the exact
/// post-transform stream. A tiny queue guarantees the overflow leg is
/// actually exercised.
#[test]
fn engine_estimate_matches_exact_under_overload() {
    fn keep_small(k: u64) -> bool {
        k < 1_500
    }
    fn bucketize(k: u64) -> u64 {
        k / 3
    }
    let mut rng = StdRng::seed_from_u64(2);
    let schema = JoinSchema::fagms(1, 4096, &mut rng);
    let mut engine = EngineBuilder::new()
        .filter("small", keep_small)
        .map("bucket", bucketize)
        .shards(1)
        .queue_depth(1)
        .seed(2)
        .schema(&schema)
        .shedding(ControllerConfig {
            capacity_tps: 50_000.0,
            smoothing: 0.5,
            hysteresis: 0.1,
            min_p: 0.05,
            grid: RateGrid::default(),
        })
        .build()
        .unwrap();
    let mut exact = ExactAggregator::new();
    let gen = ZipfGenerator::new(3_000, 0.5);
    for _ in 0..40 {
        let batch = gen.relation(100_000, &mut rng);
        engine.push_batch(&batch, 1e-2).unwrap();
        for &k in &batch {
            if keep_small(k) {
                exact.update(bucketize(k), 1);
            }
        }
    }
    assert!(
        engine.queue_high_water() <= 2,
        "bounded queue must never hold more than depth + 1 batches"
    );
    let est = engine.self_join().unwrap();
    let truth = exact.self_join();
    assert!(
        (est - truth).abs() / truth < 0.1,
        "est = {est}, truth = {truth}"
    );
}

/// Epoch shedding with rates driven by a controller stays unbiased over a
/// bursty schedule (the adaptive_shedding example, as an assertion).
#[test]
fn controller_plus_epochs_is_unbiased_over_bursts() {
    let mut rng = StdRng::seed_from_u64(3);
    let schema = JoinSchema::fagms(1, 5000, &mut rng);
    let mut controller = RateController::new(ControllerConfig {
        capacity_tps: 1_000_000.0,
        smoothing: 0.5,
        hysteresis: 0.15,
        min_p: 1e-3,
        grid: RateGrid::default(),
    });
    let mut shedder = EpochShedder::new(&schema, 1.0, &mut rng).unwrap();
    let mut exact = ExactAggregator::new();
    let gen = ZipfGenerator::new(5_000, 0.6);
    for (rate, batches) in [(5e5, 5), (2e7, 5), (5e5, 5)] {
        for _ in 0..batches {
            let batch = gen.relation(100_000, &mut rng);
            let p = controller.observe_batch(rate as u64, 1.0);
            shedder.set_probability(p, &mut rng).unwrap();
            for &k in &batch {
                shedder.observe(k);
                exact.update(k, 1);
            }
        }
    }
    assert!(
        shedder.epoch_count() >= 2,
        "the burst must open a new epoch"
    );
    let est = shedder.self_join().unwrap();
    let truth = exact.self_join();
    assert!(
        (est - truth).abs() / truth < 0.1,
        "est = {est}, truth = {truth}"
    );
}

/// The planner's recommended sketch size actually delivers its target on a
/// real (simulated) run.
#[test]
fn planner_sizes_a_real_sketch_correctly() {
    let mut rng = StdRng::seed_from_u64(4);
    let profile = FrequencyVector::from_counts(vec![50u32; 2_000]);
    let scheme = Bernoulli::new(0.2).unwrap();
    let target = 0.08;
    let n = planning::averages_for_error(&scheme, &profile, target)
        .unwrap()
        .expect("achievable");
    // Build exactly the recommended sketch and measure over repetitions.
    let truth = profile.self_join();
    let reps = 60;
    let mut sq_err = 0.0;
    for _ in 0..reps {
        let schema = JoinSchema::fagms(1, n, &mut rng);
        let mut shed =
            sketch_sampled_streams::core::LoadSheddingSketcher::new(&schema, 0.2, &mut rng)
                .unwrap();
        for key in 0..2_000u64 {
            for _ in 0..50 {
                shed.observe(key);
            }
        }
        let rel = (shed.self_join() - truth) / truth;
        sq_err += rel * rel;
    }
    let rmse = (sq_err / reps as f64).sqrt();
    // F-AGMS beats the AGMS-based bound in practice; allow 1.5× slack for
    // measurement noise, but the planner must be in the right regime.
    assert!(
        rmse < 1.5 * target,
        "planned n = {n}: rmse {rmse} vs target {target}"
    );
}

/// Multiway chain join composed with range-summable EH3 unary endpoints:
/// the extensions interoperate.
#[test]
fn multiway_join_with_range_loaded_endpoint() {
    let mut rng = StdRng::seed_from_u64(5);
    let truth_join = {
        // F: keys 0..1000 ×1 (loaded via one range update);
        // G: (a, a % 50) for a in 0..1000; H: keys 0..50 ×2.
        // Every G row joins F once and H twice → 1000 × 1 × 2.
        2_000.0
    };
    let reps = 400;
    let mut acc = 0.0;
    for _ in 0..reps {
        let schema = MultiwaySchema::<Eh3>::new(16, &mut rng);
        let mut f = schema.unary(Side::Left);
        let mut g = schema.binary();
        let mut h = schema.unary(Side::Right);
        for a in 0..1000u64 {
            f.update(a, 1);
            g.update(a, a % 50, 1);
        }
        for b in 0..50u64 {
            h.update(b, 2);
        }
        acc += chain_join(&f, &g, &h).unwrap();
    }
    let mean = acc / reps as f64;
    assert!(
        (mean - truth_join).abs() / truth_join < 0.15,
        "mean = {mean}, truth = {truth_join}"
    );
}
