//! Property-based bit-identity tests for the `sss_xi::kernels` fast paths:
//! every batched entry point — chunked and, when compiled with
//! `--features simd` and running on a host with AVX2, the vectorized path
//! behind [`Dispatch::get`] — must agree **exactly** with the per-key
//! scalar reference for all sign and bucket families, on arbitrary keys
//! and signed counts, including empty batches and lengths that are not a
//! multiple of the kernel width (tails).
//!
//! Run both ways; the suite is the same, only the dispatch outcome moves:
//!
//! ```text
//! cargo test --test kernel_identity
//! cargo test --test kernel_identity --features simd
//! ```

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::xi::kernels::{self, Dispatch};
use sketch_sampled_streams::xi::{BucketFamily, Cw2, Cw2Bucket, Cw4, Eh3, SignFamily, Tabulation};

/// Arbitrary keys; `0..200` covers empty batches and every tail length
/// modulo the width-8 chunking.
fn keys_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..200)
}

/// Keys with signed multiplicities (turnstile deletions and zeros).
fn items_strategy() -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((any::<u64>(), -50i64..50), 0..200)
}

/// Both dispatch outcomes to pin: the portable chunked path, and whatever
/// the runtime probe picked (equal to chunked without `--features simd`,
/// the AVX2 path with it on a supporting host).
fn paths() -> [Dispatch; 2] {
    [Dispatch::chunked(), Dispatch::get()]
}

/// All fast sign paths of a polynomial (Carter–Wegman) family against the
/// per-key scalar loop.
fn check_poly_sign<F: SignFamily>(
    f: &F,
    keys: &[u64],
    items: &[(u64, i64)],
) -> Result<(), TestCaseError> {
    let coeffs = f.poly_coeffs().expect("CW family is polynomial");
    let sum: i64 = keys.iter().map(|&k| f.sign(k)).sum();
    let dot: i64 = items.iter().map(|&(k, c)| f.sign(k) * c).sum();
    let signs: Vec<i64> = keys.iter().map(|&k| f.sign(k)).collect();
    prop_assert_eq!(kernels::sign_sum_chunked(coeffs, keys), sum);
    prop_assert_eq!(kernels::sign_dot_chunked(coeffs, items), dot);
    for d in paths() {
        prop_assert_eq!(kernels::sign_sum(d, coeffs, keys), sum);
        prop_assert_eq!(kernels::sign_dot(d, coeffs, items), dot);
        let mut out = vec![0i64; keys.len()];
        kernels::sign_batch(d, coeffs, keys, &mut out);
        prop_assert_eq!(&out, &signs);
    }
    // The trait overrides route through Dispatch::get(); pin them too.
    prop_assert_eq!(f.sign_sum(keys), sum);
    prop_assert_eq!(f.sign_dot(items), dot);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CW2 and CW4 sign kernels: chunked and dispatched paths equal the
    /// scalar polynomial evaluation, bit for bit.
    #[test]
    fn cw_sign_kernels_are_bit_identical(
        keys in keys_strategy(),
        items in items_strategy(),
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cw2 = <Cw2 as SignFamily>::random(&mut rng);
        check_poly_sign(&cw2, &keys, &items)?;
        let cw4 = <Cw4 as SignFamily>::random(&mut rng);
        check_poly_sign(&cw4, &keys, &items)?;
    }

    /// EH3 sign kernels: the fused popcount-parity evaluation equals the
    /// per-key `sign()` definition on every path.
    #[test]
    fn eh3_sign_kernels_are_bit_identical(
        keys in keys_strategy(),
        items in items_strategy(),
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = <Eh3 as SignFamily>::random(&mut rng);
        let (s0, s) = f.seeds();
        let sum: i64 = keys.iter().map(|&k| f.sign(k)).sum();
        let dot: i64 = items.iter().map(|&(k, c)| f.sign(k) * c).sum();
        let signs: Vec<i64> = keys.iter().map(|&k| f.sign(k)).collect();
        prop_assert_eq!(kernels::eh3_sign_sum_chunked(s0, s, &keys), sum);
        prop_assert_eq!(kernels::eh3_sign_dot_chunked(s0, s, &items), dot);
        for d in paths() {
            prop_assert_eq!(kernels::eh3_sign_sum(d, s0, s, &keys), sum);
            prop_assert_eq!(kernels::eh3_sign_dot(d, s0, s, &items), dot);
            let mut out = vec![0i64; keys.len()];
            kernels::eh3_sign_batch(d, s0, s, &keys, &mut out);
            prop_assert_eq!(&out, &signs);
        }
        prop_assert_eq!(f.sign_sum(&keys), sum);
        prop_assert_eq!(f.sign_dot(&items), dot);
    }

    /// Tabulation sign kernels: the table-major 8-lane traversal equals
    /// the per-key XOR chain (tabulation has no SIMD arm by design).
    #[test]
    fn tabulation_sign_kernels_are_bit_identical(
        keys in keys_strategy(),
        items in items_strategy(),
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = <Tabulation as SignFamily>::random(&mut rng);
        let sum: i64 = keys.iter().map(|&k| SignFamily::sign(&f, k)).sum();
        let dot: i64 = items.iter().map(|&(k, c)| SignFamily::sign(&f, k) * c).sum();
        let signs: Vec<i64> = keys.iter().map(|&k| SignFamily::sign(&f, k)).collect();
        prop_assert_eq!(kernels::tab_sign_sum(f.tables(), &keys), sum);
        prop_assert_eq!(kernels::tab_sign_dot(f.tables(), &items), dot);
        let mut out = vec![0i64; keys.len()];
        kernels::tab_sign_batch(f.tables(), &keys, &mut out);
        prop_assert_eq!(&out, &signs);
        prop_assert_eq!(f.sign_sum(&keys), sum);
        prop_assert_eq!(f.sign_dot(&items), dot);
    }

    /// Both bucket families: batched bucket computation equals the per-key
    /// `bucket()` on every path, for widths from degenerate to large.
    #[test]
    fn bucket_kernels_are_bit_identical(
        keys in keys_strategy(),
        width in 1usize..5000,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cwb = <Cw2Bucket as BucketFamily>::random(&mut rng);
        let coeffs = cwb.poly_coeffs().expect("CW bucket family is polynomial");
        let expect: Vec<usize> = keys.iter().map(|&k| cwb.bucket(k, width)).collect();
        for d in paths() {
            let mut out = vec![0usize; keys.len()];
            kernels::bucket_batch(d, coeffs, width, &keys, &mut out);
            prop_assert_eq!(&out, &expect);
        }
        let mut out = vec![0usize; keys.len()];
        cwb.bucket_batch(&keys, width, &mut out);
        prop_assert_eq!(&out, &expect);

        let tab = <Tabulation as BucketFamily>::random(&mut rng);
        let expect: Vec<usize> = keys
            .iter()
            .map(|&k| BucketFamily::bucket(&tab, k, width))
            .collect();
        let mut out = vec![0usize; keys.len()];
        kernels::tab_bucket_batch(tab.tables(), width, &keys, &mut out);
        prop_assert_eq!(&out, &expect);
    }

    /// The fused sign+bucket scatter kernels (the F-AGMS / Count-Min row
    /// update) leave counter state byte-identical to the per-key loop —
    /// these route through `Dispatch::get()` internally, so under
    /// `--features simd` this exercises the AVX2 pair-evaluation end to
    /// end.
    #[test]
    fn scatter_kernels_are_bit_identical(
        keys in keys_strategy(),
        items in items_strategy(),
        width in 1usize..3000,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sign = <Cw4 as SignFamily>::random(&mut rng);
        let bucket = <Cw2Bucket as BucketFamily>::random(&mut rng);
        let sc = sign.poly_coeffs().expect("CW4 is polynomial");
        let bc = bucket.poly_coeffs().expect("CW bucket family is polynomial");

        let mut expect = vec![0i64; width];
        for &k in &keys {
            expect[bucket.bucket(k, width)] += sign.sign(k);
        }
        let mut got = vec![0i64; width];
        kernels::signed_scatter(Dispatch::get(), sc, bc, width, &keys, &mut got);
        prop_assert_eq!(&got, &expect);

        let mut expect = vec![0i64; width];
        for &(k, c) in &items {
            expect[bucket.bucket(k, width)] += sign.sign(k) * c;
        }
        let mut got = vec![0i64; width];
        kernels::signed_scatter_counts(Dispatch::get(), sc, bc, width, &items, &mut got);
        prop_assert_eq!(&got, &expect);

        let mut expect = vec![0i64; width];
        for &k in &keys {
            expect[bucket.bucket(k, width)] += 1;
        }
        let mut got = vec![0i64; width];
        kernels::bucket_scatter(Dispatch::get(), bc, width, &keys, &mut got);
        prop_assert_eq!(&got, &expect);
    }
}
