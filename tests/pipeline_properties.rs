//! Property-based tests of the operational pipeline: sketch linearity,
//! driver bookkeeping, and estimator consistency on arbitrary streams.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::JoinSchema;
use sketch_sampled_streams::core::{LoadSheddingSketcher, ScanSketcher};
use sketch_sampled_streams::sampling::estimators;
use sketch_sampled_streams::sampling::SampleCounts;
use sketch_sampled_streams::sketch::{AgmsSchema, FagmsSchema, Sketch};
use sketch_sampled_streams::xi::{Cw2Bucket, Cw4};

fn stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..500, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Linearity: sketching a stream equals merging sketches of any split
    /// of it, for both backends.
    #[test]
    fn sketches_are_linear(keys in stream(), split in 0usize..400, seed: u64) {
        let split = split.min(keys.len());
        let mut rng = StdRng::seed_from_u64(seed);

        let agms = AgmsSchema::<Cw4>::new(8, &mut rng);
        let mut whole = agms.sketch();
        let mut left = agms.sketch();
        let mut right = agms.sketch();
        for (i, &k) in keys.iter().enumerate() {
            whole.update(k, 1);
            if i < split { left.update(k, 1) } else { right.update(k, 1) }
        }
        left.merge(&right).unwrap();
        prop_assert_eq!(left.raw_counters(), whole.raw_counters());

        let fagms = FagmsSchema::<Cw4, Cw2Bucket>::new(2, 32, &mut rng);
        let mut whole = fagms.sketch();
        let mut left = fagms.sketch();
        let mut right = fagms.sketch();
        for (i, &k) in keys.iter().enumerate() {
            whole.update(k, 1);
            if i < split { left.update(k, 1) } else { right.update(k, 1) }
        }
        left.merge(&right).unwrap();
        prop_assert_eq!(left.self_join(), whole.self_join());
    }

    /// Insertions followed by matching deletions return every sketch to
    /// the empty state (turnstile correctness).
    #[test]
    fn deletions_cancel_insertions(keys in stream(), seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = FagmsSchema::<Cw4, Cw2Bucket>::new(3, 16, &mut rng);
        let mut s = schema.sketch();
        for &k in &keys { s.update(k, 2); }
        for &k in &keys { s.update(k, -2); }
        prop_assert_eq!(s.self_join(), 0.0);
    }

    /// The load shedder never sketches more tuples than it sees and its
    /// p = 1 estimate equals the raw sketch estimate exactly.
    #[test]
    fn shedder_bookkeeping(keys in stream(), seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = JoinSchema::agms(4, &mut rng);
        let mut shed = LoadSheddingSketcher::new(&schema, 0.5, &mut rng).unwrap();
        for &k in &keys { shed.observe(k); }
        prop_assert!(shed.kept() <= shed.seen());
        prop_assert_eq!(shed.seen(), keys.len() as u64);

        let mut full = LoadSheddingSketcher::new(&schema, 1.0, &mut rng).unwrap();
        for &k in &keys { full.observe(k); }
        prop_assert_eq!(full.kept(), keys.len() as u64);
        prop_assert_eq!(full.self_join(), full.sketch().raw_self_join());
    }

    /// A complete scan's estimate is the raw sketch estimate (the WOR
    /// corrections vanish at α = 1), regardless of the stream content.
    #[test]
    fn complete_scan_has_no_correction(keys in stream(), seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = JoinSchema::fagms(1, 64, &mut rng);
        let mut scan = ScanSketcher::new(&schema, keys.len() as u64).unwrap();
        for &k in &keys { scan.observe(k).unwrap(); }
        prop_assert!(scan.is_complete());
        if keys.len() >= 2 {
            let est = scan.self_join().unwrap();
            prop_assert!((est - scan.sketch().raw_self_join()).abs() < 1e-9);
        }
    }

    /// Sampling-only estimators at full rate are exact, whatever the data.
    #[test]
    fn sampling_estimators_exact_at_full_rate(keys in stream()) {
        let counts = SampleCounts::from_keys(keys.iter().copied());
        let truth: f64 = counts.sum_squares();
        let est = estimators::bernoulli_self_join(&counts, 1.0).unwrap();
        prop_assert!((est - truth).abs() < 1e-9);
        if counts.total() >= 2 {
            let est = estimators::wor_self_join(&counts, counts.total()).unwrap();
            prop_assert!((est - truth).abs() < 1e-6 * truth.max(1.0));
        }
    }

    /// SampleCounts dot products are symmetric and bounded by the
    /// Cauchy–Schwarz inequality.
    #[test]
    fn sample_counts_dot_is_cauchy_schwarz(a in stream(), b in stream()) {
        let ca = SampleCounts::from_keys(a.iter().copied());
        let cb = SampleCounts::from_keys(b.iter().copied());
        let dot = ca.dot(&cb);
        prop_assert_eq!(dot, cb.dot(&ca));
        let bound = (ca.sum_squares() * cb.sum_squares()).sqrt();
        prop_assert!(dot <= bound + 1e-6);
    }
}
