//! Wire round-trip properties of the `Portable` surface: for every
//! summary, shipping a snapshot through `encode` → `decode` →
//! `merge_encoded` is **bit-identical** to merging the live values in
//! memory — the property the multi-process aggregation path
//! (`sss save` | `sss merge-snapshots`) and the slim replica exchange
//! rest on. Plus the typed failure modes: mismatched configuration
//! fingerprints refuse to merge, foreign kinds refuse to decode.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::{JoinSchema, JoinSketch};
use sketch_sampled_streams::core::{
    wire, DistinctQuery, Error, JoinQuery, MultiSpec, MultiSummary, Portable, QuantileQuery,
    Summary, TopKQuery,
};
use sketch_sampled_streams::sketch::{
    CountSketchTopK, FagmsSchema, HyperLogLog, KllSketch, MisraGries,
};

fn stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..5_000u64, 0..300)
}

/// The round-trip harness: build two summaries from `seed_a`/`seed_b`
/// streams, merge once in memory and once through the wire (`a` is
/// itself round-tripped first, `b` arrives as bytes), and require the
/// two results to re-encode to the *same bytes* — state equality, which
/// implies every query answer is bit-identical.
fn assert_wire_merge_matches_memory<S, F>(make: F, a: &[u64], b: &[u64])
where
    S: Summary + Portable,
    F: Fn() -> S,
{
    let mut sa = make();
    sa.update_batch(a);
    let mut sb = make();
    sb.update_batch(b);

    let mut in_memory = sa.clone();
    in_memory.merge_from(&sb).unwrap();

    let mut through_wire = S::decode(&sa.encode().unwrap()).unwrap();
    through_wire.merge_encoded(&sb.encode().unwrap()).unwrap();

    assert_eq!(
        in_memory.encode().unwrap(),
        through_wire.encode().unwrap(),
        "wire merge diverged from in-memory merge for {}",
        S::KIND
    );
}

proptest! {
    /// The F-AGMS and AGMS join sketches: linear counters, so the merge
    /// is addition and the round-trip must preserve every counter bit.
    #[test]
    fn join_sketch_wire_merge_is_bit_identical(a in stream(), b in stream()) {
        let mut rng = StdRng::seed_from_u64(401);
        let fagms = JoinSchema::fagms(3, 128, &mut rng);
        assert_wire_merge_matches_memory(|| fagms.sketch(), &a, &b);
        let agms = JoinSchema::agms(64, &mut rng);
        assert_wire_merge_matches_memory(|| agms.sketch(), &a, &b);
    }

    /// Misra–Gries: the deterministic decrement merge must commute with
    /// the wire exactly, candidate set and counts included.
    #[test]
    fn misra_gries_wire_merge_is_bit_identical(a in stream(), b in stream()) {
        assert_wire_merge_matches_memory(|| MisraGries::new(16).unwrap(), &a, &b);
    }

    /// Count-Sketch top-k: both the sketch matrix and the candidate heap
    /// travel; merge re-ranks candidates against the merged matrix.
    #[test]
    fn count_sketch_topk_wire_merge_is_bit_identical(a in stream(), b in stream()) {
        let mut rng = StdRng::seed_from_u64(402);
        let schema: FagmsSchema = FagmsSchema::new(3, 128, &mut rng);
        assert_wire_merge_matches_memory(
            || CountSketchTopK::new(&schema, 16).unwrap(),
            &a,
            &b,
        );
    }

    /// HyperLogLog: register-wise max, bit-exact through the wire.
    #[test]
    fn hll_wire_merge_is_bit_identical(a in stream(), b in stream()) {
        assert_wire_merge_matches_memory(|| HyperLogLog::with_seed(10, 0xBEEF).unwrap(), &a, &b);
    }

    /// KLL: the compactor coin is *carried state* (a seeded SplitMix64
    /// inside the summary), so as long as decode restores it, the lossy
    /// merge compaction makes identical coin flips on both paths.
    #[test]
    fn kll_wire_merge_is_bit_identical(a in stream(), b in stream()) {
        assert_wire_merge_matches_memory(|| KllSketch::with_seed(64, 0xC0FFEE).unwrap(), &a, &b);
    }

    /// The composite `MultiSummary`: all four constituent summaries must
    /// round-trip and merge bit-identically *together*.
    #[test]
    fn multi_summary_wire_merge_is_bit_identical(a in stream(), b in stream()) {
        let mut rng = StdRng::seed_from_u64(403);
        let spec = MultiSpec::new(JoinSchema::fagms(3, 128, &mut rng), &mut rng);
        assert_wire_merge_matches_memory(|| spec.summary().unwrap(), &a, &b);
    }
}

/// Empty summaries round-trip too: an empty snapshot is a valid merge
/// identity, not a corner case — `sss merge-snapshots` may well receive
/// one from a process that saw no tuples.
#[test]
fn empty_summaries_round_trip_and_merge_as_identity() {
    let mut rng = StdRng::seed_from_u64(404);
    let schema = JoinSchema::fagms(3, 128, &mut rng);

    let empty = schema.sketch();
    let decoded = JoinSketch::decode(&empty.encode().unwrap()).unwrap();
    assert_eq!(decoded.self_join().to_bits(), empty.self_join().to_bits());

    // empty ⊔ loaded == loaded, through the wire.
    let mut loaded = schema.sketch();
    loaded.update_batch(&[1, 2, 3, 3, 3]);
    let mut merged = JoinSketch::decode(&empty.encode().unwrap()).unwrap();
    merged.merge_encoded(&loaded.encode().unwrap()).unwrap();
    assert_eq!(
        merged.encode().unwrap(),
        loaded.encode().unwrap(),
        "merging into the empty identity must reproduce the loaded state"
    );
}

/// A single update survives the round-trip for every query family.
#[test]
fn single_update_round_trips_every_family() {
    let mut rng = StdRng::seed_from_u64(405);
    let spec = MultiSpec::new(JoinSchema::fagms(3, 128, &mut rng), &mut rng);
    let mut multi = spec.summary().unwrap();
    multi.update(42, 1);
    let back = MultiSummary::decode(&multi.encode().unwrap()).unwrap();
    assert_eq!(back.self_join().to_bits(), multi.self_join().to_bits());
    assert_eq!(back.distinct().to_bits(), multi.distinct().to_bits());
    assert_eq!(back.frequency(42).to_bits(), multi.frequency(42).to_bits());
    assert_eq!(
        back.quantile(0.5).unwrap().to_bits(),
        multi.quantile(0.5).unwrap().to_bits()
    );
}

/// Mismatched configurations refuse to merge with the *typed* error —
/// the fingerprint check happens on the envelope head, before any body
/// decode work.
#[test]
fn mismatched_fingerprints_refuse_with_typed_errors() {
    let mut rng = StdRng::seed_from_u64(406);
    let schema_a = JoinSchema::fagms(3, 128, &mut rng);
    let schema_b = JoinSchema::fagms(3, 256, &mut rng); // different width
    let mut a = schema_a.sketch();
    a.update_batch(&[1, 2, 3]);
    let b = schema_b.sketch();

    let err = a.merge_encoded(&b.encode().unwrap()).unwrap_err();
    assert!(
        matches!(err, Error::FingerprintMismatch { expected, found }
            if expected != found),
        "want FingerprintMismatch, got {err:?}"
    );

    // A foreign *kind* fails even earlier, at decode.
    let hll = HyperLogLog::with_seed(10, 1).unwrap();
    let err = JoinSketch::decode(&hll.encode().unwrap()).unwrap_err();
    assert!(
        matches!(err, Error::WireMismatch { .. }),
        "want WireMismatch, got {err:?}"
    );

    // And the head really is peekable without a body decode.
    let head = wire::peek(&a.encode().unwrap()).unwrap();
    assert_eq!(head.kind, JoinSketch::KIND);
    assert_eq!(head.format, JoinSketch::FORMAT);
    assert_eq!(head.fingerprint, Portable::fingerprint(&a));
}
