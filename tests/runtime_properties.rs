//! Property-based tests of the sharded runtime: for every shard count,
//! queue depth, partition policy and batch interleaving, the merged
//! sketch must be bit-identical to feeding the same stream through one
//! sequential sketch. This is the linearity argument of the runtime
//! (counter adds commute) checked end to end through the public facade.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::sketch::{JoinSchema, JoinSketch};
use sketch_sampled_streams::stream::{EngineBuilder, Partition, RuntimeConfig, ShardedRuntime};

fn stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 1..400)
}

fn partition() -> impl Strategy<Value = Partition> {
    any::<bool>().prop_map(|hash| {
        if hash {
            Partition::Hash
        } else {
            Partition::RoundRobin
        }
    })
}

fn sequential(schema: &JoinSchema, keys: &[u64]) -> JoinSketch {
    let mut s = schema.sketch();
    s.update_batch(keys);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary chunking × shard count × queue depth × partition: the
    /// merged result never depends on how the stream was cut up or routed.
    #[test]
    fn sharded_merge_is_bit_identical_to_sequential(
        keys in stream(),
        shards in 1usize..8,
        queue_depth in 1usize..16,
        chunk in 1usize..97,
        partition in partition(),
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = JoinSchema::fagms(2, 64, &mut rng);
        let expect = sequential(&schema, &keys);

        let config = RuntimeConfig { shards, queue_depth, partition };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        for chunk in keys.chunks(chunk) {
            rt.push(chunk).unwrap();
        }
        let merged = rt.into_merged().unwrap();
        prop_assert_eq!(
            merged.raw_self_join().to_bits(),
            expect.raw_self_join().to_bits()
        );
    }

    /// Interleaved pushes and at-all-times queries: after every chunk the
    /// incremental snapshot cache (partial retract+merge rebuilds, cache
    /// hits on repeats) must answer bit-identically to a sequential
    /// sketch of everything pushed so far — the exactness of the old full
    /// snapshot barrier, preserved by the delta path.
    #[test]
    fn interleaved_queries_match_sequential_prefixes(
        keys in stream(),
        shards in 1usize..6,
        queue_depth in 1usize..8,
        chunk in 1usize..97,
        partition in partition(),
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = JoinSchema::fagms(1, 64, &mut rng);
        let config = RuntimeConfig { shards, queue_depth, partition };
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).unwrap();
        let mut pushed = 0usize;
        for chunk in keys.chunks(chunk) {
            rt.push(chunk).unwrap();
            pushed += chunk.len();
            let mid = rt.merged().unwrap();
            prop_assert_eq!(
                mid.raw_self_join().to_bits(),
                sequential(&schema, &keys[..pushed]).raw_self_join().to_bits()
            );
            // A repeated query with no intervening ingest is a cache hit
            // and still bit-identical.
            let again = rt.merged().unwrap();
            prop_assert_eq!(
                again.raw_self_join().to_bits(),
                mid.raw_self_join().to_bits()
            );
        }
        let stats = rt.cache_stats();
        prop_assert!(stats.hits >= (keys.len() / chunk) as u64);
        let fin = rt.into_merged().unwrap();
        prop_assert_eq!(
            fin.raw_self_join().to_bits(),
            sequential(&schema, &keys).raw_self_join().to_bits()
        );
    }

    /// The same property through the engine: transforms + sharded runtime
    /// (no shedding) reproduce a sequential sketch of the post-transform
    /// stream exactly, and a mid-stream snapshot covers every tuple
    /// pushed before it.
    #[test]
    fn engine_snapshot_and_final_merge_are_exact(
        keys in stream(),
        shards in 1usize..6,
        chunk in 1usize..97,
        seed: u64,
    ) {
        fn drop_odd(k: u64) -> bool {
            k % 2 == 0
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = JoinSchema::fagms(1, 32, &mut rng);

        let mut engine = EngineBuilder::new()
            .filter("even", drop_odd)
            .shards(shards)
            .schema(&schema)
            .build()
            .unwrap();
        let half = keys.len() / 2;
        for chunk in keys[..half].chunks(chunk) {
            engine.push_batch(chunk, 1.0).unwrap();
        }
        let mid = engine.merged().unwrap();
        let transformed: Vec<u64> = keys.iter().copied().filter(|&k| drop_odd(k)).collect();
        let split = keys[..half].iter().filter(|&&k| drop_odd(k)).count();
        prop_assert_eq!(
            mid.raw_self_join().to_bits(),
            sequential(&schema, &transformed[..split]).raw_self_join().to_bits()
        );

        for chunk in keys[half..].chunks(chunk) {
            engine.push_batch(chunk, 1.0).unwrap();
        }
        let fin = engine.into_merged().unwrap();
        prop_assert_eq!(
            fin.raw_self_join().to_bits(),
            sequential(&schema, &transformed).raw_self_join().to_bits()
        );
    }
}
