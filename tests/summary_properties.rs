//! Merge and retraction properties of the new F₀/quantile backends
//! (`HyperLogLog`, `KllSketch`) under the `Summary` contract.
//!
//! The sharded runtime partitions tuples arbitrarily across shards and
//! re-merges on query, so the whole one-pass design rests on merges being
//! order-insensitive: commutative bit-for-bit for the monotone register
//! maximum (HLL), and guarantee-preserving in either order for the lossy
//! compactor (KLL). Retraction is the opposite contract — both backends
//! must *refuse* it honestly, and the snapshot cache must notice and fall
//! back to full re-merges instead of serving a corrupt delta rebuild.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::{DistinctQuery, Error, QuantileQuery, Sampled, Summary};
use sketch_sampled_streams::sketch::{HyperLogLog, KllSketch};
use sketch_sampled_streams::stream::{RuntimeConfig, ShardedRuntime};

fn stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..10_000u64, 1..300)
}

/// Normalized exact rank of `value` in `all` (fraction strictly below).
fn exact_rank(all: &[u64], value: f64) -> f64 {
    let below = all.iter().filter(|&&x| (x as f64) < value).count();
    below as f64 / all.len() as f64
}

proptest! {
    /// HLL merging is the register-wise maximum: commutative and
    /// idempotent *bit-for-bit*, and identical to summarizing the
    /// concatenated stream directly — the property that makes arbitrary
    /// shard partitioning invisible to F₀ queries.
    #[test]
    fn hll_merge_is_commutative_idempotent_and_union_exact(
        a in stream(),
        b in stream(),
    ) {
        let empty = HyperLogLog::with_seed(10, 0xF0F0).unwrap();
        let mut ha = empty.clone();
        ha.insert_batch(&a);
        let mut hb = empty.clone();
        hb.insert_batch(&b);

        let mut ab = ha.clone();
        ab.merge_from(&hb).unwrap();
        let mut ba = hb.clone();
        ba.merge_from(&ha).unwrap();
        prop_assert_eq!(ab.distinct().to_bits(), ba.distinct().to_bits());

        // Merge ≡ concatenation.
        let mut direct = empty.clone();
        direct.insert_batch(&a);
        direct.insert_batch(&b);
        prop_assert_eq!(ab.distinct().to_bits(), direct.distinct().to_bits());

        // Idempotent: max(x, x) = x.
        let before = ab.distinct().to_bits();
        let twin = ab.clone();
        ab.merge_from(&twin).unwrap();
        prop_assert_eq!(ab.distinct().to_bits(), before);
    }

    /// KLL merging is lossy (compaction discards items), so the two merge
    /// orders need not be bit-identical — but both must summarize the
    /// same union: identical total weight, and every reported quantile's
    /// exact rank within the advertised ε of the request (with slack for
    /// the discrete grid).
    #[test]
    fn kll_merge_order_preserves_the_rank_guarantee(
        a in stream(),
        b in stream(),
    ) {
        let empty = KllSketch::with_seed(200, 0x6B6C).unwrap();
        let mut ka = empty.clone();
        ka.insert_batch(&a);
        let mut kb = empty.clone();
        kb.insert_batch(&b);

        let mut ab = ka.clone();
        ab.merge_from(&kb).unwrap();
        let mut ba = kb.clone();
        ba.merge_from(&ka).unwrap();

        let n = (a.len() + b.len()) as u64;
        prop_assert_eq!(ab.stream_len(), n);
        prop_assert_eq!(ba.stream_len(), n);

        let mut all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        // ε plus one grid step: the exact rank of a discrete order
        // statistic can sit a full 1/n from the requested q even for an
        // exact summary.
        let tol = ab.rank_error() + 1.0 / all.len() as f64 + 1e-9;
        for merged in [&ab, &ba] {
            for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let v = merged.quantile(q).unwrap();
                let r = exact_rank(&all, v);
                prop_assert!(
                    (r - q).abs() <= tol,
                    "q = {}, reported value {} has exact rank {} (tol {})",
                    q, v, r, tol
                );
            }
        }
    }

    /// Both backends — bare and behind the `Sampled` lens — honestly
    /// refuse retraction: `supports_retract()` is false and
    /// `retract_from` is a typed error, never a silent corruption.
    #[test]
    fn monotone_summaries_refuse_retraction(a in stream()) {
        let mut hll = HyperLogLog::with_seed(10, 1).unwrap();
        hll.insert_batch(&a);
        let hll_twin = hll.clone();
        prop_assert!(!hll.supports_retract());
        prop_assert!(matches!(
            hll.retract_from(&hll_twin),
            Err(Error::RetractUnsupported)
        ));

        let mut kll = KllSketch::with_seed(64, 2).unwrap();
        kll.insert_batch(&a);
        let kll_twin = kll.clone();
        prop_assert!(!kll.supports_retract());
        prop_assert!(matches!(
            kll.retract_from(&kll_twin),
            Err(Error::RetractUnsupported)
        ));

        let mut rng = StdRng::seed_from_u64(3);
        let mut sampled = Sampled::hyperloglog(10, 0.5, &mut rng).unwrap();
        sampled.feed_batch(&a);
        let sampled_twin = sampled.clone();
        prop_assert!(!sampled.supports_retract());
        prop_assert!(sampled.retract_from(&sampled_twin).is_err());
    }
}

/// The snapshot cache keys its delta-rebuild path off
/// `supports_retract()`: with a HyperLogLog prototype every post-ingest
/// query is a *full* rebuild (never a partial one — partial requires
/// retracting the stale shard), while quiet queries still hit the cache.
#[test]
fn snapshot_cache_falls_back_to_full_rebuilds_for_hll() {
    let proto = HyperLogLog::with_seed(12, 0xCAFE).unwrap();
    let config = RuntimeConfig {
        shards: 2,
        ..Default::default()
    };
    let mut rt = ShardedRuntime::new(config, &proto).unwrap();

    let first: Vec<u64> = (0..5_000u64).collect();
    rt.push(&first).unwrap();
    let merged = rt.merged().unwrap();
    let d = merged.distinct();
    assert!(
        (d - 5_000.0).abs() / 5_000.0 < 0.05,
        "merged F₀ {d} not within 5% of 5000"
    );
    let stats = rt.cache_stats();
    assert_eq!(stats.full_rebuilds, 1, "first query is a full rebuild");
    assert_eq!(stats.partial_rebuilds, 0);

    // New ingest dirties shards; HLL cannot retract, so the refresh is
    // another full re-merge — and stays exact: the union now spans 6000
    // distinct keys.
    let second: Vec<u64> = (5_000..6_000u64).collect();
    rt.push(&second).unwrap();
    let merged = rt.merged().unwrap();
    let d = merged.distinct();
    assert!(
        (d - 6_000.0).abs() / 6_000.0 < 0.05,
        "post-refresh F₀ {d} not within 5% of 6000"
    );
    let stats = rt.cache_stats();
    assert_eq!(
        stats.full_rebuilds, 2,
        "dirty query fell back to full rebuild"
    );
    assert_eq!(
        stats.partial_rebuilds, 0,
        "no partial path without retraction"
    );

    // No intervening ingest: pure cache hit, bit-identical answer.
    let again = rt.merged().unwrap();
    assert_eq!(again.distinct().to_bits(), merged.distinct().to_bits());
    assert!(rt.cache_stats().hits >= 1);
}

/// Same fallback contract for the KLL prototype, checked through the
/// quantile surface: the re-merged summary covers both ingest waves.
#[test]
fn snapshot_cache_falls_back_to_full_rebuilds_for_kll() {
    let proto = KllSketch::with_seed(200, 0xBEEF).unwrap();
    let config = RuntimeConfig {
        shards: 2,
        ..Default::default()
    };
    let mut rt = ShardedRuntime::new(config, &proto).unwrap();

    let first: Vec<u64> = (0..10_000u64).collect();
    rt.push(&first).unwrap();
    let merged = rt.merged().unwrap();
    assert_eq!(merged.stream_len(), 10_000);
    assert_eq!(rt.cache_stats().full_rebuilds, 1);

    let second: Vec<u64> = (10_000..20_000u64).collect();
    rt.push(&second).unwrap();
    let merged = rt.merged().unwrap();
    assert_eq!(merged.stream_len(), 20_000);
    let median = merged.quantile(0.5).unwrap();
    assert!(
        (median - 10_000.0).abs() / 20_000.0 <= merged.rank_error() + 0.01,
        "median {median} outside rank envelope around 10000"
    );
    let stats = rt.cache_stats();
    assert_eq!(stats.full_rebuilds, 2);
    assert_eq!(stats.partial_rebuilds, 0);
}
