//! Property-based tests of the analytical engine: invariants that must
//! hold for *arbitrary* frequency vectors and sampling parameters.

use proptest::prelude::*;
use sketch_sampled_streams::moments::closed_form;
use sketch_sampled_streams::moments::decompose;
use sketch_sampled_streams::moments::engine;
use sketch_sampled_streams::moments::scheme::{Bernoulli, WithReplacement, WithoutReplacement};
use sketch_sampled_streams::moments::FrequencyVector;

fn freq_vector() -> impl Strategy<Value = FrequencyVector> {
    prop::collection::vec(0u32..40, 2..20)
        .prop_filter("need a non-empty relation", |v| v.iter().any(|&c| c > 0))
        .prop_map(FrequencyVector::from_counts)
}

fn pair_same_domain() -> impl Strategy<Value = (FrequencyVector, FrequencyVector)> {
    (2usize..16).prop_flat_map(|len| {
        (
            prop::collection::vec(0u32..40, len)
                .prop_filter("F non-empty", |v| v.iter().any(|&c| c > 0))
                .prop_map(FrequencyVector::from_counts),
            prop::collection::vec(0u32..40, len)
                .prop_filter("G non-empty", |v| v.iter().any(|&c| c > 0))
                .prop_map(FrequencyVector::from_counts),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Variances are non-negative and estimators unbiased, for every
    /// scheme, on arbitrary inputs.
    #[test]
    fn variances_nonnegative_and_means_exact(
        f in freq_vector(),
        p in 0.01f64..=1.0,
        n in 1usize..200,
    ) {
        let truth = f.self_join();
        let scheme = Bernoulli::new(p).unwrap();
        let m = engine::sketch_sample_sjs(&scheme, &f, n).unwrap();
        prop_assert!(m.variance >= -1e-6 * truth * truth - 1e-9);
        prop_assert!((m.mean - truth).abs() <= 1e-6 * truth.max(1.0));

        let pop = f.total() as u64;
        let sample = (pop / 2).max(2).min(pop);
        if sample >= 2 {
            let wr = WithReplacement::new(sample, pop).unwrap();
            let m = engine::sketch_sample_sjs(&wr, &f, n).unwrap();
            prop_assert!((m.mean - truth).abs() <= 1e-6 * truth.max(1.0));
            prop_assert!(m.variance >= -1e-6 * truth * truth - 1e-9);
            let wor = WithoutReplacement::new(sample, pop).unwrap();
            let m = engine::sketch_sample_sjs(&wor, &f, n).unwrap();
            prop_assert!((m.mean - truth).abs() <= 1e-6 * truth.max(1.0));
            prop_assert!(m.variance >= -1e-6 * truth * truth - 1e-9);
        }
    }

    /// Averaging more basic sketches never increases the variance, and the
    /// sampling-only variance is a floor.
    #[test]
    fn averaging_is_monotone_with_a_sampling_floor(
        f in freq_vector(),
        p in 0.05f64..=1.0,
    ) {
        let scheme = Bernoulli::new(p).unwrap();
        let v1 = engine::sketch_sample_sjs(&scheme, &f, 1).unwrap().variance;
        let v8 = engine::sketch_sample_sjs(&scheme, &f, 8).unwrap().variance;
        let v64 = engine::sketch_sample_sjs(&scheme, &f, 64).unwrap().variance;
        prop_assert!(v1 >= v8 - 1e-9);
        prop_assert!(v8 >= v64 - 1e-9);
        let floor = engine::sampling_sjs(&scheme, &f).unwrap().variance;
        prop_assert!(v64 >= floor - 1e-6 * floor.abs() - 1e-9);
    }

    /// The closed forms match the generic engine on arbitrary inputs (the
    /// unit tests check curated shapes; this fuzzes the agreement).
    #[test]
    fn closed_forms_equal_engine(
        (f, g) in pair_same_domain(),
        p in 0.01f64..=1.0,
        q in 0.01f64..=1.0,
        n in 1usize..64,
    ) {
        let bp = Bernoulli::new(p).unwrap();
        let bq = Bernoulli::new(q).unwrap();
        let closed = closed_form::bernoulli_combined_sj_variance(&f, &g, &bp, &bq, n).unwrap();
        let eng = engine::sketch_sample_sj(&bp, &f, &bq, &g, n).unwrap().variance;
        let tol = 1e-9 * closed.abs().max(eng.abs()).max(1.0);
        prop_assert!((closed - eng).abs() <= tol, "closed {closed} vs engine {eng}");

        let closed = closed_form::bernoulli_combined_sjs_variance(&f, &bp, n).unwrap();
        let eng = engine::sketch_sample_sjs(&bp, &f, n).unwrap().variance;
        let tol = 1e-9 * closed.abs().max(eng.abs()).max(1.0);
        prop_assert!((closed - eng).abs() <= tol);
    }

    /// WR/WOR closed forms vs engine, plus the WOR ≤ WR variance ordering
    /// (finite-population correction can only help).
    #[test]
    fn fixed_size_schemes_agree_and_order(
        (f, g) in pair_same_domain(),
        frac in 0.1f64..=1.0,
        n in 1usize..32,
    ) {
        let nf = f.total() as u64;
        let ng = g.total() as u64;
        let mf = ((nf as f64 * frac) as u64).clamp(2, nf);
        let mg = ((ng as f64 * frac) as u64).clamp(2, ng);
        prop_assume!(nf >= 2 && ng >= 2);

        let wr_f = WithReplacement::new(mf, nf).unwrap();
        let wr_g = WithReplacement::new(mg, ng).unwrap();
        let closed = closed_form::wr_combined_sj_variance(&f, &g, &wr_f, &wr_g, n).unwrap();
        let eng = engine::sketch_sample_sj(&wr_f, &f, &wr_g, &g, n).unwrap().variance;
        prop_assert!((closed - eng).abs() <= 1e-9 * closed.abs().max(1.0));

        let wor_f = WithoutReplacement::new(mf, nf).unwrap();
        let wor_g = WithoutReplacement::new(mg, ng).unwrap();
        let closed_wor =
            closed_form::wor_combined_sj_variance(&f, &g, &wor_f, &wor_g, n).unwrap();
        let eng_wor = engine::sketch_sample_sj(&wor_f, &f, &wor_g, &g, n).unwrap().variance;
        prop_assert!((closed_wor - eng_wor).abs() <= 1e-9 * closed_wor.abs().max(1.0));

        // Same sample sizes: sampling without replacement is never worse.
        prop_assert!(eng_wor <= eng + 1e-6 * eng.abs() + 1e-9);
    }

    /// Decomposition terms always sum to the total, and each relative
    /// share is a number in [0, 1] (up to round-off) when the total > 0.
    #[test]
    fn decomposition_is_a_partition(
        f in freq_vector(),
        p in 0.01f64..=0.99,
        n in 1usize..100,
    ) {
        let scheme = Bernoulli::new(p).unwrap();
        let d = decompose::bernoulli_sjs(&f, &scheme, n).unwrap();
        let total = engine::sketch_sample_sjs(&scheme, &f, n).unwrap().variance;
        prop_assert!((d.total() - total).abs() <= 1e-9 * total.abs().max(1.0));
        if total > 1.0 {
            let [s, k, i] = d.relative();
            prop_assert!((s + k + i - 1.0).abs() < 1e-9);
            prop_assert!(s >= -1e-9 && k >= -1e-9 && i >= -0.05,
                "shares ({s}, {k}, {i}) out of range");
        }
    }

    /// Bernoulli at p = 1 must exactly reduce to the pure sketch formulas.
    #[test]
    fn p_one_reduction((f, g) in pair_same_domain(), n in 1usize..64) {
        let one = Bernoulli::new(1.0).unwrap();
        let combined = engine::sketch_sample_sj(&one, &f, &one, &g, n).unwrap();
        let pure = engine::sketch_sj(&f, &g, n);
        prop_assert!((combined.variance - pure.variance).abs()
            <= 1e-6 * pure.variance.abs().max(1.0));
        let combined = engine::sketch_sample_sjs(&one, &f, n).unwrap();
        let pure = engine::sketch_sjs(&f, n);
        prop_assert!((combined.variance - pure.variance).abs()
            <= 1e-6 * pure.variance.abs().max(1.0));
    }
}
