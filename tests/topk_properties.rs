//! Properties and acceptance tests of the heavy-hitters layer.
//!
//! Three claims from the issue are pinned here end to end through the
//! public facade:
//!
//! 1. **Merge identity** — a `ShardedRuntime` hosting per-shard top-k
//!    summaries answers `raw_top_k` exactly like one sequential summary
//!    fed the same stream, for every shard count, chunking and partition
//!    policy. For `CountSketchTopK` the sketch merge is linear, so this
//!    holds whenever the candidate capacity covers the distinct keys; the
//!    same regime pins `MisraGries`, whose counters are exact until
//!    capacity overflows.
//! 2. **Zipf acceptance** — top-50 recall ≥ 0.9 on a Zipf(1.2) stream
//!    sampled at `p = 0.1`, the paper's headline sampled-sketch regime,
//!    with memory `O(k + sketch)`.
//! 3. **Unbiasedness** — the `1/p` sampling correction makes the
//!    frequency estimator unbiased: averaged over Monte-Carlo reruns of
//!    the Bernoulli coin, estimates match the true count.

use std::collections::HashSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketch_sampled_streams::core::Sampled;
use sketch_sampled_streams::datagen::ZipfGenerator;
use sketch_sampled_streams::exact::ExactAggregator;
use sketch_sampled_streams::sketch::{CountSketchTopK, FagmsSchema, HeavyHitters, MisraGries};
use sketch_sampled_streams::stream::{Partition, RuntimeConfig, ShardedRuntime};

/// Streams over a bounded domain so a fixed summary capacity can cover
/// every distinct key (the exact-merge regime).
const DOMAIN: u64 = 48;
const CAPACITY: usize = 64;

fn stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..DOMAIN, 1..400)
}

fn partition() -> impl Strategy<Value = Partition> {
    any::<bool>().prop_map(|hash| {
        if hash {
            Partition::Hash
        } else {
            Partition::RoundRobin
        }
    })
}

/// Feed `keys` through a sharded runtime over `proto` and return the
/// merged summary, exercising the snapshot path with a mid-stream query.
fn sharded<H: HeavyHitters + sketch_sampled_streams::core::Summary>(
    proto: &H,
    keys: &[u64],
    shards: usize,
    chunk: usize,
    partition: Partition,
) -> H {
    let config = RuntimeConfig {
        shards,
        queue_depth: 4,
        partition,
    };
    let mut rt = ShardedRuntime::new(config, proto).unwrap();
    let mut pushed = false;
    for chunk in keys.chunks(chunk) {
        rt.push(chunk).unwrap();
        if !pushed {
            // One cached-snapshot query mid-stream so the merge path under
            // test is the real one (cache rebuild + prototype clone).
            let _ = rt.merged().unwrap();
            pushed = true;
        }
    }
    rt.into_merged().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Count-Sketch top-k: shard-merged answers are bit-identical to
    /// sequential whenever capacity covers the distinct keys.
    #[test]
    fn sharded_count_sketch_topk_matches_sequential(
        keys in stream(),
        shards in 1usize..6,
        chunk in 1usize..97,
        partition in partition(),
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema: FagmsSchema = FagmsSchema::new(3, 256, &mut rng);
        let mut expect = CountSketchTopK::new(&schema, CAPACITY).unwrap();
        expect.offer_batch(&keys);

        let proto = CountSketchTopK::new(&schema, CAPACITY).unwrap();
        let merged = sharded(&proto, &keys, shards, chunk, partition);

        let want = expect.raw_top_k(10);
        let got = merged.raw_top_k(10);
        prop_assert_eq!(want.len(), got.len());
        for ((wk, wv), (gk, gv)) in want.iter().zip(&got) {
            prop_assert_eq!(wk, gk);
            prop_assert_eq!(wv.to_bits(), gv.to_bits());
        }
    }

    /// Misra-Gries: below capacity the counters are exact, so the sharded
    /// merge must reproduce the sequential summary's top-k exactly.
    #[test]
    fn sharded_misra_gries_matches_sequential(
        keys in stream(),
        shards in 1usize..6,
        chunk in 1usize..97,
        partition in partition(),
    ) {
        let mut expect = MisraGries::new(CAPACITY).unwrap();
        expect.offer_batch(&keys);

        let proto = MisraGries::new(CAPACITY).unwrap();
        let merged = sharded(&proto, &keys, shards, chunk, partition);

        prop_assert_eq!(expect.raw_top_k(10), merged.raw_top_k(10));
        prop_assert_eq!(expect.items_offered(), merged.items_offered());
    }
}

/// The issue's acceptance gate: Zipf(1.2), domain 100k, 2M tuples,
/// sampled at p = 0.1 — the recovered top-50 must hit at least 90% of the
/// exact top-50 while holding only O(k + sketch) state.
#[test]
fn zipf_top50_recall_at_ten_percent_sample() {
    let mut rng = StdRng::seed_from_u64(42);
    let k = 50;
    let stream = ZipfGenerator::new(100_000, 1.2).relation(2_000_000, &mut rng);
    let exact = ExactAggregator::from_keys(stream.iter().copied());
    let true_top: HashSet<u64> = exact.top_k(k).into_iter().map(|(key, _)| key).collect();

    let schema: FagmsSchema = FagmsSchema::new(5, 4096, &mut rng);
    let mut tracker = Sampled::count_sketch(&schema, 4 * k, 0.1, &mut rng).unwrap();
    tracker.feed_batch(&stream);

    // Memory gate: O(k + sketch) — the counter total is the fixed sketch
    // (5 × 4096 cells) plus at most the 4k-candidate set, independent of
    // the 2M-tuple stream and the 100k-key domain.
    assert!(tracker.summary().counters() <= 5 * 4096 + 4 * k);

    let top = tracker.top_k(k);
    assert_eq!(top.len(), k);
    let hits = top.iter().filter(|(key, _)| true_top.contains(key)).count();
    let recall = hits as f64 / k as f64;
    assert!(recall >= 0.9, "top-{k} recall {recall} < 0.9");

    // Precision equals recall here (both sets have k members), and every
    // reported estimate should be a sane multiple of its true count.
    for (key, est) in &top {
        let truth = exact.get(*key) as f64;
        if truth > 0.0 {
            let rel = (est.value - truth).abs() / truth;
            assert!(rel < 0.5, "key {key}: est {} vs true {truth}", est.value);
        }
    }
}

/// Monte-Carlo unbiasedness of the `1/p` correction: over independent
/// Bernoulli coins the mean estimate converges on the true frequency.
/// 200 reps at p = 0.25 put ≈ 0.4% relative 3σ noise on the mean of a
/// 12800-count key; we allow 3%.
#[test]
fn sampled_frequency_correction_is_unbiased() {
    let truth = 12_800u64;
    let stream: Vec<u64> = std::iter::repeat(7)
        .take(truth as usize)
        .chain((0..4 * truth).map(|i| 100 + i % 40))
        .collect();
    let reps = 200;
    let p = 0.25;

    let mut mg_sum = 0.0;
    let mut cs_sum = 0.0;
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(1000 + rep);
        let mut mg = Sampled::misra_gries(256, p, &mut rng).unwrap();
        mg.feed_batch(&stream);
        mg_sum += mg.point_estimate(7).value;

        let schema: FagmsSchema = FagmsSchema::new(5, 1024, &mut rng);
        let mut cs = Sampled::count_sketch(&schema, 64, p, &mut rng).unwrap();
        cs.feed_batch(&stream);
        cs_sum += cs.point_estimate(7).value;
    }
    let truth = truth as f64;
    let mg_mean = mg_sum / reps as f64;
    let cs_mean = cs_sum / reps as f64;
    assert!(
        (mg_mean - truth).abs() / truth < 0.03,
        "Misra-Gries mean {mg_mean} vs true {truth}"
    );
    assert!(
        (cs_mean - truth).abs() / truth < 0.03,
        "Count-Sketch mean {cs_mean} vs true {truth}"
    );
}
