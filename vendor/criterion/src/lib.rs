//! Vendored offline stand-in for the `criterion` crate.
//!
//! A real measuring harness, not a no-op: benchmarks are calibrated, then
//! sampled, and the median per-iteration time is reported together with
//! throughput. Every result is also printed as a single machine-readable
//! line prefixed with `BENCHJSON ` so experiment scripts can collect numbers
//! without scraping human output:
//!
//! ```text
//! BENCHJSON {"group":"sketch_update","id":"agms/64","median_ns_per_iter":...}
//! ```
//!
//! Supported CLI arguments (anything else is ignored): `--test` runs every
//! benchmark closure exactly once without timing (CI smoke mode), and a bare
//! positional argument filters benchmarks by substring of `group/id`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }
}

/// Throughput annotation: reported alongside timing as elements or bytes per
/// second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark inside a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark identifier by
/// [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// Convert to the canonical string id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// How [`Bencher::iter_batched`] amortizes setup; all variants behave the
/// same here (setup excluded from timing on every iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` over the requested number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` with a fresh `setup()` input per iteration; the
    /// setup cost is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] but the routine takes the input by
    /// mutable reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named set of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }

        if self.criterion.test_mode {
            let mut bencher = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            println!("{full}: test ok");
            return self;
        }

        // Calibrate: double the iteration count until one sample is long
        // enough to trust the clock.
        let mut iters: u64 = 1;
        let mut per_iter_ns: f64;
        loop {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            let elapsed = bencher.elapsed;
            if elapsed >= Duration::from_millis(2) || iters >= (1 << 30) {
                per_iter_ns = elapsed.as_nanos() as f64 / iters as f64;
                break;
            }
            iters = iters.saturating_mul(2);
        }

        // Sample: ~10 samples of ~60ms each, median of per-iteration times.
        let sample_iters = ((60_000_000.0 / per_iter_ns.max(0.1)).ceil() as u64).max(1);
        let mut samples = Vec::with_capacity(10);
        for _ in 0..10 {
            let mut bencher = Bencher {
                iters: sample_iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed.as_nanos() as f64 / sample_iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        per_iter_ns = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];

        let mut human = format!(
            "{full:<40} time: [{} {} {}]",
            format_ns(lo),
            format_ns(per_iter_ns),
            format_ns(hi)
        );
        let mut machine = format!(
            "BENCHJSON {{\"group\":\"{}\",\"id\":\"{}\",\"median_ns_per_iter\":{:.2}",
            self.name, id, per_iter_ns
        );
        match self.throughput {
            Some(Throughput::Elements(elements)) => {
                let per_sec = elements as f64 / per_iter_ns * 1e9;
                human.push_str(&format!(" thrpt: {} elem/s", format_count(per_sec)));
                machine.push_str(&format!(
                    ",\"throughput_elements\":{elements},\"elements_per_sec\":{per_sec:.1}"
                ));
            }
            Some(Throughput::Bytes(bytes)) => {
                let per_sec = bytes as f64 / per_iter_ns * 1e9;
                human.push_str(&format!(" thrpt: {} B/s", format_count(per_sec)));
                machine.push_str(&format!(
                    ",\"throughput_bytes\":{bytes},\"bytes_per_sec\":{per_sec:.1}"
                ));
            }
            None => {}
        }
        machine.push('}');
        println!("{human}");
        println!("{machine}");
        self
    }

    /// Finish the group (prints a separator in measurement mode).
    pub fn finish(self) {
        if !self.criterion.test_mode {
            println!();
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

fn format_count(count: f64) -> String {
    if count >= 1e9 {
        format!("{:.3}G", count / 1e9)
    } else if count >= 1e6 {
        format!("{:.3}M", count / 1e6)
    } else if count >= 1e3 {
        format!("{:.3}K", count / 1e3)
    } else {
        format!("{count:.1}")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut bencher = Bencher {
            iters: 1000,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        bencher.iter(|| count += 1);
        assert_eq!(count, 1000);
        assert!(bencher.elapsed > Duration::ZERO);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut bencher = Bencher {
            iters: 16,
            elapsed: Duration::ZERO,
        };
        let mut setups = 0u64;
        let mut runs = 0u64;
        bencher.iter_batched(
            || {
                setups += 1;
                vec![0u8; 8]
            },
            |v| {
                runs += 1;
                v.len()
            },
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 16);
        assert_eq!(runs, 16);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("agms", 64).into_benchmark_id(), "agms/64");
        assert_eq!(BenchmarkId::from_parameter(0.1).into_benchmark_id(), "0.1");
    }
}
