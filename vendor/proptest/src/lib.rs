//! Vendored offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with
//! `name in strategy` / `name: Type` arguments and an optional
//! `#![proptest_config(...)]` header, integer/float range strategies,
//! `prop::collection::vec`, tuple strategies, `prop_map` / `prop_filter` /
//! `prop_flat_map`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros. Cases are sampled from a deterministic RNG;
//! failing inputs are **not shrunk** — the failure message reports the case
//! number instead.

#![forbid(unsafe_code)]

#[doc(hidden)]
pub use rand as __rand;

/// Runner configuration and per-case error plumbing.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property is violated: fail the whole test.
        Fail(String),
        /// The inputs were rejected (`prop_assume!`): draw a fresh case.
        Reject(String),
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::Range;

    use rand::{Rng, RngCore};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: `sample` draws one
    /// value, returning `None` when a `prop_filter` rejects it.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value, or `None` if this draw was rejected by a filter.
        fn sample<R: RngCore>(&self, rng: &mut R) -> Option<Self::Value>;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Reject generated values for which `f` returns false.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                _reason: reason,
            }
        }

        /// Generate a value, then generate from the strategy it maps to.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample<R: RngCore>(&self, rng: &mut R) -> Option<O> {
            self.inner.sample(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        _reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample<R: RngCore>(&self, rng: &mut R) -> Option<S::Value> {
            self.inner.sample(rng).filter(|v| (self.f)(v))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample<R: RngCore>(&self, rng: &mut R) -> Option<S2::Value> {
            let mid = self.inner.sample(rng)?;
            (self.f)(mid).sample(rng)
        }
    }

    /// A strategy that always yields clones of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample<R: RngCore>(&self, _rng: &mut R) -> Option<T> {
            Some(self.0.clone())
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample<R: RngCore>(&self, rng: &mut R) -> Option<$t> {
                    Some(rng.random_range(self.clone()))
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample<R: RngCore>(&self, rng: &mut R) -> Option<$t> {
                    Some(rng.random_range(self.clone()))
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample<R: RngCore>(&self, rng: &mut R) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.sample(rng)?,)+))
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Full-domain strategy behind `any::<T>()` and `name: Type` arguments.
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Any<T> {
        /// A strategy drawing uniformly from `T`'s value domain.
        pub fn new() -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn sample<R: RngCore>(&self, rng: &mut R) -> Option<T> {
            Some(rng.random())
        }
    }
}

/// `any::<T>()` for `name: Type` proptest arguments.
pub mod arbitrary {
    use crate::strategy::Any;

    /// A strategy generating arbitrary values of `T`.
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any::new()
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use std::ops::Range;

    use rand::{Rng, RngCore};

    use crate::strategy::Strategy;

    /// Length specification for [`vec()`]: a fixed length or a half-open
    /// range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                lo: len,
                hi: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                lo: range.start,
                hi: range.end.max(range.start + 1),
            }
        }
    }

    /// A strategy for `Vec<S::Value>` with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// comes from `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample<R: RngCore>(&self, rng: &mut R) -> Option<Vec<S::Value>> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.sample(rng)?);
            }
            Some(out)
        }
    }
}

/// The glob-imported prelude: strategies, config, and macros, plus `prop`
/// as an alias for this crate (enabling `prop::collection::vec`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declare property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!([$config] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!([$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$config:expr]) => {};
    ([$config:expr]
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_body!([$config] [] $($params)*, @body $body);
        }
        $crate::__proptest_items!([$config] $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    // `pattern in strategy` argument.
    ([$config:expr] [$($acc:tt)*] $pat:pat in $strat:expr, $($rest:tt)+) => {
        $crate::__proptest_body!([$config] [$($acc)* ($pat) ($strat)] $($rest)+);
    };
    // `name: Type` argument (arbitrary value of that type).
    ([$config:expr] [$($acc:tt)*] $name:ident : $ty:ty, $($rest:tt)+) => {
        $crate::__proptest_body!(
            [$config] [$($acc)* ($name) ($crate::arbitrary::any::<$ty>())] $($rest)+);
    };
    // A trailing comma in the parameter list leaves a stray `,` before the
    // `@body` marker appended by `__proptest_items`.
    ([$config:expr] [$($acc:tt)*] , @body $body:block) => {
        $crate::__proptest_body!([$config] [$($acc)*] @body $body);
    };
    // All arguments normalized: emit the runner.
    ([$config:expr] [$(($pat:pat) ($strat:expr))*] @body $body:block) => {{
        let __config: $crate::test_runner::ProptestConfig = $config;
        let mut __rng: $crate::__rand::rngs::StdRng =
            $crate::__rand::SeedableRng::seed_from_u64(0x5EED_CAFE_F00Du64);
        let __max_rejects: u64 = u64::from(__config.cases).saturating_mul(256).max(65_536);
        let mut __completed: u32 = 0;
        let mut __rejects: u64 = 0;
        while __completed < __config.cases {
            // Strategy constructors are cheap: rebuild them per case so
            // arbitrary patterns (tuples, ...) can bind the sampled values.
            let __sampled = (|| {
                ::core::option::Option::Some((
                    $($crate::strategy::Strategy::sample(&($strat), &mut __rng)?,)*
                ))
            })();
            let ($($pat,)*) = match __sampled {
                ::core::option::Option::Some(values) => values,
                ::core::option::Option::None => {
                    __rejects += 1;
                    if __rejects > __max_rejects {
                        panic!("proptest: too many rejected samples");
                    }
                    continue;
                }
            };
            let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| {
                    $body;
                    ::core::result::Result::Ok(())
                })();
            match __outcome {
                ::core::result::Result::Ok(()) => __completed += 1,
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                    __rejects += 1;
                    if __rejects > __max_rejects {
                        panic!("proptest: too many rejected samples (prop_assume)");
                    }
                }
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                    panic!("proptest case #{} failed: {}", __completed, __msg);
                }
            }
        }
    }};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} at {}:{}", format!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __left,
            __right,
            format!($($fmt)*)
        );
    }};
}

/// Reject the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng).unwrap();
            assert!((10..20).contains(&v));
            let u = (3usize..4).sample(&mut rng).unwrap();
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = prop::collection::vec(0u32..5, 2..6)
                .sample(&mut rng)
                .unwrap();
            assert!(v.len() >= 2 && v.len() < 6);
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = prop::collection::vec(0u32..5, 4usize)
            .sample(&mut rng)
            .unwrap();
        assert_eq!(fixed.len(), 4);
    }

    #[test]
    fn combinators_compose() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = (1u32..10)
            .prop_map(|v| v * 2)
            .prop_filter("even only", |v| v % 2 == 0)
            .prop_flat_map(|v| 0u32..v.max(1));
        for _ in 0..100 {
            if let Some(v) = strat.sample(&mut rng) {
                assert!(v < 18);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires `in`-style and type-style arguments together.
        #[test]
        fn macro_smoke(xs in prop::collection::vec(0u64..100, 1..10), seed: u64, k in 0usize..5) {
            prop_assert!(xs.len() < 10);
            prop_assert!(k < 5);
            let _ = seed;
            let count = xs.iter().filter(|&&x| x < 100).count();
            prop_assert_eq!(xs.len(), count);
        }

        /// `prop_assume!` rejects without failing.
        #[test]
        fn assume_rejects(v in 0u32..10) {
            prop_assume!(v >= 5);
            prop_assert!(v >= 5);
        }
    }
}
