//! Vendored offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the external `rand` dependency is replaced by this minimal, pure-std
//! implementation of exactly the surface the workspace uses:
//!
//! * [`Rng`] with `random::<T>()` and `random_range(range)`,
//! * [`SeedableRng`] with `seed_from_u64` / `from_rng`,
//! * [`rngs::StdRng`] (here: xoshiro256++ seeded via SplitMix64),
//! * [`seq::SliceRandom::shuffle`].
//!
//! The generator is **not** the upstream `StdRng` (ChaCha12), so seeded
//! sequences differ from upstream `rand`; everything in this workspace
//! treats seeded draws as "deterministic but arbitrary", which this crate
//! preserves. xoshiro256++ passes the statistical test batteries relevant
//! at our scales (BigCrush for the upstream algorithm), which the
//! chi-square/moment assertions in the test suite exercise directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (taken from the high half).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for isize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}

impl Standard for i16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as i16
    }
}

impl Standard for i8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as i8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform distribution over caller-supplied ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics if `lo > hi`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform `u64` in `[0, span)` by Lemire's widening-multiply method
/// (unbiased; the rejection loop is entered with probability `< span/2⁶⁴`).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return Standard::sample(rng);
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from an empty range");
                let unit: $t = Standard::sample(rng);
                lo + (hi - lo) * unit
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                let unit: $t = Standard::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// User-facing random value generation, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T` (`u64`, `f64` in `[0,1)`, `bool`, …).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range` (half-open or inclusive).
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// A biased coin: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable RNGs.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;

    /// Construct by drawing a seed from another RNG.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman & Vigna),
    /// seeded by SplitMix64 expansion of a 64-bit seed.
    ///
    /// Not reproducible against upstream `rand`'s ChaCha12-based `StdRng`;
    /// see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = std::array::from_fn(|_| splitmix64(&mut state));
            Self { s }
        }
    }

    /// Alias: this workspace's "small" RNG is the same generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_in_range_and_well_spread() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn random_range_is_unbiased_over_small_spans() {
        let mut r = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 7];
        let n = 140_000;
        for _ in 0..n {
            counts[r.random_range(0..7usize)] += 1;
        }
        let expect = n as f64 / 7.0;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < 5.0 * expect.sqrt());
        }
        // Inclusive ranges hit both endpoints.
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.random_range(2..=4u32) {
                2 => lo_seen = true,
                4 => hi_seen = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn unsized_rng_is_usable_through_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..100u64)
        }
        let mut r = StdRng::seed_from_u64(6);
        assert!(draw(&mut r) < 100);
    }
}
