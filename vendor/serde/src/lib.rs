//! Vendored offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the small slice of serde it actually uses. The public
//! trait surface (`Serialize`, `Serializer`, `Deserialize`, `Deserializer`,
//! the `ser`/`de` modules, and the derive macros) matches upstream closely
//! enough that every manual impl and derive site in this repository compiles
//! unchanged. Internally the data model is simplified: deserializers hand
//! back a [`__private::Content`] tree instead of driving a visitor.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub use crate::de::{Deserialize, Deserializer};
pub use crate::ser::{Serialize, Serializer};

/// Serialization traits: [`Serialize`], [`Serializer`], and the compound
/// builders ([`ser::SerializeSeq`], [`ser::SerializeMap`],
/// [`ser::SerializeStruct`]).
pub mod ser {
    use std::fmt::Display;

    /// A data structure that can be serialized into any [`Serializer`].
    pub trait Serialize {
        /// Serialize `self` into the given serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// Errors produced while serializing.
    pub trait Error: Sized + std::error::Error {
        /// Raised by `Serialize` impls on invalid data.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A format-specific sink for the serde data model.
    ///
    /// Compared to upstream this trait is trimmed to the methods this
    /// workspace (and the vendored `serde_json`) actually exercise; integer
    /// widths funnel through `serialize_u64`/`serialize_i64`.
    pub trait Serializer: Sized {
        /// Output produced on success.
        type Ok;
        /// Error type raised on failure.
        type Error: Error;
        /// Builder returned by [`Serializer::serialize_seq`].
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
        /// Builder returned by [`Serializer::serialize_map`].
        type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
        /// Builder returned by [`Serializer::serialize_struct`].
        type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

        /// Serialize a boolean.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        /// Serialize any unsigned integer.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        /// Serialize any signed integer.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
        /// Serialize a floating-point number.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
        /// Serialize a string slice.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        /// Serialize `()` / JSON null.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
        /// Serialize `Option::None`.
        fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
        /// Serialize `Option::Some`.
        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<Self::Ok, Self::Error>;
        /// Begin serializing a variable-length sequence.
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
        /// Begin serializing a key/value map.
        fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
        /// Begin serializing a struct with named fields.
        fn serialize_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStruct, Self::Error>;
        /// Serialize a unit struct such as `struct Marker;`.
        fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
        /// Serialize a newtype struct such as `struct Wrapper(T);` as its
        /// inner value.
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        /// Serialize a dataless enum variant (externally tagged: the variant
        /// name itself).
        fn serialize_unit_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
        ) -> Result<Self::Ok, Self::Error>;
        /// Serialize a single-field enum variant (externally tagged:
        /// `{"Variant": value}`).
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
    }

    /// Incremental builder for sequences.
    pub trait SerializeSeq {
        /// Output produced by [`SerializeSeq::end`].
        type Ok;
        /// Error type raised on failure.
        type Error: Error;
        /// Append one element.
        fn serialize_element<T: Serialize + ?Sized>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finish the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Incremental builder for maps.
    pub trait SerializeMap {
        /// Output produced by [`SerializeMap::end`].
        type Ok;
        /// Error type raised on failure.
        type Error: Error;
        /// Append a key; must be followed by [`SerializeMap::serialize_value`].
        fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
        /// Append the value for the pending key.
        fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Append a complete entry.
        fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
            &mut self,
            key: &K,
            value: &V,
        ) -> Result<(), Self::Error> {
            self.serialize_key(key)?;
            self.serialize_value(value)
        }
        /// Finish the map.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Incremental builder for structs with named fields.
    pub trait SerializeStruct {
        /// Output produced by [`SerializeStruct::end`].
        type Ok;
        /// Error type raised on failure.
        type Error: Error;
        /// Append one named field.
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finish the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

/// Deserialization traits: [`Deserialize`], [`Deserializer`], and the error
/// plumbing ([`de::Error`], [`de::Expected`]).
pub mod de {
    use std::fmt::{self, Display};

    use crate::__private::Content;

    /// A data structure that can be deserialized from any [`Deserializer`].
    pub trait Deserialize<'de>: Sized {
        /// Deserialize `Self` from the given deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// A type deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

    /// A format-specific source for the serde data model.
    ///
    /// Unlike upstream's visitor-driven contract, this simplified model hands
    /// the whole parsed value back as a [`Content`] tree; `Deserialize` impls
    /// interpret it. That is sufficient for the self-describing formats this
    /// workspace uses (JSON).
    pub trait Deserializer<'de>: Sized {
        /// Error type raised on failure.
        type Error: Error;
        /// Consume the deserializer and return the parsed value tree.
        fn deserialize_content(self) -> Result<Content, Self::Error>;
    }

    /// Expectation description used by [`Error::invalid_length`] and friends.
    pub trait Expected {
        /// Format the expectation ("at least one family", ...).
        fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
    }

    impl Expected for &str {
        fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(formatter, "{self}")
        }
    }

    impl Expected for String {
        fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(formatter, "{self}")
        }
    }

    impl fmt::Display for dyn Expected + '_ {
        fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
            Expected::fmt(self, formatter)
        }
    }

    /// Errors produced while deserializing.
    pub trait Error: Sized + std::error::Error {
        /// Raised with a free-form message.
        fn custom<T: Display>(msg: T) -> Self;

        /// Raised when a sequence has the wrong number of elements.
        fn invalid_length(len: usize, exp: &dyn Expected) -> Self {
            Self::custom(format!("invalid length {len}, expected {exp}"))
        }

        /// Raised when a struct field is absent.
        fn missing_field(field: &'static str) -> Self {
            Self::custom(format!("missing field `{field}`"))
        }

        /// Raised when an enum tag matches no variant.
        fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
            Self::custom(format!(
                "unknown variant `{variant}`, expected one of {expected:?}"
            ))
        }

        /// Raised when the value has the wrong shape for the target type.
        fn invalid_type(unexpected: &str, exp: &dyn Expected) -> Self {
            Self::custom(format!("invalid type: {unexpected}, expected {exp}"))
        }
    }
}

/// Support machinery shared by the derive macro and the vendored
/// `serde_json`. Not part of the public API contract.
#[doc(hidden)]
pub mod __private {
    use std::marker::PhantomData;

    use crate::de::{self, Deserialize, Deserializer};
    use crate::ser::{self, Serialize, Serializer};

    /// The parsed value tree every [`Deserializer`] in this workspace
    /// produces and every [`Serializer`] consumes.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Content {
        /// JSON `null`.
        Null,
        /// A boolean.
        Bool(bool),
        /// A non-negative integer.
        U64(u64),
        /// A negative (or explicitly signed) integer.
        I64(i64),
        /// A floating-point number.
        F64(f64),
        /// A string.
        Str(String),
        /// An ordered sequence.
        Seq(Vec<Content>),
        /// An ordered list of key/value pairs (struct fields or map entries).
        Map(Vec<(Content, Content)>),
    }

    impl Content {
        /// Human-readable shape name for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Content::Null => "null",
                Content::Bool(_) => "a boolean",
                Content::U64(_) | Content::I64(_) => "an integer",
                Content::F64(_) => "a floating-point number",
                Content::Str(_) => "a string",
                Content::Seq(_) => "a sequence",
                Content::Map(_) => "a map",
            }
        }
    }

    /// Widen any integer-shaped content to `u64`. Strings are accepted so
    /// JSON object keys (always strings) can deserialize as integers.
    pub fn as_u64(content: &Content) -> Option<u64> {
        match content {
            Content::U64(v) => Some(*v),
            Content::I64(v) => u64::try_from(*v).ok(),
            Content::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            Content::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Widen any integer-shaped content to `i64` (see [`as_u64`]).
    pub fn as_i64(content: &Content) -> Option<i64> {
        match content {
            Content::I64(v) => Some(*v),
            Content::U64(v) => i64::try_from(*v).ok(),
            Content::F64(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            Content::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Widen any numeric content to `f64`.
    pub fn as_f64(content: &Content) -> Option<f64> {
        match content {
            Content::F64(v) => Some(*v),
            Content::U64(v) => Some(*v as f64),
            Content::I64(v) => Some(*v as f64),
            Content::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // ContentSerializer: Serialize -> Content
    // ------------------------------------------------------------------

    /// A [`Serializer`] that builds a [`Content`] tree, generic over the
    /// error type so format crates can reuse it.
    pub struct ContentSerializer<E> {
        _marker: PhantomData<E>,
    }

    impl<E> ContentSerializer<E> {
        /// A fresh serializer.
        pub fn new() -> Self {
            ContentSerializer {
                _marker: PhantomData,
            }
        }
    }

    impl<E> Default for ContentSerializer<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    /// Convert any serializable value into a [`Content`] tree.
    pub fn to_content<T: Serialize + ?Sized, E: ser::Error>(value: &T) -> Result<Content, E> {
        value.serialize(ContentSerializer::<E>::new())
    }

    /// Sequence builder for [`ContentSerializer`].
    pub struct ContentSeq<E> {
        items: Vec<Content>,
        _marker: PhantomData<E>,
    }

    /// Map builder for [`ContentSerializer`].
    pub struct ContentMap<E> {
        entries: Vec<(Content, Content)>,
        pending_key: Option<Content>,
        _marker: PhantomData<E>,
    }

    /// Struct builder for [`ContentSerializer`].
    pub struct ContentStruct<E> {
        fields: Vec<(Content, Content)>,
        _marker: PhantomData<E>,
    }

    impl<E: ser::Error> Serializer for ContentSerializer<E> {
        type Ok = Content;
        type Error = E;
        type SerializeSeq = ContentSeq<E>;
        type SerializeMap = ContentMap<E>;
        type SerializeStruct = ContentStruct<E>;

        fn serialize_bool(self, v: bool) -> Result<Content, E> {
            Ok(Content::Bool(v))
        }
        fn serialize_u64(self, v: u64) -> Result<Content, E> {
            Ok(Content::U64(v))
        }
        fn serialize_i64(self, v: i64) -> Result<Content, E> {
            if v >= 0 {
                Ok(Content::U64(v as u64))
            } else {
                Ok(Content::I64(v))
            }
        }
        fn serialize_f64(self, v: f64) -> Result<Content, E> {
            Ok(Content::F64(v))
        }
        fn serialize_str(self, v: &str) -> Result<Content, E> {
            Ok(Content::Str(v.to_owned()))
        }
        fn serialize_unit(self) -> Result<Content, E> {
            Ok(Content::Null)
        }
        fn serialize_none(self) -> Result<Content, E> {
            Ok(Content::Null)
        }
        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<Content, E> {
            v.serialize(self)
        }
        fn serialize_seq(self, len: Option<usize>) -> Result<ContentSeq<E>, E> {
            Ok(ContentSeq {
                items: Vec::with_capacity(len.unwrap_or(0)),
                _marker: PhantomData,
            })
        }
        fn serialize_map(self, len: Option<usize>) -> Result<ContentMap<E>, E> {
            Ok(ContentMap {
                entries: Vec::with_capacity(len.unwrap_or(0)),
                pending_key: None,
                _marker: PhantomData,
            })
        }
        fn serialize_struct(self, _name: &'static str, len: usize) -> Result<ContentStruct<E>, E> {
            Ok(ContentStruct {
                fields: Vec::with_capacity(len),
                _marker: PhantomData,
            })
        }
        fn serialize_unit_struct(self, _name: &'static str) -> Result<Content, E> {
            Ok(Content::Null)
        }
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _name: &'static str,
            value: &T,
        ) -> Result<Content, E> {
            value.serialize(self)
        }
        fn serialize_unit_variant(
            self,
            _name: &'static str,
            _variant_index: u32,
            variant: &'static str,
        ) -> Result<Content, E> {
            Ok(Content::Str(variant.to_owned()))
        }
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _name: &'static str,
            _variant_index: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<Content, E> {
            let inner = to_content(value)?;
            Ok(Content::Map(vec![(
                Content::Str(variant.to_owned()),
                inner,
            )]))
        }
    }

    impl<E: ser::Error> ser::SerializeSeq for ContentSeq<E> {
        type Ok = Content;
        type Error = E;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), E> {
            self.items.push(to_content(value)?);
            Ok(())
        }
        fn end(self) -> Result<Content, E> {
            Ok(Content::Seq(self.items))
        }
    }

    impl<E: ser::Error> ser::SerializeMap for ContentMap<E> {
        type Ok = Content;
        type Error = E;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), E> {
            self.pending_key = Some(to_content(key)?);
            Ok(())
        }
        fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), E> {
            let key = self
                .pending_key
                .take()
                .ok_or_else(|| ser::Error::custom("serialize_value called before serialize_key"))?;
            self.entries.push((key, to_content(value)?));
            Ok(())
        }
        fn end(self) -> Result<Content, E> {
            Ok(Content::Map(self.entries))
        }
    }

    impl<E: ser::Error> ser::SerializeStruct for ContentStruct<E> {
        type Ok = Content;
        type Error = E;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), E> {
            self.fields
                .push((Content::Str(key.to_owned()), to_content(value)?));
            Ok(())
        }
        fn end(self) -> Result<Content, E> {
            Ok(Content::Map(self.fields))
        }
    }

    // ------------------------------------------------------------------
    // ContentDeserializer: Content -> Deserialize
    // ------------------------------------------------------------------

    /// A [`Deserializer`] over an already-parsed [`Content`] tree, generic
    /// over the error type so format crates can reuse it.
    pub struct ContentDeserializer<E> {
        content: Content,
        _marker: PhantomData<E>,
    }

    impl<E> ContentDeserializer<E> {
        /// Wrap a content tree.
        pub fn new(content: Content) -> Self {
            ContentDeserializer {
                content,
                _marker: PhantomData,
            }
        }
    }

    impl<'de, E: de::Error> Deserializer<'de> for ContentDeserializer<E> {
        type Error = E;
        fn deserialize_content(self) -> Result<Content, E> {
            Ok(self.content)
        }
    }

    /// Deserialize a value straight out of a [`Content`] tree.
    pub fn from_content<'de, T: Deserialize<'de>, E: de::Error>(content: Content) -> Result<T, E> {
        T::deserialize(ContentDeserializer::<E>::new(content))
    }

    /// Expect a map-shaped content (struct fields), by value.
    pub fn content_map<E: de::Error>(
        content: Content,
        type_name: &'static str,
    ) -> Result<Vec<(Content, Content)>, E> {
        match content {
            Content::Map(entries) => Ok(entries),
            other => Err(de::Error::custom(format!(
                "invalid type: {}, expected struct `{type_name}`",
                other.kind()
            ))),
        }
    }

    /// Expect a sequence-shaped content, by value.
    pub fn content_seq<E: de::Error>(
        content: Content,
        type_name: &'static str,
    ) -> Result<Vec<Content>, E> {
        match content {
            Content::Seq(items) => Ok(items),
            other => Err(de::Error::custom(format!(
                "invalid type: {}, expected tuple struct `{type_name}`",
                other.kind()
            ))),
        }
    }

    /// Remove the named field from a struct's entry list and deserialize it.
    pub fn take_field<'de, T: Deserialize<'de>, E: de::Error>(
        entries: &mut Vec<(Content, Content)>,
        field: &'static str,
    ) -> Result<T, E> {
        let index = entries
            .iter()
            .position(|(key, _)| matches!(key, Content::Str(s) if s == field))
            .ok_or_else(|| E::missing_field(field))?;
        let (_, value) = entries.swap_remove(index);
        from_content(value)
    }

    /// Split an externally-tagged enum content into `(tag, payload)`. A bare
    /// string is a unit variant (no payload); a single-entry map is a
    /// data-carrying variant.
    pub fn enum_variant<E: de::Error>(
        content: Content,
        enum_name: &'static str,
    ) -> Result<(String, Option<Content>), E> {
        match content {
            Content::Str(tag) => Ok((tag, None)),
            Content::Map(mut entries) if entries.len() == 1 => {
                let (key, value) = entries.pop().expect("length checked");
                match key {
                    Content::Str(tag) => Ok((tag, Some(value))),
                    other => Err(de::Error::custom(format!(
                        "invalid enum tag for `{enum_name}`: expected a string, got {}",
                        other.kind()
                    ))),
                }
            }
            other => Err(de::Error::custom(format!(
                "invalid type: {}, expected enum `{enum_name}`",
                other.kind()
            ))),
        }
    }

    /// Extract the payload of a data-carrying enum variant.
    pub fn variant_payload<E: de::Error>(
        payload: Option<Content>,
        variant: &str,
    ) -> Result<Content, E> {
        payload
            .ok_or_else(|| de::Error::custom(format!("variant `{variant}` is missing its payload")))
    }

    /// Require that a unit variant carries no payload.
    pub fn expect_unit_variant<E: de::Error>(
        payload: Option<Content>,
        variant: &str,
    ) -> Result<(), E> {
        match payload {
            None | Some(Content::Null) => Ok(()),
            Some(other) => Err(de::Error::custom(format!(
                "variant `{variant}` carries no data, got {}",
                other.kind()
            ))),
        }
    }
}

// ----------------------------------------------------------------------
// Serialize impls for std types
// ----------------------------------------------------------------------

mod ser_impls {
    use std::collections::HashMap;
    use std::hash::{BuildHasher, Hash};
    use std::rc::Rc;
    use std::sync::Arc;

    use crate::ser::{Serialize, SerializeMap, SerializeSeq, Serializer};

    macro_rules! impl_ser_unsigned {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.serialize_u64(u64::from(*self))
                }
            }
        )*};
    }
    impl_ser_unsigned!(u8, u16, u32, u64);

    impl Serialize for usize {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_u64(*self as u64)
        }
    }

    macro_rules! impl_ser_signed {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.serialize_i64(i64::from(*self))
                }
            }
        )*};
    }
    impl_ser_signed!(i8, i16, i32, i64);

    impl Serialize for isize {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_i64(*self as i64)
        }
    }

    impl Serialize for bool {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_bool(*self)
        }
    }

    impl Serialize for f32 {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_f64(f64::from(*self))
        }
    }

    impl Serialize for f64 {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_f64(*self)
        }
    }

    impl Serialize for str {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl Serialize for String {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_str(self)
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(serializer)
        }
    }

    impl<T: Serialize + ?Sized> Serialize for Box<T> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(serializer)
        }
    }

    impl<T: Serialize + ?Sized> Serialize for Arc<T> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(serializer)
        }
    }

    impl<T: Serialize + ?Sized> Serialize for Rc<T> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(serializer)
        }
    }

    impl<T: Serialize> Serialize for [T] {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut seq = serializer.serialize_seq(Some(self.len()))?;
            for item in self {
                seq.serialize_element(item)?;
            }
            seq.end()
        }
    }

    impl<T: Serialize, const N: usize> Serialize for [T; N] {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            self.as_slice().serialize(serializer)
        }
    }

    impl<T: Serialize> Serialize for Vec<T> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            self.as_slice().serialize(serializer)
        }
    }

    impl<T: Serialize> Serialize for Option<T> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            match self {
                Some(value) => serializer.serialize_some(value),
                None => serializer.serialize_none(),
            }
        }
    }

    impl<K: Serialize + Eq + Hash, V: Serialize, H: BuildHasher> Serialize for HashMap<K, V, H> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut map = serializer.serialize_map(Some(self.len()))?;
            for (key, value) in self {
                map.serialize_entry(key, value)?;
            }
            map.end()
        }
    }
}

// ----------------------------------------------------------------------
// Deserialize impls for std types
// ----------------------------------------------------------------------

mod de_impls {
    use std::collections::HashMap;
    use std::hash::{BuildHasher, Hash};

    use crate::__private::{self, Content};
    use crate::de::{Deserialize, Deserializer, Error};

    macro_rules! impl_de_unsigned {
        ($($t:ty),*) => {$(
            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    let content = deserializer.deserialize_content()?;
                    let wide = __private::as_u64(&content).ok_or_else(|| {
                        D::Error::custom(format!(
                            "invalid type: {}, expected {}",
                            content.kind(),
                            stringify!($t)
                        ))
                    })?;
                    <$t>::try_from(wide).map_err(|_| {
                        D::Error::custom(concat!("integer out of range for ", stringify!($t)))
                    })
                }
            }
        )*};
    }
    impl_de_unsigned!(u8, u16, u32, u64, usize);

    macro_rules! impl_de_signed {
        ($($t:ty),*) => {$(
            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    let content = deserializer.deserialize_content()?;
                    let wide = __private::as_i64(&content).ok_or_else(|| {
                        D::Error::custom(format!(
                            "invalid type: {}, expected {}",
                            content.kind(),
                            stringify!($t)
                        ))
                    })?;
                    <$t>::try_from(wide).map_err(|_| {
                        D::Error::custom(concat!("integer out of range for ", stringify!($t)))
                    })
                }
            }
        )*};
    }
    impl_de_signed!(i8, i16, i32, i64, isize);

    impl<'de> Deserialize<'de> for bool {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            match deserializer.deserialize_content()? {
                Content::Bool(v) => Ok(v),
                other => Err(D::Error::custom(format!(
                    "invalid type: {}, expected a boolean",
                    other.kind()
                ))),
            }
        }
    }

    impl<'de> Deserialize<'de> for f64 {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let content = deserializer.deserialize_content()?;
            __private::as_f64(&content).ok_or_else(|| {
                D::Error::custom(format!(
                    "invalid type: {}, expected a number",
                    content.kind()
                ))
            })
        }
    }

    impl<'de> Deserialize<'de> for f32 {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            f64::deserialize(deserializer).map(|v| v as f32)
        }
    }

    impl<'de> Deserialize<'de> for String {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            match deserializer.deserialize_content()? {
                Content::Str(s) => Ok(s),
                other => Err(D::Error::custom(format!(
                    "invalid type: {}, expected a string",
                    other.kind()
                ))),
            }
        }
    }

    impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            match deserializer.deserialize_content()? {
                Content::Seq(items) => items
                    .into_iter()
                    .map(__private::from_content::<T, D::Error>)
                    .collect(),
                other => Err(D::Error::custom(format!(
                    "invalid type: {}, expected a sequence",
                    other.kind()
                ))),
            }
        }
    }

    impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let items = Vec::<T>::deserialize(deserializer)?;
            let len = items.len();
            <[T; N]>::try_from(items)
                .map_err(|_| D::Error::invalid_length(len, &format!("an array of {N} elements")))
        }
    }

    impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            match deserializer.deserialize_content()? {
                Content::Null => Ok(None),
                other => __private::from_content::<T, D::Error>(other).map(Some),
            }
        }
    }

    impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
    where
        K: Deserialize<'de> + Eq + Hash,
        V: Deserialize<'de>,
        H: BuildHasher + Default,
    {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            match deserializer.deserialize_content()? {
                Content::Map(entries) => {
                    let mut map = HashMap::with_capacity_and_hasher(entries.len(), H::default());
                    for (key, value) in entries {
                        let key = __private::from_content::<K, D::Error>(key)?;
                        let value = __private::from_content::<V, D::Error>(value)?;
                        map.insert(key, value);
                    }
                    Ok(map)
                }
                other => Err(D::Error::custom(format!(
                    "invalid type: {}, expected a map",
                    other.kind()
                ))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::fmt;

    use crate::__private::{from_content, to_content, Content};

    #[derive(Debug, Clone, PartialEq)]
    struct TestError(String);

    impl fmt::Display for TestError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }
    impl std::error::Error for TestError {}
    impl crate::ser::Error for TestError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            TestError(msg.to_string())
        }
    }
    impl crate::de::Error for TestError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            TestError(msg.to_string())
        }
    }

    #[test]
    fn scalar_roundtrip_through_content() {
        let content = to_content::<_, TestError>(&42u64).unwrap();
        assert_eq!(content, Content::U64(42));
        let back: u64 = from_content::<_, TestError>(content).unwrap();
        assert_eq!(back, 42);

        let content = to_content::<_, TestError>(&-7i64).unwrap();
        let back: i64 = from_content::<_, TestError>(content).unwrap();
        assert_eq!(back, -7);
    }

    #[test]
    fn collection_roundtrip_through_content() {
        let data = vec![1i64, -2, 3];
        let back: Vec<i64> =
            from_content::<_, TestError>(to_content::<_, TestError>(&data).unwrap()).unwrap();
        assert_eq!(back, data);

        let arr = [5u64, 6, 7, 8];
        let back: [u64; 4] =
            from_content::<_, TestError>(to_content::<_, TestError>(&arr).unwrap()).unwrap();
        assert_eq!(back, arr);

        let mut map = HashMap::new();
        map.insert(5u64, 3u64);
        map.insert(6u64, 4u64);
        let back: HashMap<u64, u64> =
            from_content::<_, TestError>(to_content::<_, TestError>(&map).unwrap()).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn integer_map_keys_accept_string_content() {
        let content = Content::Map(vec![
            (Content::Str("5".into()), Content::U64(3)),
            (Content::Str("6".into()), Content::U64(4)),
        ]);
        let map: HashMap<u64, u64> = from_content::<_, TestError>(content).unwrap();
        assert_eq!(map[&5], 3);
        assert_eq!(map[&6], 4);
    }

    #[test]
    fn array_length_mismatch_is_an_error() {
        let content = Content::Seq(vec![Content::U64(1), Content::U64(2)]);
        let result: Result<[u64; 4], TestError> = from_content(content);
        assert!(result.is_err());
    }
}
