//! Vendored offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Derives `Serialize`/`Deserialize` for the shapes this workspace actually
//! declares: structs with named fields, tuple/newtype structs, unit structs,
//! and enums whose variants are unit or newtype. Generic type parameters get
//! the usual per-parameter `T: Serialize` / `T: Deserialize<'de>` bounds,
//! which makes the repo's `#[serde(bound = "...")]` attributes redundant —
//! they are accepted and ignored. Parsing is done directly on the
//! `proc_macro::TokenStream` (no syn/quote available offline); code
//! generation goes through string formatting and `str::parse`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parts of a `struct`/`enum` declaration the codegen needs.
struct Input {
    name: String,
    /// Type-parameter identifiers, in declaration order.
    generics: Vec<String>,
    body: Body,
}

enum Body {
    /// `struct S { a: T, b: U }` — field names in order.
    Named(Vec<String>),
    /// `struct S(T, U);` — field count.
    Tuple(usize),
    /// `struct S;`
    Unit,
    /// `enum E { A, B(T) }` — `(variant, carries_payload)` in order.
    Enum(Vec<(String, bool)>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let ty_generics = type_generics(&input.generics);
    let impl_generics = bounded_generics(&input.generics, "serde::Serialize", None);
    let name = &input.name;

    let body = match &input.body {
        Body::Named(fields) => {
            let mut lines = String::new();
            for field in fields {
                lines.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __st, \"{field}\", &self.{field})?;\n"
                ));
            }
            format!(
                "let mut __st = serde::Serializer::serialize_struct(__serializer, \"{name}\", {n}usize)?;\n\
                 {lines}\
                 serde::ser::SerializeStruct::end(__st)",
                n = fields.len()
            )
        }
        Body::Tuple(1) => format!(
            "serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Body::Tuple(n) => {
            let mut lines = String::new();
            for i in 0..*n {
                lines.push_str(&format!(
                    "serde::ser::SerializeSeq::serialize_element(&mut __seq, &self.{i})?;\n"
                ));
            }
            format!(
                "let mut __seq = serde::Serializer::serialize_seq(__serializer, ::core::option::Option::Some({n}usize))?;\n\
                 {lines}\
                 serde::ser::SerializeSeq::end(__seq)"
            )
        }
        Body::Unit => {
            format!("serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (index, (variant, has_payload)) in variants.iter().enumerate() {
                if *has_payload {
                    arms.push_str(&format!(
                        "{name}::{variant}(__value) => serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {index}u32, \"{variant}\", __value),\n"
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{variant} => serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {index}u32, \"{variant}\"),\n"
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };

    let output = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, non_snake_case, unused_variables)]\n\
         impl{impl_generics} serde::Serialize for {name}{ty_generics} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    parse_output(&output)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let ty_generics = type_generics(&input.generics);
    let impl_generics = bounded_generics(&input.generics, "serde::Deserialize<'de>", Some("'de"));
    let name = &input.name;

    let body = match &input.body {
        Body::Named(fields) => {
            let mut lines = String::new();
            for field in fields {
                lines.push_str(&format!(
                    "{field}: serde::__private::take_field::<_, __D::Error>(&mut __fields, \"{field}\")?,\n"
                ));
            }
            format!(
                "let mut __fields = serde::__private::content_map::<__D::Error>(\n\
                     serde::Deserializer::deserialize_content(__deserializer)?, \"{name}\")?;\n\
                 ::core::result::Result::Ok({name} {{\n{lines}}})"
            )
        }
        Body::Tuple(1) => format!(
            "::core::result::Result::Ok({name}(serde::Deserialize::deserialize(__deserializer)?))"
        ),
        Body::Tuple(n) => {
            let mut elems = String::new();
            for _ in 0..*n {
                elems.push_str(
                    "serde::__private::from_content::<_, __D::Error>(__iter.next().unwrap())?,\n",
                );
            }
            format!(
                "let __items = serde::__private::content_seq::<__D::Error>(\n\
                     serde::Deserializer::deserialize_content(__deserializer)?, \"{name}\")?;\n\
                 if __items.len() != {n}usize {{\n\
                     return ::core::result::Result::Err(serde::de::Error::invalid_length(__items.len(), &\"{n} elements\"));\n\
                 }}\n\
                 let mut __iter = __items.into_iter();\n\
                 ::core::result::Result::Ok({name}(\n{elems}))"
            )
        }
        Body::Unit => format!("::core::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let variant_list = variants
                .iter()
                .map(|(v, _)| format!("\"{v}\""))
                .collect::<Vec<_>>()
                .join(", ");
            let mut arms = String::new();
            for (variant, has_payload) in variants {
                if *has_payload {
                    arms.push_str(&format!(
                        "\"{variant}\" => ::core::result::Result::Ok({name}::{variant}(\n\
                             serde::__private::from_content::<_, __D::Error>(\n\
                                 serde::__private::variant_payload::<__D::Error>(__payload, \"{variant}\")?)?)),\n"
                    ));
                } else {
                    arms.push_str(&format!(
                        "\"{variant}\" => {{\n\
                             serde::__private::expect_unit_variant::<__D::Error>(__payload, \"{variant}\")?;\n\
                             ::core::result::Result::Ok({name}::{variant})\n\
                         }}\n"
                    ));
                }
            }
            format!(
                "let (__tag, __payload) = serde::__private::enum_variant::<__D::Error>(\n\
                     serde::Deserializer::deserialize_content(__deserializer)?, \"{name}\")?;\n\
                 match __tag.as_str() {{\n\
                     {arms}\
                     __other => ::core::result::Result::Err(serde::de::Error::unknown_variant(__other, &[{variant_list}])),\n\
                 }}"
            )
        }
    };

    let output = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, non_snake_case, unused_variables, unused_mut)]\n\
         impl{impl_generics} serde::Deserialize<'de> for {name}{ty_generics} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    parse_output(&output)
}

fn parse_output(source: &str) -> TokenStream {
    source
        .parse()
        .unwrap_or_else(|err| panic!("serde_derive generated invalid Rust: {err}\n{source}"))
}

/// `<S, B>` for use after the type name, or `""` when non-generic.
fn type_generics(generics: &[String]) -> String {
    if generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.join(", "))
    }
}

/// `<'de, S: bound, B: bound>`-style impl generics.
fn bounded_generics(generics: &[String], bound: &str, lifetime: Option<&str>) -> String {
    let mut params: Vec<String> = Vec::new();
    if let Some(lt) = lifetime {
        params.push(lt.to_owned());
    }
    for g in generics {
        params.push(format!("{g}: {bound}"));
    }
    if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    }
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Outer attributes and visibility before the struct/enum keyword.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected a type name, got {other:?}"),
    };
    i += 1;

    let mut generics = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1u32;
        let mut expect_param = true;
        while depth > 0 {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    expect_param = true;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                    // A lifetime parameter or bound: consume its identifier.
                    i += 1;
                    expect_param = false;
                }
                Some(TokenTree::Ident(id)) if expect_param && depth == 1 => {
                    let text = id.to_string();
                    if text != "const" {
                        generics.push(text);
                        expect_param = false;
                    }
                }
                Some(_) => {}
                None => panic!("serde_derive: unclosed generic parameter list"),
            }
            i += 1;
        }
    }

    let body = match kind.as_str() {
        "struct" => {
            // Skip over a possible `where` clause to the body (a brace group,
            // a paren group for tuple structs, or a bare `;` for unit
            // structs).
            let mut body = None;
            while i < tokens.len() {
                match &tokens[i] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        body = Some(Body::Named(parse_named_fields(g.stream())));
                        break;
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        body = Some(Body::Tuple(count_tuple_fields(g.stream())));
                        break;
                    }
                    TokenTree::Punct(p) if p.as_char() == ';' => {
                        body = Some(Body::Unit);
                        break;
                    }
                    _ => i += 1,
                }
            }
            body.unwrap_or(Body::Unit)
        }
        "enum" => {
            let group = tokens[i..]
                .iter()
                .find_map(|t| match t {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g),
                    _ => None,
                })
                .expect("serde_derive: enum without a body");
            Body::Enum(parse_variants(group.stream()))
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Input {
        name,
        generics,
        body,
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Per-field attributes and visibility.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1; // past the name
        i += 1; // past the ':'

        // Skip the type: commas inside generic arguments don't end the field.
        let mut depth = 0i64;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i64;
    let mut saw_token_since_comma = false;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                saw_token_since_comma = false;
                count += 1;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        // Trailing comma.
        count -= 1;
    }
    count
}

/// `(variant, carries_payload)` pairs of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let variant = id.to_string();
        i += 1;
        let has_payload = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                true
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive: struct-like enum variant `{variant}` is not supported by the vendored derive");
            }
            _ => false,
        };
        variants.push((variant, has_payload));
        // Skip a possible discriminant up to the separating comma.
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
    }
    variants
}
