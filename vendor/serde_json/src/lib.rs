//! Vendored offline stand-in for the `serde_json` crate.
//!
//! Implements exactly the surface this workspace uses — [`to_string`] and
//! [`from_str`] — on top of the vendored serde's simplified `Content` data
//! model. The writer emits compact JSON (no spaces), integer map keys are
//! stringified the way upstream `serde_json` does, and the reader is a
//! recursive-descent parser that rejects trailing garbage.

#![forbid(unsafe_code)]

use std::fmt;

use serde::__private::{from_content, to_content, Content};
use serde::{Deserialize, Serialize};

/// Error raised by [`to_string`] and [`from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = to_content::<T, Error>(value)?;
    let mut out = String::new();
    write_content(&content, &mut out)?;
    Ok(out)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let content = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    from_content::<T, Error>(content)
}

// ----------------------------------------------------------------------
// Writer
// ----------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("JSON cannot represent a non-finite number"));
            }
            // Keep floats recognizable as floats on the way back in.
            if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (index, (key, value)) in entries.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                // JSON object keys are always strings: integer keys (e.g.
                // HashMap<u64, _>) are stringified like upstream serde_json.
                match key {
                    Content::Str(s) => write_string(s, out),
                    Content::U64(v) => write_string(&v.to_string(), out),
                    Content::I64(v) => write_string(&v.to_string(), out),
                    Content::Bool(v) => write_string(&v.to_string(), out),
                    other => {
                        return Err(Error::new(format!(
                            "map key must be a string or integer, got {}",
                            other.kind()
                        )))
                    }
                }
                out.push(':');
                write_content(value, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------------
// Reader
// ----------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.bad_token())
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.bad_token())
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.bad_token())
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') => self.parse_number(),
            Some(b) if b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.bad_token()),
        }
    }

    fn bad_token(&self) -> Error {
        Error::new(format!("unexpected token at byte {}", self.pos))
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape sequence"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xd800..0xdc00).contains(&code) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate in string"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid unicode escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape character `{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-scan from the byte we consumed to pick up full UTF-8
                    // sequences.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(super::to_string(&42u64).unwrap(), "42");
        assert_eq!(super::to_string(&-7i64).unwrap(), "-7");
        assert_eq!(super::to_string(&true).unwrap(), "true");
        assert_eq!(super::to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(super::to_string("hi").unwrap(), "\"hi\"");

        assert_eq!(super::from_str::<u64>("42").unwrap(), 42);
        assert_eq!(super::from_str::<i64>("-7").unwrap(), -7);
        assert!(super::from_str::<bool>("true").unwrap());
        assert_eq!(super::from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(super::from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn vectors_roundtrip() {
        let data = vec![1i64, -2, 3];
        let json = super::to_string(&data).unwrap();
        assert_eq!(json, "[1,-2,3]");
        assert_eq!(super::from_str::<Vec<i64>>(&json).unwrap(), data);
    }

    #[test]
    fn integer_keyed_maps_use_string_keys() {
        let mut map = HashMap::new();
        map.insert(5u64, 3u64);
        let json = super::to_string(&map).unwrap();
        assert_eq!(json, "{\"5\":3}");
        let back: HashMap<u64, u64> = super::from_str("{\"5\": 3, \"6\": 4}").unwrap();
        assert_eq!(back[&5], 3);
        assert_eq!(back[&6], 4);
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let json = " { \"a\" : [ 1 , 2 ] , \"b\" : { \"c\" : null } } ";
        let value: HashMap<String, Vec<u64>> = super::from_str("{\"a\": [1, 2]}").unwrap();
        assert_eq!(value["a"], vec![1, 2]);
        // Nested structure parses as content even when we cannot type it.
        assert!(super::from_str::<HashMap<String, Vec<u64>>>(json).is_err());
    }

    #[test]
    fn errors_on_garbage() {
        assert!(super::from_str::<u64>("4x").is_err());
        assert!(super::from_str::<u64>("").is_err());
        assert!(super::from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(super::from_str::<String>("\"unterminated").is_err());
        assert!(super::from_str::<u64>("42 garbage").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\n\"quoted\"\tπ";
        let json = super::to_string(original).unwrap();
        assert_eq!(super::from_str::<String>(&json).unwrap(), original);
        assert_eq!(super::from_str::<String>("\"\\u00e9\"").unwrap(), "é");
    }

    #[test]
    fn floats_stay_floats() {
        let json = super::to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
        assert_eq!(super::from_str::<f64>(&json).unwrap(), 2.0);
    }
}
